//! RPC engine configuration.
//!
//! The paper exposes a single switch, `rpc.ib.enabled`, plus a tunable
//! small-message threshold that routes tiny payloads through send/recv and
//! larger ones through RDMA. [`RpcConfig`] carries those and the knobs the
//! ablation benchmarks sweep.

use std::time::Duration;

use crate::retry::RetryPolicy;

/// Which execution engine runs server-side handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandlerRuntime {
    /// The paper's fixed pool: `cfg.handlers` OS threads, each blocking
    /// on one call at a time. The default; byte-identical to the
    /// pre-M:N engine (all committed bench baselines are recorded
    /// under it).
    #[default]
    Threads,
    /// The work-stealing M:N runtime (`core::sched`): lightweight call
    /// tasks on `handler_workers` OS workers; a parked call costs bytes,
    /// not a thread, so in-flight calls are bounded by
    /// `max_inflight_calls`, not thread count.
    Mn,
}

impl HandlerRuntime {
    /// Stable lowercase name (config/env/JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            HandlerRuntime::Threads => "threads",
            HandlerRuntime::Mn => "mn",
        }
    }

    /// Parse the config/env spelling (`"threads"` / `"mn"`).
    pub fn parse(s: &str) -> Option<HandlerRuntime> {
        match s {
            "threads" => Some(HandlerRuntime::Threads),
            "mn" => Some(HandlerRuntime::Mn),
            _ => None,
        }
    }
}

/// Configuration shared by [`crate::Client`] and [`crate::Server`].
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// The paper's `rpc.ib.enabled`: `false` = default socket-based Hadoop
    /// RPC; `true` = RPCoIB over verbs.
    pub ib_enabled: bool,
    /// Messages at or below this size go through send/recv; larger ones
    /// through one-sided RDMA write (Section III-D's tunable threshold).
    pub rdma_threshold: usize,
    /// Server handler thread count (the paper's microbenchmarks fix 8).
    pub handlers: usize,
    /// Bound of the server call queue between Readers and Handlers.
    pub call_queue_len: usize,
    /// Client-side wait for a response before failing one attempt. When
    /// `retry.deadline` is set, each attempt waits at most the remaining
    /// deadline budget, whichever is smaller.
    pub call_timeout: Duration,
    /// Client-side retry schedule (attempts, backoff, overall deadline).
    /// The default performs one transparent immediate retry — enough to
    /// heal a cached connection to a restarted server.
    pub retry: RetryPolicy,
    /// How long a completed call's response stays replayable in the
    /// server's retry cache. Must comfortably exceed the worst-case
    /// client retry horizon (attempts × call_timeout + backoff), or a
    /// late retry re-executes.
    pub retry_cache_ttl: Duration,
    /// Maximum completed responses the server's retry cache holds; the
    /// oldest completed entry is evicted first. `0` disables at-most-once
    /// caching entirely (every retry re-executes, pre-V2 behavior).
    pub retry_cache_capacity: usize,
    /// Whether the shadow pool uses `<protocol, method>` size history
    /// (disabled only by the ablation).
    pub use_size_history: bool,
    /// Buffers pre-allocated (and pre-registered) per size class at
    /// startup.
    pub prefill_per_class: usize,
    /// Capacity of each pre-posted receive buffer on RDMA connections.
    /// Must be ≥ `rdma_threshold`.
    pub recv_buf_bytes: usize,
    /// Number of receive buffers kept posted per RDMA connection.
    pub posted_recvs: usize,
    /// Size of the per-connection region that large frames are
    /// RDMA-written into.
    pub large_region_bytes: usize,
    /// Number of credit slots the large region is divided into. Each
    /// large frame occupies one or more contiguous slots; the writer
    /// consumes slot credits and the receiver returns them in batches, so
    /// up to `large_slots` worth of frames can be in flight at once.
    /// `1` reproduces the original one-deep credit gate exactly.
    pub large_slots: usize,
    /// Auto-tune the small/large crossover from live per-path cost
    /// samples instead of the static `rdma_threshold` knob. Off by
    /// default; `rdma_threshold` then seeds the adaptive starting point.
    pub adaptive_rdma_threshold: bool,
    /// Record every call's serialized size in the metrics registry
    /// (needed by the Figure 3 harness; off by default — it allocates).
    pub trace_sizes: bool,
    /// Server-side initial serialization buffer for the socket baseline
    /// (Hadoop uses 10 KB on the server, 32 B on the client).
    pub server_buffer_init: usize,
    /// Reader shard count. Connections are hashed onto shards at accept
    /// time and each shard runs an event loop over its connections
    /// (replacing the paper's one-Reader-thread-per-connection model).
    /// `0` = auto (currently 4).
    pub reader_shards: usize,
    /// Responder shard count. Responses are routed to a shard by
    /// connection id, preserving per-connection ordering. `0` = auto
    /// (currently 1, the paper's single-Responder behaviour).
    pub responder_shards: usize,
    /// Opportunistic wire batching (on by default). Socket: calls that
    /// queue behind an in-flight flush leave as one gathered write;
    /// verbs: the responder's ready responses are merged into shared
    /// completions. `false` restores strict one-frame-per-wire-op — the
    /// control arm for the `batching` benchmark and the CI matrix.
    pub wire_batch: bool,
    /// Highest frame version this endpoint offers in the connect
    /// handshake (see [`crate::handshake`]). Default is the build's
    /// maximum; pin to 2 to emulate a previous-release peer.
    pub max_wire_version: u8,
    /// Per-tenant weights for the weighted-fair admission plane, keyed by
    /// handshake `client_id`. A tenant absent from the list has weight 1;
    /// a tenant with weight `w` is served up to `w` calls per fair round.
    /// Non-empty weights enable weighted-fair scheduling in the server's
    /// admission queue and shard sweeps. Empty (default) with
    /// `tenant_quota == 0` keeps the plain FIFO call queue.
    pub tenant_weights: Vec<(u64, u32)>,
    /// Per-tenant outstanding-call quota (queued + executing), keyed by
    /// handshake `client_id`. A tenant at its quota gets `STATUS_BUSY`
    /// even while the global queue has room, so one flooder cannot own
    /// the whole call queue. `0` (default) disables per-tenant quotas.
    pub tenant_quota: usize,
    /// Whether the client propagates its remaining per-attempt deadline
    /// budget in V3 request headers and the server sheds queued calls
    /// whose budget has expired (answered with `STATUS_EXPIRED`, never
    /// executed). On by default; V2/V1 peers carry no budget and are
    /// never shed regardless.
    pub deadline_propagation: bool,
    /// Maximum connections the server keeps alive (live + in setup);
    /// connects past the limit are answered with the retryable busy
    /// rejection instead of growing the conn table without bound. `0`
    /// (default) = unlimited, the pre-PR-8 behaviour.
    pub max_connections: usize,
    /// Maximum connection setups (handshake + RPCoIB endpoint exchange)
    /// in flight at once — the bounded accept queue. A connect storm
    /// past this waits in the listener queue until setups drain (added
    /// latency, not rejection), keeping the accept path's thread and
    /// memory use bounded.
    pub accept_backlog: usize,
    /// Which engine runs handlers: `Threads` (default, the paper's
    /// fixed pool — byte-identical legacy behaviour) or `Mn` (the
    /// work-stealing lightweight-task runtime in `core::sched`).
    pub handler_runtime: HandlerRuntime,
    /// OS worker threads driving the M:N runtime. `0` = auto
    /// (currently 4). Ignored under `handler_runtime = Threads`, where
    /// `handlers` sizes the pool as before.
    pub handler_workers: usize,
    /// Cap on concurrently in-flight lightweight call tasks (runnable +
    /// running + parked) under the M:N runtime; workers stop popping
    /// admission when at the cap, leaving calls queued (backpressure,
    /// not rejection). `0` (default) = memory-bound, no cap. Ignored
    /// under `Threads`.
    pub max_inflight_calls: usize,
    /// Reader-shard work-stealing: an idle reader shard steals a ready
    /// token from a hot sibling's ready queue (per-connection order is
    /// preserved — the stolen connection is serviced under its owner's
    /// slot-table lock). Off by default; stealing shifts per-shard
    /// `processed` attribution, so the committed baselines keep it off.
    pub reader_steal: bool,
    /// Protocol names treated as the control/heartbeat class by the
    /// admission queue: within a tenant's DRR turn, calls to these
    /// protocols dequeue ahead of bulk calls, so a flood of bulk work
    /// cannot starve heartbeats. Empty (default) = single class,
    /// seed-identical FIFO order.
    pub priority_protocols: Vec<String>,
    /// Ablation baseline for the interned hot path: when `true` the
    /// client re-enacts the pre-interning per-call metadata work (owned
    /// key strings, a fresh reply channel) for real and charges
    /// [`crate::hostcost::legacy_call_ns`] to its node's modeled-time
    /// ledger on every attempt. Off by default — the normal path is
    /// allocation-free and charges nothing.
    pub legacy_metadata: bool,
}

/// Upper bound on explicit shard counts — far above any sane
/// configuration; catches arithmetic mistakes (e.g. `usize::MAX`).
pub(crate) const MAX_SHARDS: usize = 1024;

/// Upper bound on `large_slots`: the slot ring's start index and consumed
/// count each ride a 12-bit field of the write-with-imm immediate.
pub const MAX_LARGE_SLOTS: usize = 2048;

/// Reader shard count used when `reader_shards` is `0` (auto).
pub(crate) const AUTO_READER_SHARDS: usize = 4;

/// Responder shard count used when `responder_shards` is `0` (auto):
/// one, matching the paper's single Responder thread.
pub(crate) const AUTO_RESPONDER_SHARDS: usize = 1;

/// M:N worker count used when `handler_workers` is `0` (auto): four, the
/// figure's reference point ("100k parked calls on 4 workers").
pub(crate) const AUTO_HANDLER_WORKERS: usize = 4;

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            ib_enabled: false,
            rdma_threshold: 16 * 1024,
            handlers: 8,
            call_queue_len: 4096,
            call_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            retry_cache_ttl: Duration::from_secs(120),
            retry_cache_capacity: 8192,
            use_size_history: true,
            prefill_per_class: 4,
            recv_buf_bytes: 64 * 1024,
            posted_recvs: 32,
            large_region_bytes: 4 * 1024 * 1024,
            large_slots: 4,
            adaptive_rdma_threshold: false,
            trace_sizes: false,
            server_buffer_init: 10 * 1024,
            reader_shards: 0,
            responder_shards: 0,
            wire_batch: true,
            max_wire_version: crate::handshake::MAX_VERSION,
            tenant_weights: Vec::new(),
            tenant_quota: 0,
            deadline_propagation: true,
            max_connections: 0,
            accept_backlog: 64,
            handler_runtime: HandlerRuntime::Threads,
            handler_workers: 0,
            max_inflight_calls: 0,
            reader_steal: false,
            priority_protocols: Vec::new(),
            legacy_metadata: false,
        }
    }
}

impl RpcConfig {
    /// Default socket-based configuration (runs on any fabric model).
    pub fn socket() -> Self {
        RpcConfig::default()
    }

    /// RPCoIB configuration (requires an RDMA-capable fabric model).
    pub fn rpcoib() -> Self {
        RpcConfig {
            ib_enabled: true,
            ..RpcConfig::default()
        }
    }

    /// The effective reader shard count (resolving `0` = auto).
    pub fn effective_reader_shards(&self) -> usize {
        if self.reader_shards == 0 {
            AUTO_READER_SHARDS
        } else {
            self.reader_shards
        }
    }

    /// The effective responder shard count (resolving `0` = auto).
    pub fn effective_responder_shards(&self) -> usize {
        if self.responder_shards == 0 {
            AUTO_RESPONDER_SHARDS
        } else {
            self.responder_shards
        }
    }

    /// The effective M:N worker count (resolving `0` = auto).
    pub fn effective_handler_workers(&self) -> usize {
        if self.handler_workers == 0 {
            AUTO_HANDLER_WORKERS
        } else {
            self.handler_workers
        }
    }

    /// Whether any QoS feature (weights or quotas) asks the server for
    /// weighted-fair admission instead of the plain FIFO call queue.
    pub fn qos_enabled(&self) -> bool {
        self.tenant_quota > 0 || !self.tenant_weights.is_empty()
    }

    /// Validate internal consistency; called by client/server construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.handlers == 0 {
            return Err("handlers must be >= 1".into());
        }
        if self.reader_shards > MAX_SHARDS {
            return Err(format!(
                "reader_shards ({}) exceeds the sanity cap ({MAX_SHARDS})",
                self.reader_shards
            ));
        }
        if self.responder_shards > MAX_SHARDS {
            return Err(format!(
                "responder_shards ({}) exceeds the sanity cap ({MAX_SHARDS})",
                self.responder_shards
            ));
        }
        if !(crate::handshake::MIN_VERSION..=crate::handshake::MAX_VERSION)
            .contains(&self.max_wire_version)
        {
            return Err(format!(
                "max_wire_version ({}) outside the supported range {}..={}",
                self.max_wire_version,
                crate::handshake::MIN_VERSION,
                crate::handshake::MAX_VERSION
            ));
        }
        self.retry.validate()?;
        let mut seen_tenants = std::collections::HashSet::new();
        for &(tenant, weight) in &self.tenant_weights {
            if weight == 0 {
                return Err(format!("tenant_weights: tenant {tenant} has weight 0"));
            }
            if !seen_tenants.insert(tenant) {
                return Err(format!("tenant_weights: tenant {tenant} listed twice"));
            }
        }
        if self.tenant_quota > self.call_queue_len {
            return Err(format!(
                "tenant_quota ({}) exceeds call_queue_len ({}): the quota could never bind",
                self.tenant_quota, self.call_queue_len
            ));
        }
        if self.accept_backlog == 0 {
            return Err("accept_backlog must be >= 1 (no connection could ever set up)".into());
        }
        if self.handler_workers > MAX_SHARDS {
            return Err(format!(
                "handler_workers ({}) exceeds the sanity cap ({MAX_SHARDS})",
                self.handler_workers
            ));
        }
        if self.max_inflight_calls != 0
            && self.max_inflight_calls < self.effective_handler_workers()
        {
            return Err(format!(
                "max_inflight_calls ({}) below handler_workers ({}): workers could never all run",
                self.max_inflight_calls,
                self.effective_handler_workers()
            ));
        }
        {
            let mut seen = std::collections::HashSet::new();
            for proto in &self.priority_protocols {
                if proto.is_empty() {
                    return Err("priority_protocols: empty protocol name".into());
                }
                if !seen.insert(proto.as_str()) {
                    return Err(format!("priority_protocols: {proto:?} listed twice"));
                }
            }
        }
        if self.retry_cache_capacity > 0 && self.retry_cache_ttl.is_zero() {
            return Err("retry_cache_ttl must be > 0 when the retry cache is enabled".into());
        }
        if self.ib_enabled {
            if self.rdma_threshold > self.recv_buf_bytes {
                return Err(format!(
                    "rdma_threshold ({}) exceeds recv_buf_bytes ({}): small frames would not \
                     fit in posted receive buffers",
                    self.rdma_threshold, self.recv_buf_bytes
                ));
            }
            if self.posted_recvs == 0 {
                return Err("posted_recvs must be >= 1".into());
            }
            if self.large_region_bytes < self.recv_buf_bytes {
                return Err("large_region_bytes must be >= recv_buf_bytes".into());
            }
            if self.large_slots == 0 || self.large_slots > MAX_LARGE_SLOTS {
                return Err(format!(
                    "large_slots ({}) must be in 1..={MAX_LARGE_SLOTS} (the slot index and \
                     consumed count must fit the write-with-imm encoding)",
                    self.large_slots
                ));
            }
            if !self.large_region_bytes.is_multiple_of(self.large_slots) {
                return Err(format!(
                    "large_region_bytes ({}) must be a multiple of large_slots ({})",
                    self.large_region_bytes, self.large_slots
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        RpcConfig::socket().validate().unwrap();
        RpcConfig::rpcoib().validate().unwrap();
    }

    #[test]
    fn bad_threshold_is_rejected() {
        let cfg = RpcConfig {
            rdma_threshold: 1 << 20,
            ..RpcConfig::rpcoib()
        };
        assert!(cfg.validate().is_err());
        // Irrelevant for socket mode.
        let cfg = RpcConfig {
            rdma_threshold: 1 << 20,
            ..RpcConfig::socket()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn bad_slot_counts_are_rejected() {
        for bad in [0usize, MAX_LARGE_SLOTS + 1, usize::MAX] {
            let cfg = RpcConfig {
                large_slots: bad,
                ..RpcConfig::rpcoib()
            };
            assert!(
                cfg.validate().is_err(),
                "large_slots={bad} must be rejected"
            );
        }
        // The region must split evenly into slots.
        let cfg = RpcConfig {
            large_region_bytes: 4 * 1024 * 1024,
            large_slots: 3,
            ..RpcConfig::rpcoib()
        };
        assert!(cfg.validate().is_err());
        // A one-deep ring (the legacy gate shape) stays valid.
        let cfg = RpcConfig {
            large_slots: 1,
            ..RpcConfig::rpcoib()
        };
        cfg.validate().unwrap();
        // Socket mode does not care.
        let cfg = RpcConfig {
            large_slots: 0,
            ..RpcConfig::socket()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_handlers_rejected() {
        let cfg = RpcConfig {
            handlers: 0,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_ttl_with_enabled_cache_rejected() {
        let cfg = RpcConfig {
            retry_cache_ttl: Duration::ZERO,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        // A disabled cache (capacity 0) does not care about the TTL.
        let cfg = RpcConfig {
            retry_cache_ttl: Duration::ZERO,
            retry_cache_capacity: 0,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn shard_defaults_resolve_to_paper_shape() {
        let cfg = RpcConfig::default();
        assert_eq!(cfg.reader_shards, 0);
        assert_eq!(cfg.responder_shards, 0);
        assert_eq!(cfg.effective_reader_shards(), AUTO_READER_SHARDS);
        // Auto keeps the paper's single-Responder behaviour.
        assert_eq!(cfg.effective_responder_shards(), 1);
        let cfg = RpcConfig {
            reader_shards: 2,
            responder_shards: 8,
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.effective_reader_shards(), 2);
        assert_eq!(cfg.effective_responder_shards(), 8);
    }

    #[test]
    fn absurd_shard_counts_rejected() {
        let cfg = RpcConfig {
            reader_shards: MAX_SHARDS + 1,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = RpcConfig {
            responder_shards: usize::MAX,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn wire_version_bounds_enforced() {
        for bad in [0u8, 1, crate::handshake::MAX_VERSION + 1] {
            let cfg = RpcConfig {
                max_wire_version: bad,
                ..RpcConfig::default()
            };
            assert!(cfg.validate().is_err(), "version {bad} must be rejected");
        }
        let cfg = RpcConfig {
            max_wire_version: 2,
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn qos_knobs_validated() {
        // Defaults: QoS off.
        assert!(!RpcConfig::default().qos_enabled());
        // Either knob flips it on.
        let cfg = RpcConfig {
            tenant_quota: 64,
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
        assert!(cfg.qos_enabled());
        let cfg = RpcConfig {
            tenant_weights: vec![(7, 4), (9, 1)],
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
        assert!(cfg.qos_enabled());
        // Zero weights and duplicate tenants are config mistakes.
        let cfg = RpcConfig {
            tenant_weights: vec![(7, 0)],
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = RpcConfig {
            tenant_weights: vec![(7, 1), (7, 2)],
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        // A quota wider than the whole queue could never bind.
        let cfg = RpcConfig {
            tenant_quota: 8192,
            call_queue_len: 4096,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn connection_limits_validated() {
        // Defaults: unlimited conns, bounded setup backlog.
        let cfg = RpcConfig::default();
        assert_eq!(cfg.max_connections, 0);
        assert_eq!(cfg.accept_backlog, 64);
        // Any max_connections value is legal (0 = unlimited)...
        let cfg = RpcConfig {
            max_connections: 1,
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
        // ...but a zero accept backlog could never admit a connection.
        let cfg = RpcConfig {
            accept_backlog: 0,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn handler_runtime_knobs_validated() {
        // Defaults: legacy thread pool, auto worker count, no cap.
        let cfg = RpcConfig::default();
        assert_eq!(cfg.handler_runtime, HandlerRuntime::Threads);
        assert_eq!(cfg.handler_workers, 0);
        assert_eq!(cfg.effective_handler_workers(), AUTO_HANDLER_WORKERS);
        assert_eq!(cfg.max_inflight_calls, 0);
        assert!(!cfg.reader_steal);
        assert!(cfg.priority_protocols.is_empty());
        // Name/parse round-trips are the env/config spelling.
        for rt in [HandlerRuntime::Threads, HandlerRuntime::Mn] {
            assert_eq!(HandlerRuntime::parse(rt.name()), Some(rt));
        }
        assert_eq!(HandlerRuntime::parse("fibers"), None);
        // A sane mn config validates.
        let cfg = RpcConfig {
            handler_runtime: HandlerRuntime::Mn,
            handler_workers: 4,
            max_inflight_calls: 100_000,
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
        // A cap below the worker count could never let them all run.
        let cfg = RpcConfig {
            handler_runtime: HandlerRuntime::Mn,
            handler_workers: 8,
            max_inflight_calls: 4,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        // ...and the auto worker count participates in that check.
        let cfg = RpcConfig {
            max_inflight_calls: AUTO_HANDLER_WORKERS - 1,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        // Absurd worker counts are caught like shard counts.
        let cfg = RpcConfig {
            handler_workers: MAX_SHARDS + 1,
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn priority_protocols_validated() {
        let cfg = RpcConfig {
            priority_protocols: vec!["hdfs.Heartbeat".into()],
            ..RpcConfig::default()
        };
        cfg.validate().unwrap();
        let cfg = RpcConfig {
            priority_protocols: vec![String::new()],
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = RpcConfig {
            priority_protocols: vec!["a".into(), "a".into()],
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_retry_policy_rejected() {
        let cfg = RpcConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..RpcConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
