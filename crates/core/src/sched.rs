//! The M:N handler runtime: work-stealing lightweight tasks.
//!
//! The paper's server executes every call on a dedicated OS thread from a
//! fixed pool, so in-flight concurrency is capped at `cfg.handlers` — a
//! slow handler pins a thread for its whole duration. Following the
//! bRPC/bthread argument (and Ibdxnet's, for highly concurrent
//! InfiniBand applications): decouple *logical* concurrency from kernel
//! threads. This module provides the runtime the server mounts when
//! `RpcConfig::handler_runtime` is [`mn`](crate::config::HandlerRuntime):
//!
//! * **Lightweight tasks** — a task is a heap-allocated call frame (a
//!   boxed `FnMut` closure plus wake bookkeeping, tens of bytes) with
//!   *explicit* yield/park points. No stack switching: handlers are
//!   already closure-shaped, so suspension is "return
//!   [`Step::Park`] and be polled again", exactly like a hand-rolled
//!   future. A parked call costs bytes, not a thread.
//! * **Per-worker LIFO run queues with stealing** — each worker owns a
//!   deque: it pushes and pops at the back (LIFO, for cache-warm
//!   continuations), thieves take from the front (FIFO, the oldest —
//!   the Chase-Lev discipline, here under a short mutex rather than a
//!   lock-free deque since queue ops are nanoseconds against
//!   microsecond-scale handler bodies).
//! * **A global injector** — new calls popped from the
//!   [`AdmissionQueue`](crate::admission::AdmissionQueue) enter in DRR
//!   pop order, and externally woken tasks re-enter here, visible to
//!   every worker.
//! * **A parker on the modeled-time ledger's terms** — parking charges
//!   **zero** nanoseconds to any node: the task's frame sits in its
//!   [`WakeHandle`] slot (or the timer heap for [`park_until`]
//!   deadlines) and no thread spins or sleeps on its behalf. Wakes
//!   follow the PR-8 `WakeSlot`/[`WakeState`](crate::readiness)
//!   contract: firing is charge-free, non-blocking, idempotent while
//!   armed (at most one requeue per park), and a wake racing the park
//!   itself is never lost — it is observed at park-commit time and the
//!   task re-queues instead of suspending.
//!
//! Time is an explicit `now_ns` argument on every operation, exactly
//! like the admission queue: the server's workers feed a monotonic
//! reading, while the `handlers_mn` bench figure drives the very same
//! structure single-threaded on virtual time — which is what makes its
//! committed JSON baseline bit-for-bit reproducible.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::metrics::ShardStats;

/// What one poll of a task produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The task is finished; its frame is dropped.
    Done,
    /// Cooperative yield: requeue at the stealing end of the worker's
    /// deque, so everything already runnable goes first.
    Yield,
    /// Suspend. The task is re-queued when its [`WakeHandle`] fires —
    /// from the timer heap if [`TaskCx::park_until_ns`] set a deadline,
    /// or from any thread holding a clone of the handle.
    Park,
}

/// Outcome of [`Sched::run`], for drivers that track per-task progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    Done,
    Yielded,
    Parked,
    /// The task asked to park but a wake had already fired during the
    /// poll; it was re-queued immediately instead of suspending.
    WakePending,
}

/// Context handed to a task on every poll.
pub struct TaskCx {
    now_ns: u64,
    polls: u64,
    wake: WakeHandle,
    park_deadline_ns: Option<u64>,
}

impl TaskCx {
    /// The driver's clock reading for this poll (the server's monotonic
    /// ns-since-start, or virtual time under the bench harness).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Times this task has been polled before the current poll.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Arm the parker's timer: when the task returns [`Step::Park`], it
    /// wakes no later than the first [`Sched::fire_timers`] whose
    /// `now_ns` reaches `at_ns`. Without this, a parked task waits for
    /// its [`WakeHandle`] alone.
    pub fn park_until_ns(&mut self, at_ns: u64) {
        self.park_deadline_ns = Some(at_ns);
    }

    /// A clonable wake handle for external events (a stream becoming
    /// readable, a completion arriving). Fits anywhere a PR-8 wake hook
    /// does: firing is charge-free, non-blocking, and idempotent per
    /// park.
    pub fn wake_handle(&self) -> WakeHandle {
        self.wake.clone()
    }
}

/// A lightweight task: the boxed call frame plus its wake cell.
pub struct Task {
    poll: Box<dyn FnMut(&mut TaskCx) -> Step + Send>,
    wake: Arc<WakeCell>,
    polls: u64,
}

/// The parked-task state machine (the `WakeSlot` contract, with the
/// frame itself riding in the slot):
///
/// * `Running { notified: false }` — owned by a queue or a polling
///   worker; a wake sets `notified`.
/// * `Running { notified: true }` — a wake fired while the task was not
///   parked; the next park-commit consumes it and requeues instead of
///   suspending. Further wakes coalesce (at most one requeue per park).
/// * `Parked(frame)` — suspended; the *only* owner of the frame. A wake
///   takes the frame and injects it.
/// * `Done` — completed; wakes (e.g. a late timer) are inert.
enum WakeSt {
    Running { notified: bool },
    Parked(Task),
    Done,
}

struct WakeCell {
    st: Mutex<WakeSt>,
    sched: Weak<SchedInner>,
    /// Stats of the worker that parked the task, so the wake is
    /// attributed to it wherever the wake itself runs.
    parked_by: Mutex<Option<Arc<ShardStats>>>,
}

/// Clonable wake handle for one task. See [`TaskCx::wake_handle`].
#[derive(Clone)]
pub struct WakeHandle {
    cell: Arc<WakeCell>,
}

impl WakeHandle {
    /// Fire the wake: if the task is parked, move it to the global
    /// injector and notify an idle worker; if it is running or queued,
    /// mark it notified so its next park becomes a requeue. Charge-free,
    /// non-blocking, idempotent while armed; inert after completion.
    pub fn wake(&self) {
        let Some(sched) = self.cell.sched.upgrade() else {
            return; // runtime gone (abrupt stop)
        };
        let mut st = self.cell.st.lock();
        match std::mem::replace(&mut *st, WakeSt::Done) {
            WakeSt::Parked(task) => {
                *st = WakeSt::Running { notified: false };
                drop(st);
                if let Some(stats) = self.cell.parked_by.lock().as_ref() {
                    stats.inc_wake();
                }
                sched.parked.fetch_sub(1, Ordering::AcqRel);
                sched.inject(task);
            }
            WakeSt::Running { .. } => {
                *st = WakeSt::Running { notified: true };
            }
            WakeSt::Done => {} // keep Done
        }
    }

    /// Adapt this handle into a PR-8 style wake hook (what
    /// `Conn::set_ready_hook` and `simnet::WakeSlot::set` accept), so a
    /// streaming handler can park until a transport readiness edge.
    pub fn hook(&self) -> Arc<dyn Fn() + Send + Sync> {
        let h = self.clone();
        Arc::new(move || h.wake())
    }
}

/// One timer-heap entry, min-ordered by `(at_ns, seq)`; `seq` breaks
/// ties in park order so firing is deterministic.
struct TimerEntry {
    at_ns: u64,
    seq: u64,
    wake: WakeHandle,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

struct SchedInner {
    /// Per-worker run queues: owner at the back, thieves at the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// The global injector: new calls (in admission DRR order) and
    /// externally woken tasks.
    injector: Mutex<VecDeque<Task>>,
    /// Parked tasks with a deadline, min-heap on `(at_ns, seq)`.
    timers: Mutex<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: AtomicU64,
    /// Tasks spawned and not yet completed (runnable + running + parked).
    inflight: AtomicUsize,
    /// Currently parked tasks, plus the lifetime high-water mark — the
    /// "in-flight calls cost bytes" claim, observable.
    parked: AtomicUsize,
    parked_peak: AtomicUsize,
    /// Idle workers block here; wakes, spawns, injections, admission
    /// pushes, and close all notify.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    closed: AtomicBool,
    stats: Vec<Arc<ShardStats>>,
}

impl SchedInner {
    fn inject(&self, task: Task) {
        self.injector.lock().push_back(task);
        self.idle_cv.notify_one();
    }
}

/// The work-stealing M:N scheduler. Passive by design: it owns no
/// threads. The server's `mn` worker loops drive it on wall-derived
/// monotonic time; the `handlers_mn` bench figure drives the identical
/// structure single-threaded on virtual time.
pub struct Sched {
    inner: Arc<SchedInner>,
}

impl Sched {
    /// A scheduler for `workers` worker loops. `stats` must hold one
    /// counter block per worker (the server registers them as
    /// `ShardRole::Worker`; standalone drivers pass fresh ones).
    pub fn new(workers: usize, stats: Vec<Arc<ShardStats>>) -> Sched {
        assert!(workers >= 1, "at least one worker");
        assert_eq!(stats.len(), workers, "one stats block per worker");
        Sched {
            inner: Arc::new(SchedInner {
                locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                injector: Mutex::new(VecDeque::new()),
                timers: Mutex::new(BinaryHeap::new()),
                timer_seq: AtomicU64::new(0),
                inflight: AtomicUsize::new(0),
                parked: AtomicUsize::new(0),
                parked_peak: AtomicUsize::new(0),
                idle_lock: Mutex::new(()),
                idle_cv: Condvar::new(),
                closed: AtomicBool::new(false),
                stats,
            }),
        }
    }

    pub fn workers(&self) -> usize {
        self.inner.locals.len()
    }

    /// Spawn a task onto `worker`'s own queue (LIFO end — it runs next
    /// on that worker unless stolen). This is how a worker turns a call
    /// it just popped from the admission queue into a frame without
    /// losing locality.
    pub fn spawn(&self, worker: usize, poll: impl FnMut(&mut TaskCx) -> Step + Send + 'static) {
        let task = self.make_task(Box::new(poll));
        self.inner.locals[worker].lock().push_back(task);
        self.inner.idle_cv.notify_one();
    }

    /// Spawn a task onto the global injector (FIFO). External producers
    /// — and the bench harness modelling arrivals — use this.
    pub fn inject(&self, poll: impl FnMut(&mut TaskCx) -> Step + Send + 'static) {
        let task = self.make_task(Box::new(poll));
        self.inner.inject(task);
    }

    fn make_task(&self, poll: Box<dyn FnMut(&mut TaskCx) -> Step + Send>) -> Task {
        self.inner.inflight.fetch_add(1, Ordering::AcqRel);
        Task {
            poll,
            wake: Arc::new(WakeCell {
                st: Mutex::new(WakeSt::Running { notified: false }),
                sched: Arc::downgrade(&self.inner),
                parked_by: Mutex::new(None),
            }),
            polls: 0,
        }
    }

    /// Fire every timer whose deadline has passed at `now_ns`, waking
    /// the parked tasks in deadline order. Returns how many fired.
    pub fn fire_timers(&self, now_ns: u64) -> usize {
        let mut fired = 0;
        loop {
            let wake = {
                let mut timers = self.inner.timers.lock();
                match timers.peek() {
                    Some(Reverse(e)) if e.at_ns <= now_ns => timers.pop().expect("peeked").0.wake,
                    _ => break,
                }
            };
            // Outside the heap lock: the wake takes the cell lock and
            // may inject.
            wake.wake();
            fired += 1;
        }
        fired
    }

    /// The earliest armed timer deadline, if any (idle workers bound
    /// their sleep with it).
    pub fn next_timer_ns(&self) -> Option<u64> {
        self.inner.timers.lock().peek().map(|Reverse(e)| e.at_ns)
    }

    /// Take the next runnable task for `worker`: own queue's LIFO end,
    /// else the injector's FIFO head, else steal the oldest task from a
    /// sibling (scanned round-robin from `worker + 1`, counted on the
    /// thief).
    pub fn next_task(&self, worker: usize) -> Option<Task> {
        if let Some(task) = self.inner.locals[worker].lock().pop_back() {
            return Some(task);
        }
        if let Some(task) = self.inner.injector.lock().pop_front() {
            return Some(task);
        }
        let n = self.inner.locals.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(task) = self.inner.locals[victim].lock().pop_front() {
                self.inner.stats[worker].inc_steal();
                return Some(task);
            }
        }
        None
    }

    /// Poll `task` once on behalf of `worker` at time `now_ns`, then
    /// retire, requeue, or park it per the returned [`Step`].
    pub fn run(&self, worker: usize, mut task: Task, now_ns: u64) -> RunOutcome {
        let mut cx = TaskCx {
            now_ns,
            polls: task.polls,
            wake: WakeHandle {
                cell: Arc::clone(&task.wake),
            },
            park_deadline_ns: None,
        };
        let step = (task.poll)(&mut cx);
        task.polls += 1;
        let stats = &self.inner.stats[worker];
        match step {
            Step::Done => {
                *task.wake.st.lock() = WakeSt::Done;
                self.inner.inflight.fetch_sub(1, Ordering::AcqRel);
                stats.inc_processed();
                RunOutcome::Done
            }
            Step::Yield => {
                // The stealing end: behind everything already queued
                // locally, ahead of nothing.
                self.inner.locals[worker].lock().push_front(task);
                self.inner.idle_cv.notify_one();
                RunOutcome::Yielded
            }
            Step::Park => {
                let cell = Arc::clone(&task.wake);
                *cell.parked_by.lock() = Some(Arc::clone(stats));
                let mut st = cell.st.lock();
                match *st {
                    WakeSt::Running { notified: true } => {
                        // A wake raced the poll: honor it now instead of
                        // suspending (the no-lost-wakeup half of the
                        // contract).
                        *st = WakeSt::Running { notified: false };
                        drop(st);
                        stats.inc_wake();
                        self.inner.inject(task);
                        RunOutcome::WakePending
                    }
                    _ => {
                        if let Some(at_ns) = cx.park_deadline_ns {
                            let seq = self.inner.timer_seq.fetch_add(1, Ordering::Relaxed);
                            self.inner.timers.lock().push(Reverse(TimerEntry {
                                at_ns,
                                seq,
                                wake: WakeHandle {
                                    cell: Arc::clone(&cell),
                                },
                            }));
                        }
                        *st = WakeSt::Parked(task);
                        drop(st);
                        stats.inc_park();
                        let parked = self.inner.parked.fetch_add(1, Ordering::AcqRel) + 1;
                        self.inner.parked_peak.fetch_max(parked, Ordering::AcqRel);
                        RunOutcome::Parked
                    }
                }
            }
        }
    }

    /// Spawned tasks not yet completed (runnable + running + parked).
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::Acquire)
    }

    /// Tasks currently parked.
    pub fn parked(&self) -> usize {
        self.inner.parked.load(Ordering::Acquire)
    }

    /// Lifetime high-water mark of concurrently parked tasks.
    pub fn parked_peak(&self) -> usize {
        self.inner.parked_peak.load(Ordering::Acquire)
    }

    /// Tasks sitting in run queues (locals + injector), excluding parked
    /// and currently-polling ones.
    pub fn queued(&self) -> usize {
        let locals: usize = self.inner.locals.iter().map(|q| q.lock().len()).sum();
        locals + self.inner.injector.lock().len()
    }

    /// Armed timer entries (fired entries leave the heap immediately).
    pub fn timers_len(&self) -> usize {
        self.inner.timers.lock().len()
    }

    /// Everything still held by the runtime — the drain-residue gauge:
    /// zero means no frame, queue slot, or timer entry survives.
    pub fn residue(&self) -> usize {
        self.inflight() + self.timers_len()
    }

    /// Wake one idle worker (a producer made new work observable — e.g.
    /// the reader pushed onto the admission queue).
    pub fn notify(&self) {
        self.inner.idle_cv.notify_one();
    }

    /// Block the calling worker until notified or `timeout`, whichever
    /// first. Callers bound `timeout` by [`Sched::next_timer_ns`] so a
    /// deadline park never oversleeps. Returns immediately once closed.
    pub fn idle_wait(&self, timeout: Duration) {
        if self.inner.closed.load(Ordering::Acquire) {
            return;
        }
        let mut guard = self.inner.idle_lock.lock();
        if self.inner.closed.load(Ordering::Acquire) {
            return;
        }
        let _ = self.inner.idle_cv.wait_for(&mut guard, timeout);
    }

    /// Close the runtime: every idle worker wakes; subsequent
    /// `idle_wait`s return immediately. Queued tasks stay runnable so a
    /// drain can finish them.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.idle_cv.notify_all();
    }

    pub fn closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sched")
            .field("workers", &self.workers())
            .field("inflight", &self.inflight())
            .field("parked", &self.parked())
            .field("queued", &self.queued())
            .finish()
    }
}

/// What one `call_mn` poll of a service produced.
pub enum CallPoll {
    /// The call finished with the service's result (the same shape
    /// [`RpcService::call`](crate::service::RpcService::call) returns).
    Ready(Result<Box<dyn wire::Writable + Send>, String>),
    /// The call suspends; honor the park/yield request recorded on the
    /// [`HandlerCx`] and poll again later.
    Pending,
}

/// What a pending handler asked the runtime to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkRequest {
    /// Park until the external [`WakeHandle`] fires.
    Handle,
    /// Cooperative yield: runnable again immediately, behind queued work.
    Yield,
    /// Park until the given absolute `now_ns` deadline (or an earlier
    /// external wake).
    Until(u64),
}

/// The `Yield`/`park_until` surface handlers gain under the `mn`
/// runtime: per-poll context for services implementing
/// [`RpcService::call_mn`](crate::service::RpcService::call_mn).
///
/// A suspending service records *one* request (`yield_now`, `park_for`,
/// `park_until_ns`, or nothing — meaning "until my [`WakeHandle`]
/// fires") and returns [`CallPoll::Pending`]; per-call state survives
/// across polls in [`HandlerCx::stash`].
pub struct HandlerCx<'a> {
    polls: u64,
    now_ns: u64,
    wake: WakeHandle,
    stash: &'a mut Option<Box<dyn Any + Send>>,
    request: ParkRequest,
}

impl<'a> HandlerCx<'a> {
    pub(crate) fn new(cx: &TaskCx, stash: &'a mut Option<Box<dyn Any + Send>>) -> HandlerCx<'a> {
        HandlerCx {
            polls: cx.polls,
            now_ns: cx.now_ns,
            wake: cx.wake_handle(),
            stash,
            request: ParkRequest::Handle,
        }
    }

    pub(crate) fn request(&self) -> ParkRequest {
        self.request
    }

    /// True on the call's first poll.
    pub fn first_poll(&self) -> bool {
        self.polls == 0
    }

    /// Completed polls before this one.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The runtime's clock for this poll (server-monotonic ns).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Request a cooperative yield: when the service returns
    /// [`CallPoll::Pending`], the call re-queues behind already-runnable
    /// work instead of parking.
    pub fn yield_now(&mut self) {
        self.request = ParkRequest::Yield;
    }

    /// Request a timed park ending at the absolute deadline `at_ns` on
    /// the runtime's clock.
    pub fn park_until_ns(&mut self, at_ns: u64) {
        self.request = ParkRequest::Until(at_ns);
    }

    /// Request a timed park of `d` from now.
    pub fn park_for(&mut self, d: Duration) {
        self.park_until_ns(self.now_ns.saturating_add(d.as_nanos() as u64));
    }

    /// The call's wake handle, for parks ended by an external event
    /// rather than a deadline. Clone it anywhere; firing it is
    /// charge-free and idempotent per park.
    pub fn wake_handle(&self) -> WakeHandle {
        self.wake.clone()
    }

    /// Per-call state that survives across polls (the "call frame" a
    /// suspending handler keeps between its explicit suspension points).
    pub fn stash(&mut self) -> &mut Option<Box<dyn Any + Send>> {
        self.stash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn sched(workers: usize) -> Sched {
        let stats = (0..workers)
            .map(|_| Arc::new(ShardStats::default()))
            .collect();
        Sched::new(workers, stats)
    }

    fn drain_worker(s: &Sched, worker: usize, now_ns: u64) -> usize {
        let mut ran = 0;
        s.fire_timers(now_ns);
        while let Some(t) = s.next_task(worker) {
            s.run(worker, t, now_ns);
            ran += 1;
        }
        ran
    }

    #[test]
    fn lifo_local_fifo_steal() {
        let s = sched(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let order = Arc::clone(&order);
            s.spawn(0, move |_cx| {
                order.lock().push(i);
                Step::Done
            });
        }
        // Thief (worker 1) takes the *oldest* task; the owner then runs
        // its remaining queue newest-first.
        let stolen = s.next_task(1).expect("steal");
        s.run(1, stolen, 0);
        assert_eq!(*order.lock(), vec![0]);
        drain_worker(&s, 0, 0);
        assert_eq!(*order.lock(), vec![0, 2, 1]);
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn yield_requeues_behind_local_work() {
        let s = sched(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let order = Arc::clone(&order);
            s.spawn(0, move |cx| {
                order.lock().push(format!("a{}", cx.polls()));
                if cx.polls() == 0 {
                    Step::Yield
                } else {
                    Step::Done
                }
            });
        }
        {
            let order = Arc::clone(&order);
            s.spawn(0, move |_cx| {
                order.lock().push("b".into());
                Step::Done
            });
        }
        drain_worker(&s, 0, 0);
        // b was spawned later (LIFO: runs first); a yields and runs
        // again only after the queue drains to it.
        assert_eq!(*order.lock(), vec!["b", "a0", "a1"]);
    }

    #[test]
    fn park_until_wakes_via_timer_in_deadline_order() {
        let s = sched(1);
        let done = Arc::new(Mutex::new(Vec::new()));
        for (i, deadline) in [(0u32, 500u64), (1, 200), (2, 800)] {
            let done = Arc::clone(&done);
            s.spawn(0, move |cx| {
                if cx.polls() == 0 {
                    cx.park_until_ns(deadline);
                    return Step::Park;
                }
                done.lock().push(i);
                Step::Done
            });
        }
        drain_worker(&s, 0, 0);
        assert_eq!(s.parked(), 3);
        assert_eq!(s.parked_peak(), 3);
        assert_eq!(done.lock().len(), 0);
        // Time advances past two deadlines: exactly those fire, in
        // deadline order.
        drain_worker(&s, 0, 600);
        assert_eq!(*done.lock(), vec![1, 0]);
        assert_eq!(s.parked(), 1);
        drain_worker(&s, 0, 1_000);
        assert_eq!(*done.lock(), vec![1, 0, 2]);
        assert_eq!(s.residue(), 0, "no frame or timer survives");
    }

    #[test]
    fn external_wake_handle_requeues_once() {
        let s = sched(1);
        let hits = Arc::new(AtomicU32::new(0));
        let handle: Arc<Mutex<Option<WakeHandle>>> = Arc::new(Mutex::new(None));
        {
            let hits = Arc::clone(&hits);
            let handle = Arc::clone(&handle);
            s.spawn(0, move |cx| {
                hits.fetch_add(1, Ordering::Relaxed);
                if cx.polls() == 0 {
                    *handle.lock() = Some(cx.wake_handle());
                    return Step::Park;
                }
                Step::Done
            });
        }
        drain_worker(&s, 0, 0);
        assert_eq!(s.parked(), 1);
        let h = handle.lock().clone().expect("captured");
        // An edge storm coalesces: one requeue, then inert.
        h.wake();
        h.wake();
        h.wake();
        assert_eq!(s.parked(), 0);
        assert_eq!(s.queued(), 1);
        drain_worker(&s, 0, 0);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        // After completion the handle is inert.
        h.wake();
        assert_eq!(s.queued(), 0);
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn wake_during_poll_is_not_lost() {
        // The race the WakeSlot contract exists for: the wake fires
        // while the task is mid-poll deciding to park. The park must
        // become a requeue.
        let s = sched(1);
        let polls = Arc::new(AtomicU32::new(0));
        {
            let polls = Arc::clone(&polls);
            s.spawn(0, move |cx| {
                polls.fetch_add(1, Ordering::Relaxed);
                if cx.polls() == 0 {
                    // Fire the wake *before* returning Park.
                    cx.wake_handle().wake();
                    return Step::Park;
                }
                Step::Done
            });
        }
        let t = s.next_task(0).expect("spawned");
        assert_eq!(s.run(0, t, 0), RunOutcome::WakePending);
        assert_eq!(s.parked(), 0, "never suspended");
        drain_worker(&s, 0, 0);
        assert_eq!(polls.load(Ordering::Relaxed), 2);
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn timer_on_externally_woken_task_is_inert() {
        let s = sched(1);
        let handle: Arc<Mutex<Option<WakeHandle>>> = Arc::new(Mutex::new(None));
        let runs = Arc::new(AtomicU32::new(0));
        {
            let handle = Arc::clone(&handle);
            let runs = Arc::clone(&runs);
            s.spawn(0, move |cx| {
                if cx.polls() == 0 {
                    *handle.lock() = Some(cx.wake_handle());
                    cx.park_until_ns(10_000);
                    return Step::Park;
                }
                runs.fetch_add(1, Ordering::Relaxed);
                Step::Done
            });
        }
        drain_worker(&s, 0, 0);
        // External wake beats the timer…
        handle.lock().clone().unwrap().wake();
        drain_worker(&s, 0, 0);
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        // …and the stale timer entry fires into a Done cell: no-op.
        assert_eq!(s.timers_len(), 1);
        drain_worker(&s, 0, 20_000);
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        assert_eq!(s.residue(), 0);
    }

    #[test]
    fn counters_attribute_steals_parks_wakes() {
        let stats: Vec<_> = (0..2).map(|_| Arc::new(ShardStats::default())).collect();
        let s = Sched::new(2, stats.clone());
        s.spawn(0, |cx| {
            if cx.polls() == 0 {
                cx.park_until_ns(100);
                return Step::Park;
            }
            Step::Done
        });
        // Worker 1 steals the task and parks it; the timer wake is
        // attributed to the parker (worker 1), not the firing thread.
        let t = s.next_task(1).expect("steal");
        s.run(1, t, 0);
        s.fire_timers(200);
        drain_worker(&s, 1, 200);
        let snap = |i: usize| {
            let st: &ShardStats = &stats[i];
            // No snapshot accessor on ShardStats itself; go through a
            // registry-free read by formatting… instead just re-read via
            // the public counters on ShardSnapshot path in server tests.
            st
        };
        let _ = snap;
        // inc_* are write-only here; observable via MetricsRegistry in
        // the server-level tests. This test asserts scheduler behavior:
        assert_eq!(s.residue(), 0);
    }

    #[test]
    fn injector_preserves_fifo_across_workers() {
        let s = sched(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let order = Arc::clone(&order);
            s.inject(move |_cx| {
                order.lock().push(i);
                Step::Done
            });
        }
        // Alternating workers drain the injector in arrival order.
        for w in [0usize, 1, 0, 1] {
            let t = s.next_task(w).expect("injected");
            s.run(w, t, 0);
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn close_wakes_idle_waiters() {
        let s = Arc::new(sched(1));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            s2.idle_wait(Duration::from_secs(30));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        s.close();
        let waited = h.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "close must interrupt idle_wait"
        );
        s.idle_wait(Duration::from_secs(30)); // returns immediately when closed
    }
}
