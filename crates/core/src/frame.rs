//! Frame layout shared by both transports.
//!
//! Three frame versions coexist. **V2** carries the at-most-once
//! identity triple — a per-client id, a wrap-safe `i64` sequence number,
//! and the retry attempt — so the server's retry cache can recognize a
//! re-sent call:
//!
//! * request: `[i32 V2_SENTINEL][u64 client_id][i64 seq][vlong retry_attempt]
//!   [Text protocol][Text method][param …]`
//! * response: `[i32 V2_SENTINEL][i64 seq][u8 status][value … | Text error]`
//!
//! **V3** (current, handshake-negotiated) is the compact header the
//! wire-batching layer rides on. It is *connection-scoped*: the
//! handshake fixes the version for the whole connection, so frames carry
//! no per-frame version marker, and the client id travels once in the
//! handshake instead of in every request. Encode/decode state lives in a
//! [`V3Encoder`]/[`V3Decoder`] pair per connection direction:
//!
//! * request: `[vlong seq_field][vlong retry_attempt][vlong deadline_µs]
//!   [vlong method_ref]([Text protocol][Text method])?[param …]`
//! * response: `[vlong seq_field][u8 status][value … | Text error]`
//!
//! `deadline_µs` is the caller's remaining per-attempt deadline budget in
//! microseconds (`0` = none): the admission plane sheds a queued call
//! once that budget has elapsed instead of executing it (see
//! [`STATUS_EXPIRED`]). V2/V1 requests carry no budget and are never
//! shed.
//!
//! In **stateful** mode (stream transports, where a lost byte kills the
//! connection and its codec state with it) `seq_field` is the wrapping
//! delta from the previous frame's seq — almost always the single byte
//! `1` — and `method_ref` names the `<protocol, method>` pair by a small
//! per-connection wire id after its first use. In **self-contained**
//! mode (datagram-like verbs completions, where the fault model can drop
//! a frame without killing the connection) every frame decodes alone:
//! `seq_field` is the absolute seq and the method strings ride inline.
//!
//! **V1** (previous release) is still *decoded* for one release so an old
//! peer keeps working — the server's connect-time magic sniff (see
//! [`crate::handshake`]) lets a pre-handshake peer straight through to
//! this framing layer — and the server answers a V1 request with a V1
//! response:
//!
//! * request: `[i32 call_id][Text protocol][Text method][param …]`
//! * response: `[i32 call_id][u8 status][value … | Text error]`
//!
//! The version marker is an `i32` sentinel (`-2`) in the position where V1
//! kept its non-negative `call_id`, so one 4-byte read disambiguates.
//!
//! On the socket transport each payload is preceded by a 4-byte big-endian
//! length (Hadoop's `out.writeInt(dataLength)`); on the RDMA transport the
//! length travels in the completion, so no prefix is needed.

use std::io::{self, Read};
use std::time::Duration;

use bufpool::{PoolMem, PooledBuf};
use simnet::MemoryRegion;
use wire::{DataInput, DataOutput, Writable};

use crate::intern::{self, MethodKey};

/// Response status byte: success.
pub const STATUS_OK: u8 = 0;
/// Response status byte: the server reports an error string.
pub const STATUS_ERROR: u8 = 1;
/// Response status byte: the server's call queue is full; the call was
/// never executed and is safe to retry (V2 only).
pub const STATUS_BUSY: u8 = 2;
/// Response status byte: the call's propagated deadline budget expired
/// while it was queued, so the server shed it without executing it.
/// Retrying is pointless — the caller's deadline has passed — so clients
/// classify this as a non-retryable deadline failure (V2/V3 only).
pub const STATUS_EXPIRED: u8 = 3;

/// Marker in the leading `i32` slot distinguishing a V2 frame from a V1
/// frame (whose call ids are non-negative).
pub const V2_SENTINEL: i32 = -2;

/// Frame wire version. V1/V2 are detected per message from the leading
/// `i32`; V3 is fixed per connection by the handshake (no in-band
/// marker), so the transport layer tags V3 frames out of band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVersion {
    /// `[i32 call_id]`-headed frames from the previous release.
    V1,
    /// Frames carrying the at-most-once identity triple in-band.
    V2,
    /// Compact connection-scoped headers (see [`V3Encoder`]).
    V3,
}

/// Parsed request header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHeader {
    pub version: FrameVersion,
    /// Stable per-client identity (0 for V1 peers, which get no caching).
    pub client_id: u64,
    /// Client-assigned sequence number; retries of one logical call
    /// re-send the same value. For V1 frames this is the old `call_id`.
    pub seq: i64,
    /// 0 on the first transmission, incremented per re-send.
    pub retry_attempt: u32,
    /// Interned `<protocol, method>` key: the wire strings resolve to an
    /// id once per frame, and everything downstream carries this `Copy`
    /// handle instead of owned `String`s.
    pub key: MethodKey,
    /// Remaining per-attempt deadline budget propagated by the caller
    /// (V3 only; `None` for V2/V1 peers and for callers with no
    /// deadline). The admission plane sheds the call once this much time
    /// has passed since admission.
    pub deadline_budget: Option<Duration>,
}

impl RequestHeader {
    /// Protocol half of the interned key.
    pub fn protocol(&self) -> &'static str {
        self.key.protocol()
    }

    /// Method half of the interned key.
    pub fn method(&self) -> &'static str {
        self.key.method()
    }
}

/// Serialize a V2 request frame body (everything after the length prefix).
pub fn write_request(
    out: &mut dyn DataOutput,
    client_id: u64,
    seq: i64,
    retry_attempt: u32,
    protocol: &str,
    method: &str,
    param: &dyn Writable,
) -> io::Result<()> {
    out.write_i32(V2_SENTINEL)?;
    out.write_u64(client_id)?;
    out.write_i64(seq)?;
    // vlong, not `as i32` vint: an attempt count above i32::MAX would
    // silently go negative on the wire and round-trip to a different
    // value. The encodings are byte-identical for in-range values.
    out.write_vlong(i64::from(retry_attempt))?;
    out.write_string(protocol)?;
    out.write_string(method)?;
    param.write(out)
}

/// Serialize a V1 request frame body. Kept (for one release) so the
/// old-peer decode path stays exercised; new code writes V2.
pub fn write_request_v1(
    out: &mut dyn DataOutput,
    call_id: i32,
    protocol: &str,
    method: &str,
    param: &dyn Writable,
) -> io::Result<()> {
    out.write_i32(call_id)?;
    out.write_string(protocol)?;
    out.write_string(method)?;
    param.write(out)
}

/// Stack window for decoding key strings: real `<protocol, method>` names
/// are short, so steady-state decode never touches the heap; a longer name
/// spills to a one-off heap read.
const KEY_STACK: usize = 192;

/// Read one Hadoop `Text` string into the caller's buffers and hand back a
/// borrowed `&str` (no allocation unless the name overflows `KEY_STACK`).
fn read_key_text<'a>(
    input: &mut dyn DataInput,
    stack: &'a mut [u8; KEY_STACK],
    heap: &'a mut Vec<u8>,
) -> io::Result<&'a str> {
    let len = input.read_vint()?;
    if len < 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "negative string length",
        ));
    }
    let len = len as usize;
    let bytes: &mut [u8] = if len <= KEY_STACK {
        &mut stack[..len]
    } else {
        heap.resize(len, 0);
        &mut heap[..]
    };
    input.read_bytes(bytes)?;
    std::str::from_utf8(bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf8: {e}")))
}

/// Decode a retry attempt: vlong on the wire, rejected (like other
/// malformed header fields) when it does not fit the `u32` the engine
/// tracks attempts in.
fn read_retry_attempt(input: &mut dyn DataInput) -> io::Result<u32> {
    let raw = input.read_vlong()?;
    u32::try_from(raw).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("retry_attempt {raw} out of range"),
        )
    })
}

/// Deadline budgets travel as whole microseconds (`0` = no deadline): an
/// RPC deadline is milliseconds-to-seconds scale, so sub-microsecond
/// precision buys nothing and the vlong stays short. Rounding is *up* so
/// a tiny-but-present budget never encodes as "none".
fn encode_deadline_budget(budget: Option<Duration>) -> i64 {
    match budget {
        None => 0,
        Some(d) => {
            let micros = d.as_nanos().div_ceil(1000);
            i64::try_from(micros).unwrap_or(i64::MAX).max(1)
        }
    }
}

/// Decode a deadline budget field; negative values are malformed.
fn read_deadline_budget(input: &mut dyn DataInput) -> io::Result<Option<Duration>> {
    let raw = input.read_vlong()?;
    match raw {
        0 => Ok(None),
        micros if micros > 0 => Ok(Some(Duration::from_micros(micros as u64))),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("negative deadline budget {raw}"),
        )),
    }
}

/// Read the `[Text protocol][Text method]` pair and resolve it to the
/// process-wide interned key — once per frame, lock-free after the pair's
/// first appearance.
fn read_method_key(input: &mut dyn DataInput) -> io::Result<MethodKey> {
    let (mut pstack, mut pheap) = ([0u8; KEY_STACK], Vec::new());
    let (mut mstack, mut mheap) = ([0u8; KEY_STACK], Vec::new());
    let protocol = read_key_text(input, &mut pstack, &mut pheap)?;
    let method = read_key_text(input, &mut mstack, &mut mheap)?;
    Ok(intern::method_key(protocol, method))
}

/// Parse the header of a request frame (either version); the param bytes
/// follow in `input`.
pub fn read_request_header(input: &mut dyn DataInput) -> io::Result<RequestHeader> {
    let lead = input.read_i32()?;
    if lead == V2_SENTINEL {
        let client_id = input.read_u64()?;
        let seq = input.read_i64()?;
        let retry_attempt = read_retry_attempt(input)?;
        Ok(RequestHeader {
            version: FrameVersion::V2,
            client_id,
            seq,
            retry_attempt,
            key: read_method_key(input)?,
            deadline_budget: None,
        })
    } else {
        if lead < 0 {
            // V1 call ids are non-negative; any other negative lead is
            // garbage (and would be unanswerable — the V1 response path
            // rejects out-of-range ids).
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid V1 call id {lead}"),
            ));
        }
        Ok(RequestHeader {
            version: FrameVersion::V1,
            client_id: 0,
            seq: lead as i64,
            retry_attempt: 0,
            key: read_method_key(input)?,
            deadline_budget: None,
        })
    }
}

/// Serialize the version-neutral tail of a response:
/// `[u8 status][value … | Text error]`. Every version's response frame is
/// its lead followed by exactly these bytes, which is what lets the
/// handler serialize a result once and the responder/retry-cache replay
/// it under any negotiated version.
pub fn write_response_body(
    out: &mut dyn DataOutput,
    result: Result<&dyn Writable, &str>,
) -> io::Result<()> {
    match result {
        Ok(value) => {
            out.write_u8(STATUS_OK)?;
            value.write(out)
        }
        Err(message) => {
            out.write_u8(STATUS_ERROR)?;
            out.write_string(message)
        }
    }
}

/// The version-neutral body of a busy rejection. V2/V3 clients get the
/// bare `STATUS_BUSY` byte (retryable, never executed); a V1 peer cannot
/// parse status 2, so it gets an ordinary error string.
pub fn busy_body(version: FrameVersion) -> Vec<u8> {
    match version {
        FrameVersion::V1 => {
            let mut out = vec![STATUS_ERROR];
            out.write_string("server too busy: call queue full")
                .expect("vec write");
            out
        }
        FrameVersion::V2 | FrameVersion::V3 => vec![STATUS_BUSY],
    }
}

/// The version-neutral body of a deadline shed. Only V3 requests carry a
/// budget, so only V3-capable clients can ever be shed — but a parked
/// *duplicate* of a shed call may sit on a V2 connection, and a V1 peer
/// can never reach this path at all (no client identity, no cache entry,
/// no budget). V2/V3 clients both parse the bare `STATUS_EXPIRED` byte;
/// the V1 arm exists for layout symmetry with [`busy_body`].
pub fn expired_body(version: FrameVersion) -> Vec<u8> {
    match version {
        FrameVersion::V1 => {
            let mut out = vec![STATUS_ERROR];
            out.write_string("call deadline expired before execution")
                .expect("vec write");
            out
        }
        FrameVersion::V2 | FrameVersion::V3 => vec![STATUS_EXPIRED],
    }
}

/// Serialize a full response frame in `version`'s layout (a server
/// answers each request in the version it arrived in). V3 leads need the
/// connection's [`V3Encoder`]; this stateless helper serves V1/V2.
pub fn write_response(
    out: &mut dyn DataOutput,
    version: FrameVersion,
    seq: i64,
    result: Result<&dyn Writable, &str>,
) -> io::Result<()> {
    write_response_lead(out, version, seq)?;
    write_response_body(out, result)
}

/// Serialize a busy-rejection response (stateless V1/V2 form).
pub fn write_busy_response(
    out: &mut dyn DataOutput,
    version: FrameVersion,
    seq: i64,
) -> io::Result<()> {
    write_response_lead(out, version, seq)?;
    out.write_bytes(&busy_body(version))
}

/// The per-version bytes that precede a response's neutral body. V3 is
/// stateful per connection and handled by [`V3Encoder::write_response_lead`].
pub(crate) fn write_response_lead(
    out: &mut dyn DataOutput,
    version: FrameVersion,
    seq: i64,
) -> io::Result<()> {
    match version {
        FrameVersion::V2 => {
            out.write_i32(V2_SENTINEL)?;
            out.write_i64(seq)
        }
        FrameVersion::V1 => {
            // V1 call ids are non-negative i32s; request decode enforces
            // this, but a silent `as i32` truncation here would corrupt
            // the call id if that invariant ever broke.
            let id = i32::try_from(seq)
                .ok()
                .filter(|id| *id >= 0)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("seq {seq} does not fit a V1 call id"),
                    )
                })?;
            out.write_i32(id)
        }
        FrameVersion::V3 => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "V3 response leads require the connection's V3Encoder",
        )),
    }
}

/// Response disposition carried by the status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// The value follows.
    Ok,
    /// A `Text` error message follows.
    Error,
    /// The server refused admission; nothing follows. Retryable.
    Busy,
    /// The call's deadline budget expired while queued and it was shed
    /// without executing; nothing follows. Not retryable: the caller's
    /// deadline has already passed.
    Expired,
}

/// Parsed response header; the value (or error string) follows in `input`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHeader {
    pub version: FrameVersion,
    pub seq: i64,
    pub status: ResponseStatus,
}

impl ResponseHeader {
    /// Convenience for the success case.
    pub fn ok(&self) -> bool {
        self.status == ResponseStatus::Ok
    }
}

fn read_status(input: &mut dyn DataInput) -> io::Result<ResponseStatus> {
    match input.read_u8()? {
        STATUS_OK => Ok(ResponseStatus::Ok),
        STATUS_ERROR => Ok(ResponseStatus::Error),
        STATUS_BUSY => Ok(ResponseStatus::Busy),
        STATUS_EXPIRED => Ok(ResponseStatus::Expired),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {other}"),
        )),
    }
}

/// Parse a response frame header (V1 or V2; V3 responses decode through
/// the connection's [`V3Decoder`]).
pub fn read_response_header(input: &mut dyn DataInput) -> io::Result<ResponseHeader> {
    let lead = input.read_i32()?;
    let (version, seq) = if lead == V2_SENTINEL {
        (FrameVersion::V2, input.read_i64()?)
    } else {
        (FrameVersion::V1, lead as i64)
    };
    let status = read_status(input)?;
    Ok(ResponseHeader {
        version,
        seq,
        status,
    })
}

/// `method_ref` value marking inline `[Text protocol][Text method]`
/// strings with no table interaction (every self-contained frame, and any
/// stateful frame the encoder chooses not to table).
const MREF_INLINE: i64 = -1;

/// Encoder half of the V3 connection codec. One instance per connection
/// direction (client requests, or server responses), fed frames in exact
/// wire order.
///
/// `stateful` selects the compression level. Stream transports set it:
/// deltas and the method-id table assume the peer decodes every frame we
/// encode, in order — true on a reliable stream, where any loss kills the
/// connection (and both codec halves with it). The verbs fault model can
/// drop a completion while the connection lives on, so verbs connections
/// run self-contained: absolute seqs, inline method strings, no
/// inter-frame state at all.
pub struct V3Encoder {
    stateful: bool,
    last_seq: i64,
    /// `<protocol, method>` → per-connection wire id, assigned densely in
    /// first-use order (stateful mode only).
    ids: std::collections::HashMap<MethodKey, i64>,
}

impl V3Encoder {
    pub fn new(stateful: bool) -> Self {
        V3Encoder {
            stateful,
            last_seq: 0,
            ids: std::collections::HashMap::new(),
        }
    }

    fn seq_field(&mut self, seq: i64) -> i64 {
        if self.stateful {
            let delta = seq.wrapping_sub(self.last_seq);
            self.last_seq = seq;
            delta
        } else {
            seq
        }
    }

    /// Serialize a V3 request header; the param bytes follow.
    /// `deadline_budget` is the caller's remaining per-attempt budget
    /// (`None` encodes as `0`: no deadline, never shed).
    pub fn write_request_header(
        &mut self,
        out: &mut dyn DataOutput,
        seq: i64,
        retry_attempt: u32,
        deadline_budget: Option<Duration>,
        key: MethodKey,
    ) -> io::Result<()> {
        out.write_vlong(self.seq_field(seq))?;
        out.write_vlong(i64::from(retry_attempt))?;
        out.write_vlong(encode_deadline_budget(deadline_budget))?;
        if !self.stateful {
            out.write_vlong(MREF_INLINE)?;
            out.write_string(key.protocol())?;
            return out.write_string(key.method());
        }
        if let Some(&wid) = self.ids.get(&key) {
            return out.write_vlong(wid);
        }
        // First use on this connection: announce wire id `len(ids)` (the
        // decoder independently tracks the same dense assignment) and
        // carry the strings inline this one time.
        let wid = self.ids.len() as i64;
        self.ids.insert(key, wid);
        out.write_vlong(-wid - 2)?;
        out.write_string(key.protocol())?;
        out.write_string(key.method())
    }

    /// Serialize a V3 response lead (`[vlong seq_field]`); the neutral
    /// `[status][body]` bytes follow.
    pub fn write_response_lead(&mut self, out: &mut dyn DataOutput, seq: i64) -> io::Result<()> {
        out.write_vlong(self.seq_field(seq))
    }
}

/// Decoder half of the V3 connection codec; mirrors [`V3Encoder`] and
/// fail-stops (`InvalidData`) on any inconsistency — the connection is
/// forfeited rather than risking a misattributed frame.
pub struct V3Decoder {
    stateful: bool,
    last_seq: i64,
    /// Wire id → key, in announcement order (stateful mode only).
    table: Vec<MethodKey>,
}

impl V3Decoder {
    pub fn new(stateful: bool) -> Self {
        V3Decoder {
            stateful,
            last_seq: 0,
            table: Vec::new(),
        }
    }

    fn seq(&mut self, field: i64) -> i64 {
        if self.stateful {
            let seq = self.last_seq.wrapping_add(field);
            self.last_seq = seq;
            seq
        } else {
            field
        }
    }

    fn method_key(&mut self, input: &mut dyn DataInput, mref: i64) -> io::Result<MethodKey> {
        if mref == MREF_INLINE {
            return read_method_key(input);
        }
        if mref >= 0 {
            return usize::try_from(mref)
                .ok()
                .and_then(|idx| self.table.get(idx).copied())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("V3 method ref {mref} not announced on this connection"),
                    )
                });
        }
        // Announcement: wire id (-mref)-2 must be the next dense slot.
        let wid = mref
            .checked_neg()
            .and_then(|v| v.checked_sub(2))
            .filter(|&wid| wid == self.table.len() as i64)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "V3 method announcement {mref} out of order (expected id {})",
                        self.table.len()
                    ),
                )
            })?;
        let key = read_method_key(input)?;
        debug_assert_eq!(wid, self.table.len() as i64);
        self.table.push(key);
        Ok(key)
    }

    /// Parse a V3 request header; `client_id` comes from the handshake
    /// (it is not on the wire per-frame). The param bytes follow.
    pub fn read_request_header(
        &mut self,
        input: &mut dyn DataInput,
        client_id: u64,
    ) -> io::Result<RequestHeader> {
        let seq = self.seq(input.read_vlong()?);
        let retry_attempt = read_retry_attempt(input)?;
        let deadline_budget = read_deadline_budget(input)?;
        let mref = input.read_vlong()?;
        let key = self.method_key(input, mref)?;
        Ok(RequestHeader {
            version: FrameVersion::V3,
            client_id,
            seq,
            retry_attempt,
            key,
            deadline_budget,
        })
    }

    /// Parse a V3 response header; the value/error bytes follow.
    pub fn read_response_header(
        &mut self,
        input: &mut dyn DataInput,
    ) -> io::Result<ResponseHeader> {
        let seq = self.seq(input.read_vlong()?);
        let status = read_status(input)?;
        Ok(ResponseHeader {
            version: FrameVersion::V3,
            seq,
            status,
        })
    }
}

/// A received frame payload: heap bytes on the socket path (Listing 2
/// allocates per call), pooled registered memory on the RPCoIB path (zero
/// extra copies).
pub enum Payload {
    /// Freshly allocated heap buffer (socket baseline).
    Owned(Vec<u8>),
    /// A pooled registered buffer holding `len` valid bytes.
    Pooled {
        buf: PooledBuf<MemoryRegion>,
        len: usize,
    },
}

impl Payload {
    /// Valid byte count.
    pub fn len(&self) -> usize {
        match self {
            Payload::Owned(v) => v.len(),
            Payload::Pooled { len, .. } => *len,
        }
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A positioned reader over the payload bytes.
    pub fn reader(&self) -> PayloadReader<'_> {
        PayloadReader {
            payload: self,
            pos: 0,
            stage: [0u8; READ_STAGE],
            stage_start: 0,
            stage_len: 0,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Owned(v) => write!(f, "Payload::Owned({} bytes)", v.len()),
            Payload::Pooled { len, .. } => write!(f, "Payload::Pooled({len} bytes)"),
        }
    }
}

/// Read-side staging size (mirrors the write-combining stage in
/// `RdmaOutputStream`): pooled payloads live behind a lock, so per-field
/// reads fetch through a small local window.
const READ_STAGE: usize = 512;

/// Reader over a [`Payload`]; implements `Read`, hence `DataInput`.
pub struct PayloadReader<'a> {
    payload: &'a Payload,
    pos: usize,
    stage: [u8; READ_STAGE],
    stage_start: usize,
    stage_len: usize,
}

impl PayloadReader<'_> {
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advance the position by `n` bytes (e.g. past an already-parsed
    /// header) without copying.
    pub fn skip(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.payload.len());
    }
}

impl Read for PayloadReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = self.remaining().min(out.len());
        if n == 0 {
            return Ok(0);
        }
        match self.payload {
            Payload::Owned(v) => {
                out[..n].copy_from_slice(&v[self.pos..self.pos + n]);
                self.pos += n;
            }
            Payload::Pooled { buf, .. } => {
                if n >= READ_STAGE {
                    // Bulk read: bypass the stage.
                    buf.mem().get(self.pos, &mut out[..n]);
                    self.pos += n;
                } else {
                    // Serve from the staged window, refilling as needed.
                    let in_stage = self.pos >= self.stage_start
                        && self.pos < self.stage_start + self.stage_len;
                    if !in_stage {
                        let fill = self.remaining().min(READ_STAGE);
                        buf.mem().get(self.pos, &mut self.stage[..fill]);
                        self.stage_start = self.pos;
                        self.stage_len = fill;
                    }
                    let off = self.pos - self.stage_start;
                    let n = n.min(self.stage_len - off);
                    out[..n].copy_from_slice(&self.stage[off..off + n]);
                    self.pos += n;
                    return Ok(n);
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{IntWritable, Text};

    #[test]
    fn v2_request_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_request(
            &mut buf,
            0xdead_beef,
            (i32::MAX as i64) + 17,
            3,
            "hdfs.ClientProtocol",
            "getFileInfo",
            &Text::from("/a/b"),
        )
        .unwrap();
        let mut input = buf.as_slice();
        let header = read_request_header(&mut input).unwrap();
        assert_eq!(header.version, FrameVersion::V2);
        assert_eq!(header.client_id, 0xdead_beef);
        assert_eq!(header.seq, (i32::MAX as i64) + 17);
        assert_eq!(header.retry_attempt, 3);
        assert_eq!(header.protocol(), "hdfs.ClientProtocol");
        assert_eq!(header.method(), "getFileInfo");
        assert_eq!(
            header.key,
            crate::intern::method_key("hdfs.ClientProtocol", "getFileInfo"),
            "decode resolves to the process-wide interned key"
        );
        let mut param = Text::default();
        param.read_fields(&mut input).unwrap();
        assert_eq!(param.0, "/a/b");
    }

    #[test]
    fn v1_request_still_decodes() {
        let mut buf: Vec<u8> = Vec::new();
        write_request_v1(
            &mut buf,
            17,
            "hdfs.ClientProtocol",
            "getFileInfo",
            &Text::from("/a/b"),
        )
        .unwrap();
        let mut input = buf.as_slice();
        let header = read_request_header(&mut input).unwrap();
        assert_eq!(header.version, FrameVersion::V1);
        assert_eq!(header.client_id, 0, "V1 peers have no client identity");
        assert_eq!(header.seq, 17);
        assert_eq!(header.retry_attempt, 0);
        assert_eq!(header.protocol(), "hdfs.ClientProtocol");
        assert_eq!(header.method(), "getFileInfo");
        let mut param = Text::default();
        param.read_fields(&mut input).unwrap();
        assert_eq!(param.0, "/a/b");
    }

    #[test]
    fn ok_response_roundtrip_both_versions() {
        for version in [FrameVersion::V1, FrameVersion::V2] {
            let mut buf: Vec<u8> = Vec::new();
            write_response(&mut buf, version, 5, Ok(&IntWritable(99))).unwrap();
            let mut input = buf.as_slice();
            let header = read_response_header(&mut input).unwrap();
            assert!(header.ok());
            assert_eq!(header.version, version);
            assert_eq!(header.seq, 5);
            let mut v = IntWritable::default();
            v.read_fields(&mut input).unwrap();
            assert_eq!(v.0, 99);
        }
    }

    #[test]
    fn v2_response_carries_i64_seq() {
        let seq = (i32::MAX as i64) + 1;
        let mut buf: Vec<u8> = Vec::new();
        write_response(&mut buf, FrameVersion::V2, seq, Ok(&IntWritable(1))).unwrap();
        let mut input = buf.as_slice();
        assert_eq!(read_response_header(&mut input).unwrap().seq, seq);
    }

    #[test]
    fn error_response_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_response(&mut buf, FrameVersion::V2, 6, Err("file not found")).unwrap();
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert_eq!(header.status, ResponseStatus::Error);
        let mut msg = String::new();
        msg.read_fields(&mut input).unwrap();
        assert_eq!(msg, "file not found");
    }

    #[test]
    fn busy_response_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_busy_response(&mut buf, FrameVersion::V2, 9).unwrap();
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert_eq!(header.status, ResponseStatus::Busy);
        assert_eq!(header.seq, 9);
        assert_eq!(input.len(), 0, "busy responses carry no body");

        // A V1 peer gets the rejection as an ordinary error string.
        let mut buf: Vec<u8> = Vec::new();
        write_busy_response(&mut buf, FrameVersion::V1, 9).unwrap();
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert_eq!(header.version, FrameVersion::V1);
        assert_eq!(header.status, ResponseStatus::Error);
    }

    #[test]
    fn negative_v1_call_id_is_invalid_data() {
        let mut buf: Vec<u8> = Vec::new();
        write_request_v1(&mut buf, -1, "p", "m", &IntWritable(0)).unwrap();
        let mut input = buf.as_slice();
        assert!(read_request_header(&mut input).is_err());
    }

    #[test]
    fn v1_response_rejects_out_of_range_seq() {
        for seq in [-1i64, (i32::MAX as i64) + 1] {
            let mut buf: Vec<u8> = Vec::new();
            let err =
                write_response(&mut buf, FrameVersion::V1, seq, Ok(&IntWritable(1))).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "seq {seq}");
        }
    }

    #[test]
    fn bad_status_is_invalid_data() {
        let buf = [0, 0, 0, 1, 9];
        let mut input = buf.as_slice();
        assert!(read_response_header(&mut input).is_err());
    }

    #[test]
    fn retry_attempt_roundtrips_across_the_i32_boundary() {
        // Regression: `retry_attempt as i32` through the signed vint path
        // flipped counts above i32::MAX negative on the wire.
        for attempt in [0u32, 1, i32::MAX as u32, (i32::MAX as u32) + 1, u32::MAX] {
            let mut buf: Vec<u8> = Vec::new();
            write_request(&mut buf, 7, 1, attempt, "p", "m", &IntWritable(0)).unwrap();
            let mut input = buf.as_slice();
            let header = read_request_header(&mut input).unwrap();
            assert_eq!(header.retry_attempt, attempt, "attempt {attempt}");
        }
    }

    #[test]
    fn out_of_range_retry_attempt_is_invalid_data() {
        for raw in [-1i64, i64::from(u32::MAX) + 1, i64::MIN] {
            let mut buf: Vec<u8> = Vec::new();
            buf.write_i32(V2_SENTINEL).unwrap();
            buf.write_u64(7).unwrap();
            buf.write_i64(1).unwrap();
            buf.write_vlong(raw).unwrap();
            buf.write_string("p").unwrap();
            buf.write_string("m").unwrap();
            let mut input = buf.as_slice();
            let err = read_request_header(&mut input).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "raw {raw}");
        }
    }

    #[test]
    fn v3_request_roundtrip_stateful_uses_table_after_first_use() {
        let mut enc = V3Encoder::new(true);
        let mut dec = V3Decoder::new(true);
        let key = crate::intern::method_key("v3.Proto", "ping");
        let mut sizes = Vec::new();
        for seq in 1..=3i64 {
            let mut buf: Vec<u8> = Vec::new();
            enc.write_request_header(&mut buf, seq, 0, None, key)
                .unwrap();
            sizes.push(buf.len());
            let mut input = buf.as_slice();
            let header = dec.read_request_header(&mut input, 42).unwrap();
            assert_eq!(header.version, FrameVersion::V3);
            assert_eq!(header.client_id, 42, "client id comes from the handshake");
            assert_eq!(header.seq, seq);
            assert_eq!(header.key, key);
            assert!(input.is_empty());
        }
        assert!(
            sizes[1] < sizes[0] && sizes[2] == sizes[1],
            "interned form must drop the inline strings: {sizes:?}"
        );
        assert_eq!(
            sizes[1], 4,
            "delta-seq + retry + deadline + method ref, one byte each"
        );
    }

    #[test]
    fn v3_self_contained_frames_decode_independently() {
        let mut enc = V3Encoder::new(false);
        let key = crate::intern::method_key("v3.Proto", "solo");
        let mut frames = Vec::new();
        for seq in [10i64, 11, 12] {
            let mut buf: Vec<u8> = Vec::new();
            enc.write_request_header(&mut buf, seq, 2, Some(Duration::from_millis(250)), key)
                .unwrap();
            frames.push(buf);
        }
        // Decode out of order with fresh decoders: no inter-frame state.
        for (buf, seq) in frames.iter().zip([10i64, 11, 12]).rev() {
            let mut dec = V3Decoder::new(false);
            let mut input = buf.as_slice();
            let header = dec.read_request_header(&mut input, 9).unwrap();
            assert_eq!(header.seq, seq);
            assert_eq!(header.retry_attempt, 2);
            assert_eq!(header.key, key);
            assert_eq!(header.deadline_budget, Some(Duration::from_millis(250)));
        }
    }

    #[test]
    fn v3_response_roundtrip_and_busy_body() {
        let mut enc = V3Encoder::new(true);
        let mut dec = V3Decoder::new(true);
        for (seq, body) in [
            (5i64, busy_body(FrameVersion::V3)),
            (6, {
                let mut b = Vec::new();
                write_response_body(&mut b, Ok(&IntWritable(77))).unwrap();
                b
            }),
        ] {
            let mut buf: Vec<u8> = Vec::new();
            enc.write_response_lead(&mut buf, seq).unwrap();
            buf.extend_from_slice(&body);
            let mut input = buf.as_slice();
            let header = dec.read_response_header(&mut input).unwrap();
            assert_eq!(header.version, FrameVersion::V3);
            assert_eq!(header.seq, seq);
            if seq == 5 {
                assert_eq!(header.status, ResponseStatus::Busy);
            } else {
                let mut v = IntWritable::default();
                v.read_fields(&mut input).unwrap();
                assert_eq!(v.0, 77);
            }
        }
    }

    #[test]
    fn v3_bad_method_refs_are_invalid_data() {
        let mut dec = V3Decoder::new(true);
        // Reference to a never-announced id.
        let mut buf: Vec<u8> = Vec::new();
        buf.write_vlong(1).unwrap(); // seq delta
        buf.write_vlong(0).unwrap(); // retry
        buf.write_vlong(0).unwrap(); // no deadline
        buf.write_vlong(3).unwrap(); // ref id 3, table empty
        let mut input = buf.as_slice();
        assert!(dec.read_request_header(&mut input, 1).is_err());

        // Out-of-order announcement (id 5 when 0 is expected).
        let mut dec = V3Decoder::new(true);
        let mut buf: Vec<u8> = Vec::new();
        buf.write_vlong(1).unwrap();
        buf.write_vlong(0).unwrap();
        buf.write_vlong(0).unwrap();
        buf.write_vlong(-7).unwrap(); // announces wid 5
        buf.write_string("p").unwrap();
        buf.write_string("m").unwrap();
        let mut input = buf.as_slice();
        assert!(dec.read_request_header(&mut input, 1).is_err());

        // i64::MIN must not overflow the announcement arithmetic.
        let mut dec = V3Decoder::new(true);
        let mut buf: Vec<u8> = Vec::new();
        buf.write_vlong(1).unwrap();
        buf.write_vlong(0).unwrap();
        buf.write_vlong(0).unwrap();
        buf.write_vlong(i64::MIN).unwrap();
        let mut input = buf.as_slice();
        assert!(dec.read_request_header(&mut input, 1).is_err());
    }

    #[test]
    fn v3_deadline_budget_roundtrips_and_rounds_up() {
        let key = crate::intern::method_key("v3.Proto", "budget");
        for (budget, expect) in [
            (None, None),
            // Sub-microsecond budgets round *up*, never to "none".
            (
                Some(Duration::from_nanos(1)),
                Some(Duration::from_micros(1)),
            ),
            (
                Some(Duration::from_micros(1500)),
                Some(Duration::from_micros(1500)),
            ),
            (Some(Duration::from_secs(30)), Some(Duration::from_secs(30))),
        ] {
            let mut enc = V3Encoder::new(true);
            let mut dec = V3Decoder::new(true);
            let mut buf: Vec<u8> = Vec::new();
            enc.write_request_header(&mut buf, 1, 0, budget, key)
                .unwrap();
            let mut input = buf.as_slice();
            let header = dec.read_request_header(&mut input, 7).unwrap();
            assert_eq!(header.deadline_budget, expect, "budget {budget:?}");
        }
    }

    #[test]
    fn negative_deadline_budget_is_invalid_data() {
        let mut dec = V3Decoder::new(true);
        let mut buf: Vec<u8> = Vec::new();
        buf.write_vlong(1).unwrap(); // seq delta
        buf.write_vlong(0).unwrap(); // retry
        buf.write_vlong(-5).unwrap(); // malformed budget
        let mut input = buf.as_slice();
        let err = dec.read_request_header(&mut input, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn expired_response_roundtrip() {
        // V2 lead + neutral expired body: what a parked duplicate on a V2
        // connection receives when the original call is shed.
        let mut buf: Vec<u8> = Vec::new();
        write_response_lead(&mut buf, FrameVersion::V2, 9).unwrap();
        buf.extend_from_slice(&expired_body(FrameVersion::V2));
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert_eq!(header.status, ResponseStatus::Expired);
        assert_eq!(header.seq, 9);
        assert_eq!(input.len(), 0, "expired responses carry no body");

        // V3 lead + the same neutral body.
        let mut enc = V3Encoder::new(true);
        let mut dec = V3Decoder::new(true);
        let mut buf: Vec<u8> = Vec::new();
        enc.write_response_lead(&mut buf, 5).unwrap();
        buf.extend_from_slice(&expired_body(FrameVersion::V3));
        let mut input = buf.as_slice();
        let header = dec.read_response_header(&mut input).unwrap();
        assert_eq!(header.status, ResponseStatus::Expired);
        assert_eq!(header.seq, 5);

        // A V1 peer would see an ordinary error string.
        let mut buf: Vec<u8> = Vec::new();
        write_response_lead(&mut buf, FrameVersion::V1, 3).unwrap();
        buf.extend_from_slice(&expired_body(FrameVersion::V1));
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert_eq!(header.status, ResponseStatus::Error);
    }

    #[test]
    fn v3_delta_seq_survives_wrapping() {
        let mut enc = V3Encoder::new(true);
        let mut dec = V3Decoder::new(true);
        let key = crate::intern::method_key("v3.Proto", "wrap");
        for seq in [i64::MAX - 1, i64::MAX, i64::MIN, i64::MIN + 1, 0] {
            let mut buf: Vec<u8> = Vec::new();
            enc.write_request_header(&mut buf, seq, 0, None, key)
                .unwrap();
            let mut input = buf.as_slice();
            let header = dec.read_request_header(&mut input, 1).unwrap();
            assert_eq!(header.seq, seq);
        }
    }

    #[test]
    fn stateless_lead_writer_refuses_v3() {
        let mut buf: Vec<u8> = Vec::new();
        assert!(write_response(&mut buf, FrameVersion::V3, 1, Ok(&IntWritable(1))).is_err());
    }

    #[test]
    fn owned_payload_reader() {
        let payload = Payload::Owned(vec![1, 2, 3, 4, 5]);
        let mut reader = payload.reader();
        let mut buf = [0u8; 2];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2]);
        assert_eq!(reader.remaining(), 3);
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, vec![3, 4, 5]);
    }
}
