//! Frame layout shared by both transports.
//!
//! Request payload: `[i32 call_id][Text protocol][Text method][param …]`
//! Response payload: `[i32 call_id][u8 status][value … | Text error]`
//!
//! On the socket transport each payload is preceded by a 4-byte big-endian
//! length (Hadoop's `out.writeInt(dataLength)`); on the RDMA transport the
//! length travels in the completion, so no prefix is needed.

use std::io::{self, Read};

use bufpool::{PoolMem, PooledBuf};
use simnet::MemoryRegion;
use wire::{DataInput, DataOutput, Writable};

/// Response status byte: success.
pub const STATUS_OK: u8 = 0;
/// Response status byte: the server reports an error string.
pub const STATUS_ERROR: u8 = 1;

/// Parsed request header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHeader {
    pub call_id: i32,
    pub protocol: String,
    pub method: String,
}

/// Serialize a request frame body (everything after the length prefix).
pub fn write_request(
    out: &mut dyn DataOutput,
    call_id: i32,
    protocol: &str,
    method: &str,
    param: &dyn Writable,
) -> io::Result<()> {
    out.write_i32(call_id)?;
    out.write_string(protocol)?;
    out.write_string(method)?;
    param.write(out)
}

/// Parse the header of a request frame; the param bytes follow in `input`.
pub fn read_request_header(input: &mut dyn DataInput) -> io::Result<RequestHeader> {
    Ok(RequestHeader {
        call_id: input.read_i32()?,
        protocol: input.read_string()?,
        method: input.read_string()?,
    })
}

/// Serialize a response frame body.
pub fn write_response(
    out: &mut dyn DataOutput,
    call_id: i32,
    result: Result<&dyn Writable, &str>,
) -> io::Result<()> {
    out.write_i32(call_id)?;
    match result {
        Ok(value) => {
            out.write_u8(STATUS_OK)?;
            value.write(out)
        }
        Err(message) => {
            out.write_u8(STATUS_ERROR)?;
            out.write_string(message)
        }
    }
}

/// Parsed response header; the value (or error string) follows in `input`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHeader {
    pub call_id: i32,
    pub ok: bool,
}

/// Parse a response frame header.
pub fn read_response_header(input: &mut dyn DataInput) -> io::Result<ResponseHeader> {
    let call_id = input.read_i32()?;
    let status = input.read_u8()?;
    match status {
        STATUS_OK => Ok(ResponseHeader { call_id, ok: true }),
        STATUS_ERROR => Ok(ResponseHeader { call_id, ok: false }),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {other}"),
        )),
    }
}

/// A received frame payload: heap bytes on the socket path (Listing 2
/// allocates per call), pooled registered memory on the RPCoIB path (zero
/// extra copies).
pub enum Payload {
    /// Freshly allocated heap buffer (socket baseline).
    Owned(Vec<u8>),
    /// A pooled registered buffer holding `len` valid bytes.
    Pooled {
        buf: PooledBuf<MemoryRegion>,
        len: usize,
    },
}

impl Payload {
    /// Valid byte count.
    pub fn len(&self) -> usize {
        match self {
            Payload::Owned(v) => v.len(),
            Payload::Pooled { len, .. } => *len,
        }
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A positioned reader over the payload bytes.
    pub fn reader(&self) -> PayloadReader<'_> {
        PayloadReader {
            payload: self,
            pos: 0,
            stage: [0u8; READ_STAGE],
            stage_start: 0,
            stage_len: 0,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Owned(v) => write!(f, "Payload::Owned({} bytes)", v.len()),
            Payload::Pooled { len, .. } => write!(f, "Payload::Pooled({len} bytes)"),
        }
    }
}

/// Read-side staging size (mirrors the write-combining stage in
/// `RdmaOutputStream`): pooled payloads live behind a lock, so per-field
/// reads fetch through a small local window.
const READ_STAGE: usize = 512;

/// Reader over a [`Payload`]; implements `Read`, hence `DataInput`.
pub struct PayloadReader<'a> {
    payload: &'a Payload,
    pos: usize,
    stage: [u8; READ_STAGE],
    stage_start: usize,
    stage_len: usize,
}

impl PayloadReader<'_> {
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advance the position by `n` bytes (e.g. past an already-parsed
    /// header) without copying.
    pub fn skip(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.payload.len());
    }
}

impl Read for PayloadReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = self.remaining().min(out.len());
        if n == 0 {
            return Ok(0);
        }
        match self.payload {
            Payload::Owned(v) => {
                out[..n].copy_from_slice(&v[self.pos..self.pos + n]);
                self.pos += n;
            }
            Payload::Pooled { buf, .. } => {
                if n >= READ_STAGE {
                    // Bulk read: bypass the stage.
                    buf.mem().get(self.pos, &mut out[..n]);
                    self.pos += n;
                } else {
                    // Serve from the staged window, refilling as needed.
                    let in_stage = self.pos >= self.stage_start
                        && self.pos < self.stage_start + self.stage_len;
                    if !in_stage {
                        let fill = self.remaining().min(READ_STAGE);
                        buf.mem().get(self.pos, &mut self.stage[..fill]);
                        self.stage_start = self.pos;
                        self.stage_len = fill;
                    }
                    let off = self.pos - self.stage_start;
                    let n = n.min(self.stage_len - off);
                    out[..n].copy_from_slice(&self.stage[off..off + n]);
                    self.pos += n;
                    return Ok(n);
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{IntWritable, Text};

    #[test]
    fn request_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_request(
            &mut buf,
            17,
            "hdfs.ClientProtocol",
            "getFileInfo",
            &Text::from("/a/b"),
        )
        .unwrap();
        let mut input = buf.as_slice();
        let header = read_request_header(&mut input).unwrap();
        assert_eq!(header.call_id, 17);
        assert_eq!(header.protocol, "hdfs.ClientProtocol");
        assert_eq!(header.method, "getFileInfo");
        let mut param = Text::default();
        param.read_fields(&mut input).unwrap();
        assert_eq!(param.0, "/a/b");
    }

    #[test]
    fn ok_response_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_response(&mut buf, 5, Ok(&IntWritable(99))).unwrap();
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert!(header.ok);
        assert_eq!(header.call_id, 5);
        let mut v = IntWritable::default();
        v.read_fields(&mut input).unwrap();
        assert_eq!(v.0, 99);
    }

    #[test]
    fn error_response_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_response(&mut buf, 6, Err("file not found")).unwrap();
        let mut input = buf.as_slice();
        let header = read_response_header(&mut input).unwrap();
        assert!(!header.ok);
        let mut msg = String::new();
        msg.read_fields(&mut input).unwrap();
        assert_eq!(msg, "file not found");
    }

    #[test]
    fn bad_status_is_invalid_data() {
        let buf = [0, 0, 0, 1, 9];
        let mut input = buf.as_slice();
        assert!(read_response_header(&mut input).is_err());
    }

    #[test]
    fn owned_payload_reader() {
        let payload = Payload::Owned(vec![1, 2, 3, 4, 5]);
        let mut reader = payload.reader();
        let mut buf = [0u8; 2];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2]);
        assert_eq!(reader.remaining(), 3);
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, vec![3, 4, 5]);
    }
}
