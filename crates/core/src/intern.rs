//! Process-wide `<protocol, method>` interner.
//!
//! The paper's Figure 3 shows that RPC key locality is near-perfect: a
//! handful of `<protocol, method>` pairs repeat for the lifetime of the
//! process. The engine exploits that by resolving each pair **once** to a
//! [`MethodKey`] — a small dense integer id plus shared `Arc<str>` halves
//! — and threading the key through the call path, frame decode, server
//! dispatch and metrics. After the first resolution every lookup is
//! lock-free (atomic loads into an open-addressed probe table) and
//! allocation-free, so the steady-state hot path never touches a map
//! mutex or `to_owned()` for metadata again.
//!
//! The interner is append-only and never frees: entries are leaked
//! [`MethodKeyInner`] blocks, which is what makes `MethodKey` a `Copy`
//! pointer that is valid for the life of the process. Growth is bounded
//! by the number of *distinct* keys ever seen — by the paper's locality
//! argument, a small constant in any real deployment. Keys beyond the
//! fixed fast-table capacity stay fully functional; they simply resolve
//! through a mutex-guarded overflow map instead of the lock-free probe
//! table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Dense id of one interned `<protocol, method>` pair. Ids are assigned
/// in first-seen order and are stable for the life of the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// The shared, immutable payload of one interned key.
pub struct MethodKeyInner {
    id: MethodId,
    protocol: Arc<str>,
    method: Arc<str>,
    /// Lazily-interned sibling key for the server's response-direction
    /// metrics (`<protocol, method#resp>`), so responders never
    /// `format!` per response.
    resp: OnceLock<MethodKey>,
}

/// A resolved `<protocol, method>` pair: a `Copy` handle to an interned,
/// process-lifetime entry. Comparison is pointer identity — two keys are
/// equal iff they name the same pair.
#[derive(Clone, Copy)]
pub struct MethodKey(&'static MethodKeyInner);

impl MethodKey {
    /// The dense id (index into per-registry entry tables).
    pub fn id(&self) -> MethodId {
        self.0.id
    }

    pub fn protocol(&self) -> &'static str {
        &self.0.protocol
    }

    pub fn method(&self) -> &'static str {
        &self.0.method
    }

    /// Shared-ownership halves, for callers that need owned strings
    /// without copying the bytes.
    pub fn protocol_arc(&self) -> Arc<str> {
        Arc::clone(&self.0.protocol)
    }

    pub fn method_arc(&self) -> Arc<str> {
        Arc::clone(&self.0.method)
    }

    /// The interned `<protocol, method#resp>` sibling used to account the
    /// server's response sends. Interned on first use, then a pointer
    /// copy forever.
    pub fn response_key(&self) -> MethodKey {
        *self
            .0
            .resp
            .get_or_init(|| method_key(&self.0.protocol, &format!("{}#resp", self.0.method)))
    }
}

impl PartialEq for MethodKey {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for MethodKey {}

impl std::hash::Hash for MethodKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0 as *const MethodKeyInner).hash(state);
    }
}

impl std::fmt::Debug for MethodKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MethodKey({}#{}, id={})",
            self.protocol(),
            self.method(),
            self.id().0
        )
    }
}

impl std::fmt::Display for MethodKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.protocol(), self.method())
    }
}

/// Probe-table slots (power of two). The table stops accepting new
/// entries at [`TABLE_FILL_MAX`] so probes stay short; later keys live in
/// the overflow map.
const TABLE_SLOTS: usize = 4096;
const TABLE_MASK: u64 = (TABLE_SLOTS - 1) as u64;
const TABLE_FILL_MAX: usize = TABLE_SLOTS / 2;

/// Ids below this resolve to their key through a lock-free array.
const FAST_IDS: usize = 4096;

struct Slow {
    /// Every interned key in id order (the id → key source of truth).
    by_id: Vec<&'static MethodKeyInner>,
    /// Keys that did not fit the probe table (or lost a probe race).
    overflow: HashMap<(String, String), &'static MethodKeyInner>,
    /// Entries placed in the probe table so far.
    table_fill: usize,
}

struct Interner {
    /// Open-addressed `<protocol, method>` → key table; linear probing,
    /// slots written once (Release) under the slow lock, read lock-free
    /// (Acquire).
    table: Box<[AtomicPtr<MethodKeyInner>; TABLE_SLOTS]>,
    /// id → key for the first [`FAST_IDS`] ids, written once each.
    fast_ids: Box<[AtomicPtr<MethodKeyInner>; FAST_IDS]>,
    slow: Mutex<Slow>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        table: Box::new(std::array::from_fn(
            |_| AtomicPtr::new(std::ptr::null_mut()),
        )),
        fast_ids: Box::new(std::array::from_fn(
            |_| AtomicPtr::new(std::ptr::null_mut()),
        )),
        slow: Mutex::new(Slow {
            by_id: Vec::new(),
            overflow: HashMap::new(),
            table_fill: 0,
        }),
    })
}

/// FNV-1a over `protocol`, a separator, and `method`. Deterministic and
/// allocation-free.
fn hash_pair(protocol: &str, method: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in protocol.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h = (h ^ 0xff).wrapping_mul(PRIME);
    for &b in method.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

/// Lock-free lookup in the probe table. Returns the key if `protocol`/
/// `method` was placed there; `None` means "not in the fast table" (the
/// pair may still exist in the overflow map).
fn table_lookup(int: &Interner, protocol: &str, method: &str) -> Option<MethodKey> {
    let mut idx = hash_pair(protocol, method) & TABLE_MASK;
    for _ in 0..TABLE_SLOTS {
        let ptr = int.table[idx as usize].load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        let inner: &'static MethodKeyInner = unsafe { &*ptr };
        if &*inner.protocol == protocol && &*inner.method == method {
            return Some(MethodKey(inner));
        }
        idx = (idx + 1) & TABLE_MASK;
    }
    None
}

/// Resolve a pair to its [`MethodKey`], interning it on first sight.
/// Steady state (the pair was seen before) is lock-free and performs no
/// allocation.
pub fn method_key(protocol: &str, method: &str) -> MethodKey {
    let int = interner();
    if let Some(key) = table_lookup(int, protocol, method) {
        return key;
    }
    let mut slow = int.slow.lock().unwrap_or_else(|e| e.into_inner());
    // Re-check both homes under the lock: another thread may have
    // interned the pair between our lock-free miss and here.
    if let Some(key) = table_lookup(int, protocol, method) {
        return key;
    }
    if let Some(inner) = slow.overflow.get(&(protocol.to_owned(), method.to_owned())) {
        return MethodKey(inner);
    }

    let id = MethodId(slow.by_id.len() as u32);
    let inner: &'static MethodKeyInner = Box::leak(Box::new(MethodKeyInner {
        id,
        protocol: Arc::from(protocol),
        method: Arc::from(method),
        resp: OnceLock::new(),
    }));
    slow.by_id.push(inner);
    if (id.0 as usize) < FAST_IDS {
        int.fast_ids[id.0 as usize]
            .store(inner as *const _ as *mut MethodKeyInner, Ordering::Release);
    }

    // Place in the probe table while it has headroom; otherwise the
    // overflow map owns the pair (lookups for it take the lock — correct,
    // just not fast; by Figure-3 locality this path is never hot).
    let mut placed = false;
    if slow.table_fill < TABLE_FILL_MAX {
        let mut idx = hash_pair(protocol, method) & TABLE_MASK;
        for _ in 0..TABLE_SLOTS {
            let slot = &int.table[idx as usize];
            if slot.load(Ordering::Relaxed).is_null() {
                slot.store(inner as *const _ as *mut MethodKeyInner, Ordering::Release);
                slow.table_fill += 1;
                placed = true;
                break;
            }
            idx = (idx + 1) & TABLE_MASK;
        }
    }
    if !placed {
        slow.overflow
            .insert((protocol.to_owned(), method.to_owned()), inner);
    }
    MethodKey(inner)
}

/// Resolve a pair **only if already interned**; never allocates or
/// interns. The lock is taken only when the fast table misses.
pub fn lookup(protocol: &str, method: &str) -> Option<MethodKey> {
    let int = interner();
    if let Some(key) = table_lookup(int, protocol, method) {
        return Some(key);
    }
    let slow = int.slow.lock().unwrap_or_else(|e| e.into_inner());
    if slow.overflow.is_empty() {
        return None;
    }
    // The tuple key forces owned strings; this path only runs for keys
    // that overflowed the 4096-pair fast table, which steady-state
    // workloads never do.
    slow.overflow
        .get(&(protocol.to_owned(), method.to_owned()))
        .map(|inner| MethodKey(inner))
}

/// The key for a dense id, if one has been interned. Lock-free for ids
/// below the fast-array capacity.
pub fn by_id(id: MethodId) -> Option<MethodKey> {
    let int = interner();
    if (id.0 as usize) < FAST_IDS {
        let ptr = int.fast_ids[id.0 as usize].load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        return Some(MethodKey(unsafe { &*ptr }));
    }
    let slow = int.slow.lock().unwrap_or_else(|e| e.into_inner());
    slow.by_id.get(id.0 as usize).map(|inner| MethodKey(inner))
}

/// Number of distinct pairs interned so far.
pub fn interned_count() -> usize {
    interner()
        .slow
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .by_id
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pair_resolves_to_same_key_and_id() {
        let a = method_key("proto.A", "call");
        let b = method_key("proto.A", "call");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.protocol(), "proto.A");
        assert_eq!(a.method(), "call");
    }

    #[test]
    fn distinct_pairs_get_distinct_ids() {
        let a = method_key("proto.B", "x");
        let b = method_key("proto.B", "y");
        let c = method_key("proto.C", "x");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn lookup_finds_only_interned_pairs() {
        let key = method_key("proto.L", "present");
        assert_eq!(lookup("proto.L", "present"), Some(key));
        assert!(lookup("proto.L", "never-interned-q8x").is_none());
    }

    #[test]
    fn by_id_round_trips() {
        let key = method_key("proto.ID", "rt");
        let found = by_id(key.id()).expect("id resolves");
        assert_eq!(found, key);
        assert!(by_id(MethodId(u32::MAX)).is_none());
    }

    #[test]
    fn response_key_is_interned_sibling() {
        let key = method_key("proto.R", "ping");
        let resp = key.response_key();
        assert_eq!(resp.protocol(), "proto.R");
        assert_eq!(resp.method(), "ping#resp");
        // Stable: the same pointer every time.
        assert_eq!(key.response_key(), resp);
        // And it is a real interned key.
        assert_eq!(lookup("proto.R", "ping#resp"), Some(resp));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let keys: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..64 {
                        got.push(method_key("proto.T", &format!("m{}", i % 16)));
                    }
                    let _ = t;
                    got
                })
            })
            .collect();
        let all: Vec<Vec<MethodKey>> = keys.into_iter().map(|h| h.join().unwrap()).collect();
        for w in &all[1..] {
            assert_eq!(w.len(), all[0].len());
            for (a, b) in w.iter().zip(all[0].iter()) {
                assert_eq!(a, b, "every thread resolves a pair to one identity");
            }
        }
    }
}
