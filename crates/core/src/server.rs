//! The RPC server, with Hadoop's thread architecture (Section III-D):
//!
//! * a **Listener** thread accepts connections (and, in RPCoIB mode, runs
//!   the end-point exchange on each);
//! * one **Reader** thread per connection receives frames and pushes
//!   decoded calls onto the bounded call queue;
//! * a pool of **Handler** threads pops calls, dispatches into the
//!   registered services, and hands results to the responder;
//! * a single **Responder** thread serializes and transmits responses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use simnet::{Fabric, NodeId, SimAddr, SimListener};
use wire::Writable;

use crate::config::RpcConfig;
use crate::error::{RpcError, RpcResult};
use crate::frame::{read_request_header, write_response, Payload, RequestHeader};
use crate::metrics::{MetricsRegistry, RecvProfile as MetricsRecv};
use crate::service::ServiceRegistry;
use crate::transport::rdma::{IbContext, RdmaConn};
use crate::transport::socket::SocketConn;
use crate::transport::Conn;

/// How long blocking queue pops wait before re-checking for shutdown.
const IDLE_SLICE: Duration = Duration::from_millis(100);

struct RawCall {
    conn: Arc<dyn Conn>,
    header: RequestHeader,
    payload: Payload,
    /// Offset of the parameter bytes within the payload.
    body_offset: usize,
}

struct OutboundResponse {
    conn: Arc<dyn Conn>,
    protocol: String,
    method: String,
    call_id: i32,
    result: Result<Box<dyn Writable + Send>, RpcError>,
}

struct ServerInner {
    cfg: RpcConfig,
    registry: ServiceRegistry,
    addr: SimAddr,
    stop: AtomicBool,
    metrics: MetricsRegistry,
    call_tx: Sender<RawCall>,
    call_rx: Receiver<RawCall>,
    resp_tx: Sender<OutboundResponse>,
    resp_rx: Receiver<OutboundResponse>,
    /// Live connections, keyed by accept order. Entries are removed by
    /// the owning Reader thread on its way out, so connection churn does
    /// not accumulate dead `Arc<dyn Conn>`s (and, in RPCoIB mode, their
    /// registered buffers) for the life of the server.
    conns: Mutex<HashMap<u64, Arc<dyn Conn>>>,
    next_conn_id: AtomicU64,
    /// Connections accepted over the server's lifetime.
    accepted: AtomicU64,
    /// Reader thread handles awaiting reaping. Finished ones are joined
    /// by the Listener on every accept-loop pass; the rest at `stop()`.
    reader_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running RPC server.
pub struct Server {
    inner: Arc<ServerInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind and start a server on `(node, port)` of `fabric`, hosting the
    /// services in `registry`. Transport is chosen by `cfg.ib_enabled`.
    pub fn start(
        fabric: &Fabric,
        node: NodeId,
        port: u16,
        cfg: RpcConfig,
        registry: ServiceRegistry,
    ) -> RpcResult<Server> {
        cfg.validate().map_err(RpcError::Config)?;
        let addr = SimAddr::new(node, port);
        let listener = SimListener::bind(fabric, addr)?;
        let ib = if cfg.ib_enabled {
            Some(IbContext::new(fabric, node, &cfg)?)
        } else {
            None
        };

        let (call_tx, call_rx) = bounded(cfg.call_queue_len);
        let (resp_tx, resp_rx) = bounded(cfg.call_queue_len);
        let inner = Arc::new(ServerInner {
            cfg,
            registry,
            addr,
            stop: AtomicBool::new(false),
            metrics: MetricsRegistry::new(false),
            call_tx,
            call_rx,
            resp_tx,
            resp_rx,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            reader_threads: Mutex::new(Vec::new()),
        });

        let mut threads = Vec::new();

        // Listener thread.
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rpc-listener-{addr}"))
                    .spawn(move || listener_loop(inner, listener, ib))
                    .expect("spawn listener"),
            );
        }
        // Handler pool.
        for h in 0..inner.cfg.handlers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rpc-handler-{h}"))
                    .spawn(move || handler_loop(inner))
                    .expect("spawn handler"),
            );
        }
        // Responder thread.
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("rpc-responder".into())
                    .spawn(move || responder_loop(inner))
                    .expect("spawn responder"),
            );
        }

        Ok(Server {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SimAddr {
        self.inner.addr
    }

    /// Server-side metrics (receive profiles feed the Figure 1 harness).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Number of connections currently alive (accepted and not yet torn
    /// down). Under churn this returns to zero once departed clients'
    /// Readers notice the close.
    pub fn connection_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Number of connections accepted over this server's lifetime.
    pub fn lifetime_connection_count(&self) -> u64 {
        self.inner.accepted.load(Ordering::Relaxed)
    }

    /// Stop all threads and close all connections. Idempotent.
    pub fn stop(&self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for conn in self.inner.conns.lock().values() {
            conn.close();
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        for t in self.inner.reader_threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.inner.addr)
            .field("protocols", &self.inner.registry.protocols())
            .finish()
    }
}

fn listener_loop(inner: Arc<ServerInner>, listener: SimListener, ib: Option<IbContext>) {
    while !inner.stop.load(Ordering::Acquire) {
        // Reap Readers whose connections have since died. Without this,
        // a server that lives through N transient clients holds N parked
        // JoinHandles (and their stacks) forever.
        {
            let mut threads = inner.reader_threads.lock();
            if threads.iter().any(|t| t.is_finished()) {
                let mut live = Vec::with_capacity(threads.len());
                for t in threads.drain(..) {
                    if t.is_finished() {
                        let _ = t.join();
                    } else {
                        live.push(t);
                    }
                }
                *threads = live;
            }
        }
        match listener.try_accept() {
            Ok(Some((stream, _peer))) => {
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                let inner2 = Arc::clone(&inner);
                let ib2 = ib.clone();
                // Connection setup (which may block on the RDMA endpoint
                // exchange) and the per-connection Reader run on their own
                // thread, keeping the accept loop responsive.
                let handle = std::thread::Builder::new()
                    .name("rpc-reader".into())
                    .spawn(move || {
                        let conn: Arc<dyn Conn> = match &ib2 {
                            Some(ctx) => {
                                match RdmaConn::bootstrap(&stream, ctx, &inner2.cfg) {
                                    Ok(c) => Arc::new(c),
                                    Err(_) => return, // peer vanished mid-handshake
                                }
                            }
                            None => {
                                Arc::new(SocketConn::new(stream, inner2.cfg.server_buffer_init))
                            }
                        };
                        let conn_id = inner2.next_conn_id.fetch_add(1, Ordering::Relaxed);
                        inner2.conns.lock().insert(conn_id, Arc::clone(&conn));
                        reader_loop(&inner2, &conn);
                        // The Reader owns the connection's lifetime: on any
                        // exit (peer gone, corrupt frame, server stop) the
                        // transport is closed and the table entry freed.
                        conn.close();
                        inner2.conns.lock().remove(&conn_id);
                    })
                    .expect("spawn reader");
                inner.reader_threads.lock().push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => break, // listener evicted (node killed)
        }
    }
}

fn reader_loop(inner: &Arc<ServerInner>, conn: &Arc<dyn Conn>) {
    while !inner.stop.load(Ordering::Acquire) {
        let (payload, recv) = match conn.recv_msg(IDLE_SLICE) {
            Ok(v) => v,
            Err(RpcError::Timeout) => continue,
            Err(_) => break,
        };
        let mut reader = payload.reader();
        let header = match read_request_header(&mut reader) {
            Ok(h) => h,
            Err(_) => {
                // Corrupt frame: past this point the stream cannot be
                // re-synchronized, so the whole connection is forfeit
                // (closed by the caller). Counted for observability.
                inner.metrics.inc_frame_errors();
                break;
            }
        };
        let body_offset = reader.position();
        inner.metrics.record_recv(
            &header.protocol,
            &header.method,
            MetricsRecv {
                alloc_ns: recv.alloc_ns,
                total_ns: recv.total_ns,
                size: recv.size,
            },
        );
        let call = RawCall {
            conn: Arc::clone(conn),
            header,
            payload,
            body_offset,
        };
        if inner.call_tx.send(call).is_err() {
            break;
        }
    }
}

fn handler_loop(inner: Arc<ServerInner>) {
    loop {
        match inner.call_rx.recv_timeout(IDLE_SLICE) {
            Ok(call) => {
                let mut reader = call.payload.reader();
                reader.skip(call.body_offset);
                let result = inner.registry.dispatch(
                    &call.header.protocol,
                    &call.header.method,
                    &mut reader,
                );
                let out = OutboundResponse {
                    conn: call.conn,
                    protocol: call.header.protocol,
                    method: call.header.method,
                    call_id: call.header.call_id,
                    result,
                };
                if inner.resp_tx.send(out).is_err() {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn responder_loop(inner: Arc<ServerInner>) {
    loop {
        match inner.resp_rx.recv_timeout(IDLE_SLICE) {
            Ok(out) => {
                // The response's buffer-size history is keyed separately
                // from the request's (responses of a method have their own
                // stable size).
                let resp_key = format!("{}#resp", out.method);
                let error_text;
                let result: Result<&dyn Writable, &str> = match &out.result {
                    Ok(value) => Ok(value.as_ref()),
                    Err(e) => {
                        // Application errors travel as their bare message;
                        // engine errors keep their category prefix.
                        error_text = match e {
                            RpcError::Remote(m) => m.clone(),
                            other => other.to_string(),
                        };
                        Err(&error_text)
                    }
                };
                // A failed send only affects that one connection — but it
                // does mean the connection is broken: close it so its
                // Reader stops pulling requests whose responses could
                // never be delivered, and count the event.
                let send_result = out.conn.send_msg(&out.protocol, &resp_key, &mut |o| {
                    write_response(o, out.call_id, result)
                });
                if send_result.is_err() {
                    inner.metrics.inc_broken_sends();
                    out.conn.close();
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
