//! The RPC server: the paper's Section III-D pipeline, with both ends
//! sharded.
//!
//! Hadoop's 0.20.x architecture — reproduced faithfully up to PR 3 —
//! dedicates one **Reader** thread to every connection and funnels every
//! transmission through a *single* **Responder** thread. That is exactly
//! right for the paper's 8–16 node runs and exactly wrong at scale:
//! thread explosion on the read side, a serialization point on the write
//! side. Following the Ibdxnet design (dedicated, sharded send/recv
//! threads with explicit per-connection ordering), the pipeline is now:
//!
//! * a **Listener** thread accepts connections, assigns each a
//!   monotonically increasing connection id, and hands the stream to a
//!   transient setup thread (handshake and, in RPCoIB mode, the blocking
//!   end-point exchange) which registers the finished connection with
//!   its reader shard. The accept path is *bounded*: at most
//!   `RpcConfig::accept_backlog` setups run concurrently (further
//!   connects wait in the listener queue), and once
//!   `RpcConfig::max_connections` connections are live (or being set
//!   up), further connects are answered with a retryable busy rejection
//!   instead of growing the conn table without limit;
//! * **N reader shards** (`RpcConfig::reader_shards`; connections hashed
//!   by `conn_id % N` at accept time), each blocking on its
//!   [`ReadyQueue`] of woken connections (see [`crate::readiness`] for
//!   the wake-list contract): transports enqueue a generation-stamped
//!   conn token when input becomes observable, the shard pops it,
//!   re-checks [`Conn::poll_ready`], receives a bounded burst of frames,
//!   and re-arms the token if input remains — so idle connections cost
//!   nothing per scheduling round, which is what makes a 50k-connection
//!   front door affordable (ROADMAP item 1). Each admitted frame
//!   consults the [`RetryCache`] for at-most-once admission and is
//!   pushed onto the bounded call queue — *without blocking*: an
//!   overflowing queue answers with a retryable busy rejection instead
//!   of stalling every other call on the shard;
//! * a pool of **Handler** threads pops calls, dispatches into the
//!   registered services, serializes the response once, and hands the
//!   bytes (to the caller *and* any parked duplicate attempts) to the
//!   responder shards;
//! * **M responder shards** (`RpcConfig::responder_shards`) transmit
//!   responses. A response is routed to shard `conn_id % M`, so all
//!   responses of one connection flow through one shard in enqueue
//!   order — per-connection ordering is preserved no matter how many
//!   shards exist, and a parked duplicate on a *different* connection is
//!   delivered by *its* connection's shard. Each sweep drains everything
//!   already queued (when `RpcConfig::wire_batch` is on) and sends each
//!   connection's ready responses as one gathered wire operation; the
//!   shard also owns its connections' V3 response-lead encoders, since
//!   sweep order *is* wire order.
//!
//! With `reader_shards = 1, responder_shards = 1` this degenerates to
//! "one Reader event loop + the paper's single Responder"; the `0`/auto
//! defaults keep the single-responder behaviour while giving the read
//! side a small fixed shard pool.
//!
//! Shutdown comes in two flavors: [`Server::stop`] (abrupt — close
//! everything now) and [`Server::drain`] (graceful — stop accepting,
//! quiesce the reader shards, finish queued calls, flush responses, then
//! join).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use simnet::{Fabric, NodeId, SimAddr, SimListener};
use wire::Writable;

use crate::admission::{AdmissionQueue, AdmitError, CallClass, CallMeta};
use crate::config::{HandlerRuntime, RpcConfig};
use crate::error::{RpcError, RpcResult};
use crate::frame::{
    busy_body, expired_body, read_request_header, write_response_body, write_response_lead,
    FrameVersion, Payload, RequestHeader, V3Decoder, V3Encoder,
};
use crate::handshake;
use crate::intern::MethodKey;
use crate::metrics::{
    MetricsRegistry, MetricsSnapshot, Phase, RecvProfile as MetricsRecv, ShardRole, ShardStats,
};
use crate::readiness::{token, token_gen, token_slot, Pop, ReadyQueue, WakeState, TOKEN_REGISTER};
use crate::retry_cache::{Admission, CallKey, RetryCache};
use crate::sched::{CallPoll, HandlerCx, ParkRequest, Sched, Step};
use crate::service::ServiceRegistry;
use crate::transport::rdma::{IbContext, RdmaConn};
use crate::transport::socket::SocketConn;
use crate::transport::Conn;

/// How long blocking queue pops wait before re-checking for shutdown.
const IDLE_SLICE: Duration = Duration::from_millis(100);

/// Cadence of the reader's liveness sweep — the fallback probe pass that
/// catches the one readiness transition no hook can deliver: a peer node
/// dying without closing its connections. See [`reader_shard_loop`].
const LIVENESS_SWEEP: Duration = Duration::from_secs(1);

/// Bound on one `recv_msg` once a connection has signalled readiness. A
/// ready socket connection returns instantly; on the verbs path the
/// pending completion may be a flow-control credit rather than a
/// message, in which case the credit is consumed and the shard waits at
/// most this long for a message riding behind it.
const READ_SLICE: Duration = Duration::from_millis(1);

/// Poll interval of [`Server::drain`]'s quiescence checks.
const DRAIN_POLL: Duration = Duration::from_millis(2);

/// Frames one readiness pop may decode from a single connection before
/// its token re-arms at the back of the queue (non-QoS mode; QoS mode
/// budgets by tenant weight instead). A gathered V3 batch arrives as one
/// wire op carrying many frames: draining them in one pop turns
/// batch-of-32 service from 32 queue round-trips into one, while the
/// bound keeps one chatty peer from starving its shard.
const READ_BURST: usize = 32;

/// Pop timeout of a reader shard with `reader_steal` on: short, so an
/// idle shard visits its siblings' queues instead of blocking a full
/// [`IDLE_SLICE`] while another shard runs hot.
const STEAL_POLL: Duration = Duration::from_millis(1);

struct RawCall {
    conn_id: u64,
    conn: Arc<dyn Conn>,
    header: RequestHeader,
    payload: Payload,
    /// Offset of the parameter bytes within the payload.
    body_offset: usize,
    /// When the Reader admitted the call — the handler's pop time minus
    /// this is the `server_queue` phase of the latency histogram.
    admitted_at: Instant,
}

/// Where one serialized response must be delivered. The retry cache parks
/// these for duplicate attempts; completion fans the same bytes out to
/// every route. `conn_id` picks the responder shard, so every response of
/// a connection flows through the same shard in order.
struct RespRoute {
    conn_id: u64,
    conn: Arc<dyn Conn>,
    /// The request's interned key; the responder derives the response's
    /// buffer-history key from it (`key.response_key()`).
    key: MethodKey,
    /// The version *this route's request* arrived in — a parked duplicate
    /// may sit on a connection speaking a different version than the
    /// executing attempt's, so the lead is composed per route, not per
    /// response. The responder shard owns the per-connection V3 lead
    /// encoders.
    version: FrameVersion,
    /// Tenant identity of the route's caller; the responder's
    /// weighted-fair sweep budgets transmissions by it.
    client_id: u64,
    seq: i64,
}

struct OutboundResponse {
    route: RespRoute,
    /// The serialized *version-neutral* response body (`[status][value]`),
    /// shared when a completed call also releases parked duplicates; each
    /// route's responder shard prepends the per-version lead.
    bytes: Arc<Vec<u8>>,
}

/// A connection handed from the accept path to its reader shard.
struct ShardConn {
    conn_id: u64,
    conn: Arc<dyn Conn>,
    /// Frame version negotiated at the handshake (1 for legacy peers).
    version: u8,
    /// Identity from the handshake; V3 frames no longer carry it.
    client_id: u64,
    /// Request-header decoder for V3 connections. Owned by the one reader
    /// shard the connection is hashed onto, so decoding needs no lock.
    dec: V3Decoder,
}

/// One responder shard's queue and counters. The receiving end is also
/// held here (not moved into the thread) so `Server::start` can spawn the
/// shard thread after `ServerInner` is built.
struct RespShard {
    tx: Sender<OutboundResponse>,
    rx: Receiver<OutboundResponse>,
    stats: Arc<ShardStats>,
}

struct ServerInner {
    cfg: RpcConfig,
    registry: ServiceRegistry,
    addr: SimAddr,
    stop: AtomicBool,
    /// Graceful-shutdown mode: stop accepting and reading, but let queued
    /// calls finish and their responses flush (see [`Server::drain`]).
    draining: AtomicBool,
    /// Set by the Listener on its way out; `drain` waits on it before
    /// trusting the reader count (no new setup threads spawn after this).
    listener_done: AtomicBool,
    /// Read-side threads that can still admit calls: every reader shard
    /// for the server's lifetime, plus each in-flight connection-setup
    /// thread (incremented by the Listener *before* the spawn, so `drain`
    /// never sees a gap).
    live_readers: AtomicUsize,
    /// Admitted calls whose responses have not yet been transmitted.
    /// Incremented by a reader shard before enqueueing a call (and for
    /// each standalone response it enqueues), decremented by a responder
    /// shard after the send attempt — so "no open work" really means no
    /// call or response is anywhere in the pipeline.
    open_work: AtomicUsize,
    metrics: MetricsRegistry,
    /// Present in RPCoIB mode; kept here so metrics snapshots can read
    /// the registered buffer pool's counters.
    ib: Option<IbContext>,
    retry_cache: RetryCache<RespRoute>,
    /// Source of server-assigned client ids for peers that present 0 at
    /// the handshake.
    next_client_id: AtomicU64,
    /// The reader→handler admission plane: the seed's bounded FIFO
    /// channel, now with per-tenant quotas, weighted-fair pop, and
    /// deadline shedding (all off by default — see [`crate::admission`]).
    admission: AdmissionQueue<RawCall>,
    /// Base of the admission plane's monotonic `now_ns` timeline.
    started: Instant,
    /// Registration channels into the reader shards, indexed by
    /// `conn_id % reader_shards`.
    reader_regs: Vec<Sender<ShardConn>>,
    /// The reader shards' wake lists, indexed like `reader_regs`. The
    /// accept path pushes [`TOKEN_REGISTER`] after a registration so a
    /// blocked shard adopts promptly; `drain`/`stop` close them so
    /// blocked pops exit without waiting out a timeout.
    reader_ready: Vec<Arc<ReadyQueue>>,
    /// Each reader shard's slot table, indexed like `reader_regs`.
    /// Shared (rather than thread-local as before PR 10) so an idle
    /// sibling can steal a ready token and service the connection under
    /// the owner's table lock — which is also what keeps per-connection
    /// frame order: whoever holds the lock is the only thread reading
    /// that shard's connections. With `reader_steal` off only the owner
    /// ever takes it, uncontended.
    reader_state: Vec<Mutex<ReaderState>>,
    /// Per reader-shard counters, indexed like `reader_regs`; a thief
    /// books the stolen connection's lifecycle (conn gauge) against its
    /// *owner* shard while counting the work on itself.
    reader_stats: Vec<Arc<ShardStats>>,
    /// The M:N handler runtime (`handler_runtime = mn`); `None` under
    /// the legacy thread pool.
    sched: Option<Arc<Sched>>,
    /// Protocols of the control/heartbeat admission class
    /// (`cfg.priority_protocols`); empty = single class.
    priority: HashSet<String>,
    /// Connection setups currently in flight (accepted, handshake or
    /// verbs bootstrap unfinished). Together with the conn table this
    /// bounds the accept path: at `accept_backlog` the Listener pauses
    /// accepting until a setup finishes; past `max_connections` it
    /// answers busy instead of spawning.
    setups_inflight: AtomicUsize,
    /// Responder shards, indexed by `conn_id % responder_shards`.
    responders: Vec<RespShard>,
    /// Live connections, keyed by accept order. Entries are removed by
    /// the owning reader shard when a connection is forfeited, so
    /// connection churn does not accumulate dead `Arc<dyn Conn>`s (and,
    /// in RPCoIB mode, their registered buffers) for the life of the
    /// server.
    conns: Mutex<HashMap<u64, Arc<dyn Conn>>>,
    next_conn_id: AtomicU64,
    /// Connections accepted over the server's lifetime.
    accepted: AtomicU64,
    /// Connection-setup thread handles awaiting reaping. Finished ones
    /// are joined by the Listener on every accept-loop pass; the rest at
    /// `stop()`.
    setup_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServerInner {
    /// Monotonic nanoseconds since server start — the explicit clock the
    /// admission queue runs on. (The `qos` benchmark drives the same
    /// queue type with virtual time for deterministic shed decisions.)
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn assign_client_id(&self) -> u64 {
        // The counter is seeded randomly per server; skip an (unlikely)
        // wrap through 0, which the handshake reserves for "assign me".
        loop {
            let id = self.next_client_id.fetch_add(1, Ordering::Relaxed);
            if id != 0 {
                return id;
            }
        }
    }

    fn responder_for(&self, conn_id: u64) -> &RespShard {
        &self.responders[(conn_id % self.responders.len() as u64) as usize]
    }

    /// Enqueue a response without blocking (reader-side replay and busy
    /// paths). Dropping on a full queue is safe: the client retries, and
    /// for replays the cache still holds the bytes.
    fn try_enqueue_response(&self, route: RespRoute, bytes: Arc<Vec<u8>>) {
        self.open_work.fetch_add(1, Ordering::AcqRel);
        let shard = self.responder_for(route.conn_id);
        // Depth is bumped before the item is visible to the shard thread,
        // so the matching dequeue can never race ahead of it.
        shard.stats.enqueued();
        if shard
            .tx
            .try_send(OutboundResponse { route, bytes })
            .is_err()
        {
            shard.stats.dequeued();
            self.open_work.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Enqueue a response, blocking if the responder shard is behind
    /// (Handler side — a computed response must not be dropped).
    fn enqueue_response(&self, route: RespRoute, bytes: Arc<Vec<u8>>) {
        self.open_work.fetch_add(1, Ordering::AcqRel);
        let shard = self.responder_for(route.conn_id);
        shard.stats.enqueued();
        if shard.tx.send(OutboundResponse { route, bytes }).is_err() {
            shard.stats.dequeued();
            self.open_work.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Decrements a counter on drop, so read-side thread exits (normal,
/// panic, early return) all release their slot.
struct CountGuard<'a>(&'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running RPC server.
pub struct Server {
    inner: Arc<ServerInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind and start a server on `(node, port)` of `fabric`, hosting the
    /// services in `registry`. Transport is chosen by `cfg.ib_enabled`.
    pub fn start(
        fabric: &Fabric,
        node: NodeId,
        port: u16,
        cfg: RpcConfig,
        registry: ServiceRegistry,
    ) -> RpcResult<Server> {
        cfg.validate().map_err(RpcError::Config)?;
        let addr = SimAddr::new(node, port);
        let listener = SimListener::bind(fabric, addr)?;
        let ib = if cfg.ib_enabled {
            Some(IbContext::new(fabric, node, &cfg)?)
        } else {
            None
        };

        let n_readers = cfg.effective_reader_shards();
        let n_responders = cfg.effective_responder_shards();
        let admission =
            AdmissionQueue::new(cfg.call_queue_len, cfg.tenant_quota, &cfg.tenant_weights);
        let metrics = MetricsRegistry::new(false);
        let retry_cache = RetryCache::new(
            cfg.retry_cache_ttl,
            cfg.retry_cache_capacity,
            metrics.clone(),
        );

        let mut reader_regs = Vec::with_capacity(n_readers);
        let mut reader_rxs = Vec::with_capacity(n_readers);
        let mut reader_stats = Vec::with_capacity(n_readers);
        let mut reader_ready = Vec::with_capacity(n_readers);
        let mut reader_state = Vec::with_capacity(n_readers);
        for i in 0..n_readers {
            let (tx, rx) = unbounded();
            reader_regs.push(tx);
            reader_rxs.push(rx);
            let stats = metrics.register_shard(ShardRole::Reader, i);
            // The shard's wake list feeds its queue-depth gauge.
            reader_ready.push(Arc::new(ReadyQueue::new(Some(Arc::clone(&stats)))));
            reader_stats.push(stats);
            reader_state.push(Mutex::new(ReaderState::default()));
        }
        // The M:N runtime and its per-worker counter blocks (absent —
        // along with the `worker` shard rows — under the legacy pool).
        let sched = match cfg.handler_runtime {
            HandlerRuntime::Threads => None,
            HandlerRuntime::Mn => {
                let n = cfg.effective_handler_workers();
                let stats: Vec<_> = (0..n)
                    .map(|i| metrics.register_shard(ShardRole::Worker, i))
                    .collect();
                Some(Arc::new(Sched::new(n, stats)))
            }
        };
        let mut responders = Vec::with_capacity(n_responders);
        for i in 0..n_responders {
            let (tx, rx) = bounded(cfg.call_queue_len);
            responders.push(RespShard {
                tx,
                rx,
                stats: metrics.register_shard(ShardRole::Responder, i),
            });
        }

        let id_seed = handshake::mint_client_id((u64::from(node.0) << 16) ^ u64::from(port));
        let priority: HashSet<String> = cfg.priority_protocols.iter().cloned().collect();
        let inner = Arc::new(ServerInner {
            cfg,
            registry,
            addr,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            listener_done: AtomicBool::new(false),
            live_readers: AtomicUsize::new(0),
            open_work: AtomicUsize::new(0),
            metrics,
            ib,
            retry_cache,
            next_client_id: AtomicU64::new(id_seed),
            admission,
            started: Instant::now(),
            reader_regs,
            reader_ready,
            reader_state,
            reader_stats: reader_stats.clone(),
            sched,
            priority,
            setups_inflight: AtomicUsize::new(0),
            responders,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            setup_threads: Mutex::new(Vec::new()),
        });

        let mut threads = Vec::new();

        // Listener thread.
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rpc-listener-{addr}"))
                    .spawn(move || listener_loop(inner, listener))
                    .expect("spawn listener"),
            );
        }
        // Reader shards (counted in live_readers for their whole life;
        // `drain` waits for them to observe the draining flag and exit).
        for (i, reg_rx) in reader_rxs.into_iter().enumerate() {
            inner.live_readers.fetch_add(1, Ordering::AcqRel);
            let ready = Arc::clone(&inner.reader_ready[i]);
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rpc-reader-{i}"))
                    .spawn(move || {
                        let _slot = CountGuard(&inner.live_readers);
                        reader_shard_loop(&inner, i, reg_rx, ready);
                    })
                    .expect("spawn reader shard"),
            );
        }
        // The execution engine: the paper's fixed handler pool, or the
        // M:N runtime's worker loops.
        match inner.cfg.handler_runtime {
            HandlerRuntime::Threads => {
                for h in 0..inner.cfg.handlers {
                    let inner = Arc::clone(&inner);
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("rpc-handler-{h}"))
                            .spawn(move || handler_loop(inner))
                            .expect("spawn handler"),
                    );
                }
            }
            HandlerRuntime::Mn => {
                let workers = inner.cfg.effective_handler_workers();
                for w in 0..workers {
                    let inner = Arc::clone(&inner);
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("rpc-worker-{w}"))
                            .spawn(move || mn_worker_loop(inner, w))
                            .expect("spawn mn worker"),
                    );
                }
            }
        }
        // Responder shards.
        for i in 0..n_responders {
            let inner2 = Arc::clone(&inner);
            let rx = inner.responders[i].rx.clone();
            let stats = Arc::clone(&inner.responders[i].stats);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rpc-responder-{i}"))
                    .spawn(move || responder_loop(inner2, rx, stats))
                    .expect("spawn responder"),
            );
        }

        Ok(Server {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SimAddr {
        self.inner.addr
    }

    /// Server-side metrics (receive profiles feed the Figure 1 harness).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Full observability snapshot: engine counters, per-method stats,
    /// per-`<protocol, method>` phase histograms, per-shard pipeline
    /// counters, and (in RPCoIB mode) the registered buffer pool's
    /// counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self
            .inner
            .metrics
            .full_snapshot(self.inner.ib.as_ref().map(|ib| ib.pool_counters()));
        // Per-connection memory accounting, read live from the conn
        // table (per-shard ready-queue depth already rides in `shards`).
        let conns = self.inner.conns.lock();
        snap.connections = conns.len();
        snap.conn_buffered_bytes = conns.values().map(|c| c.buffered_bytes()).sum();
        snap
    }

    /// Number of connections currently alive (accepted and not yet torn
    /// down). Under churn this returns to zero once departed clients'
    /// reader shards notice the close.
    pub fn connection_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Number of connections accepted over this server's lifetime.
    pub fn lifetime_connection_count(&self) -> u64 {
        self.inner.accepted.load(Ordering::Relaxed)
    }

    /// Live entries in the at-most-once retry cache (for tests and
    /// observability).
    pub fn retry_cache_len(&self) -> usize {
        self.inner.retry_cache.len()
    }

    /// Graceful shutdown: stop accepting connections and reading new
    /// calls, let every already-admitted call execute and its response
    /// flush, then stop all threads. Returns `true` if the server fully
    /// quiesced within `timeout`; on `false` the deadline passed and the
    /// remaining work was cut off by an abrupt [`Server::stop`].
    pub fn drain(&self, timeout: Duration) -> bool {
        if self.inner.stop.load(Ordering::Acquire) {
            return true;
        }
        self.inner.draining.store(true, Ordering::Release);
        // Wake every reader shard blocked on its ready queue *now*: the
        // draining flag alone would only be observed after a pop timeout.
        for ready in &self.inner.reader_ready {
            ready.close();
        }
        let deadline = Instant::now() + timeout;

        // Phase 1: the Listener exits — no new setup threads after this.
        while !self.inner.listener_done.load(Ordering::Acquire) {
            if Instant::now() >= deadline {
                self.shutdown(false);
                return false;
            }
            std::thread::sleep(DRAIN_POLL);
        }
        // Phase 2: the read side quiesces — every reader shard observes
        // the draining flag and exits, and in-flight connection setups
        // finish. No new calls enter the pipeline after this.
        while self.inner.live_readers.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                self.shutdown(false);
                return false;
            }
            std::thread::sleep(DRAIN_POLL);
        }
        // Phase 3: the pipeline empties. `open_work` covers a call from
        // reader admission until its response transmission, so zero means
        // nothing is queued, executing, or awaiting send.
        while self.inner.open_work.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                self.shutdown(false);
                return false;
            }
            std::thread::sleep(DRAIN_POLL);
        }
        self.stop();
        true
    }

    /// Stop all threads and close all connections. Idempotent.
    pub fn stop(&self) {
        self.shutdown(true);
    }

    /// `wait = false` is the expired-drain path: the threads may be stuck
    /// in a long handler dispatch, and a drain whose deadline has passed
    /// must return *now* — the joins happen on a detached reaper thread.
    fn shutdown(&self, wait: bool) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake handlers parked on the admission queue; anything still
        // queued stays poppable, but handlers exit on the stop flag.
        self.inner.admission.close();
        // And the M:N workers parked on the runtime's idle condvar.
        if let Some(sched) = &self.inner.sched {
            sched.close();
        }
        // And the reader shards blocked on their wake lists.
        for ready in &self.inner.reader_ready {
            ready.close();
        }
        // Clear every shard's slot table. The slots hold the *other*
        // `Arc<dyn Conn>` clones (the conn table below holds the first),
        // and stale-connection fast-fail depends on the server-side
        // transport state being released at stop — a `ReaderSlot`
        // surviving in `ServerInner` would keep an RPCoIB queue pair
        // registered and turn a restarted peer's fast reconnect into a
        // full call timeout. (Before PR 10 these were reader-thread
        // locals and died with the thread.)
        for state in &self.inner.reader_state {
            let mut state = state.lock();
            for slot in state.slots.iter().flatten() {
                slot.sc.conn.close();
            }
            state.slots.clear();
            state.gens.clear();
            state.free.clear();
        }
        {
            // Close *and drop* every connection. Releasing the `Arc`s here
            // (rather than when the `Server` value itself is dropped)
            // deregisters server-side transport state — RPCoIB queue pairs
            // in particular — so a client holding a stale connection sees
            // its next send fail fast and reconnects, instead of writing
            // into a zombie queue pair and timing out.
            let mut conns = self.inner.conns.lock();
            for conn in conns.values() {
                conn.close();
            }
            conns.clear();
        }
        let mut threads: Vec<_> = self.threads.lock().drain(..).collect();
        threads.extend(self.inner.setup_threads.lock().drain(..));
        if wait {
            for t in threads {
                let _ = t.join();
            }
        } else {
            std::thread::Builder::new()
                .name("rpc-stop-reaper".into())
                .spawn(move || {
                    for t in threads {
                        let _ = t.join();
                    }
                })
                .expect("spawn stop reaper");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.inner.addr)
            .field("protocols", &self.inner.registry.protocols())
            .finish()
    }
}

fn listener_loop(inner: Arc<ServerInner>, listener: SimListener) {
    while !inner.stop.load(Ordering::Acquire) && !inner.draining.load(Ordering::Acquire) {
        // Reap setup threads whose connections have finished (or failed)
        // bootstrap. Without this, a server that lives through N transient
        // clients holds N parked JoinHandles (and their stacks) forever.
        {
            let mut threads = inner.setup_threads.lock();
            if threads.iter().any(|t| t.is_finished()) {
                let mut live = Vec::with_capacity(threads.len());
                for t in threads.drain(..) {
                    if t.is_finished() {
                        let _ = t.join();
                    } else {
                        live.push(t);
                    }
                }
                *threads = live;
            }
        }
        // Backlog backpressure: with `accept_backlog` setups already in
        // flight, stop accepting until one finishes. Pending connects
        // queue in the listener (bounded latency, like a TCP SYN queue),
        // so a legitimate burst is absorbed rather than refused.
        if inner.setups_inflight.load(Ordering::Acquire) >= inner.cfg.accept_backlog {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        match listener.try_accept() {
            Ok(Some((stream, _peer))) => {
                // Hard admission cap, *before* any resource is
                // committed: past `max_connections` (live + in setup),
                // answer with the 9-byte busy ack (version byte 0) and
                // drop the stream. A modern client maps it to the
                // retryable `ServerBusy`; a legacy peer just sees its
                // connection die, which its reconnect logic already
                // handles.
                let setups = inner.setups_inflight.load(Ordering::Acquire);
                let over_cap = inner.cfg.max_connections != 0
                    && inner.conns.lock().len() + setups >= inner.cfg.max_connections;
                if over_cap {
                    inner.metrics.inc_accept_rejections();
                    use std::io::Write;
                    let _ = (&stream).write_all(&[0u8; 9]);
                    continue;
                }
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                // The id decides the connection's reader and responder
                // shards; assigned here, in accept order, so shard
                // placement does not depend on setup-thread scheduling.
                let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
                // Counted before the spawn so `drain` can never observe
                // "listener done, read side quiesced" while a setup is in
                // flight; same for the backpressure gauge.
                inner.live_readers.fetch_add(1, Ordering::AcqRel);
                inner.setups_inflight.fetch_add(1, Ordering::AcqRel);
                let inner2 = Arc::clone(&inner);
                // Connection setup (handshake, and in RPCoIB mode the
                // blocking endpoint exchange) runs on its own transient
                // thread, keeping the accept loop responsive; the
                // finished connection is handed to its reader shard.
                let handle = std::thread::Builder::new()
                    .name("rpc-conn-setup".into())
                    .spawn(move || {
                        let _slot = CountGuard(&inner2.live_readers);
                        let _setup = CountGuard(&inner2.setups_inflight);
                        // Identity/version handshake first, on the raw
                        // stream. A peer that opens with anything but the
                        // magic is a pre-handshake (V1) peer: the sniffed
                        // bytes are pushed back and the connection runs
                        // the previous release's protocol — no identity,
                        // no retry caching, V1 frames answered in V1. A
                        // garbage peer takes the same path and is weeded
                        // out when its bytes fail to parse as a frame.
                        let (version, client_id) =
                            match handshake::server_accept(&stream, || inner2.assign_client_id()) {
                                Ok(handshake::ServerHello::Modern { version, client_id }) => {
                                    (version, client_id)
                                }
                                Ok(handshake::ServerHello::Legacy) => (1, 0),
                                Err(RpcError::Protocol(_)) => {
                                    // Spoke the magic but an unsupportable
                                    // version: refuse and count it.
                                    inner2.metrics.inc_frame_errors();
                                    return;
                                }
                                Err(_) => return, // peer vanished mid-handshake
                            };
                        let conn: Arc<dyn Conn> = match &inner2.ib {
                            Some(ctx) => {
                                match RdmaConn::bootstrap(&stream, ctx, &inner2.cfg) {
                                    Ok(c) => Arc::new(c.with_metrics(inner2.metrics.clone())),
                                    Err(_) => return, // peer vanished mid-exchange
                                }
                            }
                            None => Arc::new(
                                SocketConn::new(stream, inner2.cfg.server_buffer_init)
                                    .with_batch(inner2.cfg.wire_batch)
                                    .with_metrics(inner2.metrics.clone()),
                            ),
                        };
                        inner2.conns.lock().insert(conn_id, Arc::clone(&conn));
                        let shard = (conn_id % inner2.reader_regs.len() as u64) as usize;
                        if inner2.reader_regs[shard]
                            .send(ShardConn {
                                conn_id,
                                conn,
                                version,
                                client_id,
                                dec: V3Decoder::new(!inner2.cfg.ib_enabled),
                            })
                            .is_ok()
                        {
                            // Nudge a shard blocked on its wake list to
                            // adopt the registration now.
                            inner2.reader_ready[shard].push(TOKEN_REGISTER);
                        }
                        // On send error the shard is gone (server
                        // stopping): the table entry is closed by
                        // `stop()`.
                    })
                    .expect("spawn conn setup");
                inner.setup_threads.lock().push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => break, // listener evicted (node killed)
        }
    }
    inner.listener_done.store(true, Ordering::Release);
}

/// What one bounded receive attempt on a ready connection produced.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReadOutcome {
    /// A frame was consumed (admitted, replayed, or rejected busy).
    Frame,
    /// Nothing usable within [`READ_SLICE`] (e.g. only a flow-control
    /// credit was pending); the connection stays assigned.
    Idle,
    /// The connection is forfeit (peer gone, corrupt frame): close it and
    /// free its table entry.
    Forfeit,
    /// The server is going away (call queue disconnected); the shard
    /// should exit.
    Shutdown,
}

/// A reader shard's slot for one assigned connection: the connection
/// itself plus its wake bookkeeping. Slots are recycled through a free
/// list; the matching entry in the shard's `gens` vector counts reuses so
/// stale wake tokens are detectable.
struct ReaderSlot {
    sc: ShardConn,
    wake: Arc<WakeState>,
}

/// One reader shard's connection table: slots, their reuse generations,
/// and the free list. Held in [`ServerInner::reader_state`] behind a
/// mutex so a stealing sibling can service this shard's connections; see
/// the field's docs for the locking discipline.
#[derive(Default)]
struct ReaderState {
    slots: Vec<Option<ReaderSlot>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

/// Adopt every connection waiting on the registration channel: assign a
/// slot, arm the transport's readiness hook, and deliver the no-lost-wake
/// guarantee (probe `poll_ready` once *after* arming, catching input that
/// arrived before the hook existed).
fn adopt_registrations(
    reg_rx: &Receiver<ShardConn>,
    ready: &Arc<ReadyQueue>,
    state: &mut ReaderState,
    stats: &ShardStats,
) {
    while let Ok(sc) = reg_rx.try_recv() {
        stats.conn_added();
        let idx = match state.free.pop() {
            Some(idx) => idx,
            None => {
                state.slots.push(None);
                state.gens.push(0);
                state.slots.len() - 1
            }
        };
        let wake = Arc::new(WakeState::new(
            token(idx, state.gens[idx]),
            Arc::clone(ready),
        ));
        let hook_state = Arc::clone(&wake);
        sc.conn.set_ready_hook(Arc::new(move || hook_state.wake()));
        let slot = ReaderSlot { sc, wake };
        if slot.sc.conn.poll_ready() {
            slot.wake.wake();
        }
        state.slots[idx] = Some(slot);
    }
}

/// Service one popped (or stolen) wake token against shard `owner`'s
/// connection table. The caller may be the owner or a stealing sibling;
/// the table lock is held for the whole burst, which is what serializes
/// reads per connection (and per shard) no matter who services it.
///
/// `actor_stats` books the work (frames processed, busy rejections) on
/// whichever shard actually did it; connection lifecycle (the conn
/// gauge) always lands on the *owner*, which adopted the connection.
fn service_token(
    inner: &Arc<ServerInner>,
    owner: usize,
    tok: u64,
    actor_stats: &ShardStats,
) -> ReadOutcome {
    let fair = inner.admission.fair();
    let mut state = inner.reader_state[owner].lock();
    let idx = token_slot(tok);
    if idx >= state.slots.len() || state.gens[idx] != token_gen(tok) || state.slots[idx].is_none() {
        // Stale token: its connection was torn down (and possibly the
        // slot recycled) after the token was queued. The generation
        // stamp makes it inert.
        return ReadOutcome::Idle;
    }
    let outcome = {
        let slot = state.slots[idx].as_mut().expect("checked above");
        // Clear the dedup flag *before* reading, so an edge firing
        // mid-burst re-enqueues instead of being lost.
        slot.wake.begin_poll();
        // Burst budget: QoS mode reads up to the tenant's weight per
        // wake (a light tenant's at least one); otherwise up to
        // `READ_BURST` frames, so a gathered V3 batch decodes in one
        // pop instead of one queue round-trip per frame. Per-connection
        // order holds either way — it is one connection drained
        // sequentially under the table lock.
        let budget = if fair {
            inner.admission.weight(slot.sc.client_id).max(1) as usize
        } else {
            READ_BURST
        };
        let mut outcome = ReadOutcome::Idle;
        for _ in 0..budget {
            if !slot.sc.conn.poll_ready() {
                break;
            }
            outcome = read_one(inner, &mut slot.sc, actor_stats);
            match outcome {
                ReadOutcome::Frame => {}
                ReadOutcome::Idle | ReadOutcome::Forfeit | ReadOutcome::Shutdown => break,
            }
        }
        outcome
    };
    match outcome {
        ReadOutcome::Forfeit => {
            let slot = state.slots[idx].take().expect("checked above");
            slot.sc.conn.close();
            inner.conns.lock().remove(&slot.sc.conn_id);
            inner.reader_stats[owner].conn_removed();
            // Reap the wake token: bump the generation first, so the
            // token the `close()` above just (re-)queued — and any
            // other stale one — can never index this slot's next
            // tenant.
            state.gens[idx] = state.gens[idx].wrapping_add(1);
            state.free.push(idx);
        }
        ReadOutcome::Shutdown => {}
        ReadOutcome::Frame | ReadOutcome::Idle => {
            // Level-trigger re-arm: if input remains (a burst larger
            // than the budget, a stashed verbs frame, sticky EOF),
            // requeue at the back of the wake list.
            let slot = state.slots[idx].as_ref().expect("checked above");
            if slot.sc.conn.poll_ready() {
                slot.wake.wake();
            }
        }
    }
    outcome
}

/// The event loop of one reader shard: block on the shard's wake list,
/// re-check readiness on every pop (wakes are hints — see
/// [`crate::readiness`]), receive a bounded burst of frames, and re-arm
/// connections that still have input. One chatty peer cannot starve the
/// shard: its burst is bounded and its re-armed token goes to the *back*
/// of the queue, giving round-robin service among ready connections while
/// idle ones cost nothing at all.
///
/// With `reader_steal` on, a shard that finds its own queue empty visits
/// its siblings' queues and steals the *newest* ready token from the
/// first non-empty one, servicing the stolen connection under its
/// owner's table lock — so a hot shard's backlog drains at the speed of
/// every idle shard, not just its own.
fn reader_shard_loop(
    inner: &Arc<ServerInner>,
    shard: usize,
    reg_rx: Receiver<ShardConn>,
    ready: Arc<ReadyQueue>,
) {
    let stats = Arc::clone(&inner.reader_stats[shard]);
    let steal = inner.cfg.reader_steal && inner.reader_ready.len() > 1;
    let pop_slice = if steal { STEAL_POLL } else { IDLE_SLICE };
    let mut last_sweep = Instant::now();
    while !inner.stop.load(Ordering::Acquire) && !inner.draining.load(Ordering::Acquire) {
        // Low-frequency liveness sweep: a peer that dies without closing
        // its stream (node failure) makes its conns readable without any
        // edge ever firing — the one readiness transition a wake hook
        // cannot deliver. Walk the slab once a second and `wake()` any
        // ready conn; the dedup flag makes this a no-op for conns whose
        // token is already queued, so steady-state traffic never pays
        // for it and a truly idle shard pays one charge-free probe per
        // conn per sweep (versus every `IDLE_SLICE` under the old
        // sweep-only reader).
        if last_sweep.elapsed() >= LIVENESS_SWEEP {
            last_sweep = Instant::now();
            let state = inner.reader_state[shard].lock();
            for slot in state.slots.iter().flatten() {
                if slot.sc.conn.poll_ready() {
                    slot.wake.wake();
                }
            }
        }
        // The timeout is only a belt-and-suspenders re-check of the stop
        // flags; `drain`/`stop` close the queue, which wakes this pop
        // immediately.
        let tok = match ready.pop(pop_slice) {
            Pop::Token(tok) => tok,
            Pop::TimedOut => {
                if steal {
                    // Own queue idle: take the newest token off the
                    // first hot sibling and service it in their stead.
                    let n = inner.reader_ready.len();
                    for off in 1..n {
                        let victim = (shard + off) % n;
                        if let Some(tok) = inner.reader_ready[victim].steal() {
                            stats.inc_steal();
                            if service_token(inner, victim, tok, &stats) == ReadOutcome::Shutdown {
                                return;
                            }
                            break;
                        }
                    }
                }
                continue;
            }
            Pop::Closed => break,
        };
        if tok == TOKEN_REGISTER {
            let mut state = inner.reader_state[shard].lock();
            adopt_registrations(&reg_rx, &ready, &mut state, &stats);
            continue;
        }
        if service_token(inner, shard, tok, &stats) == ReadOutcome::Shutdown {
            break;
        }
    }
    // On stop or drain the assigned connections stay open and in the
    // table — a draining server still owes them responses, and `stop()`
    // closes the whole table itself.
}

/// Receive and admit one frame from a ready connection. This is the body
/// the per-connection Reader thread used to run, minus the blocking idle
/// wait (the shard only calls it after `poll_ready`).
fn read_one(inner: &Arc<ServerInner>, sc: &mut ShardConn, stats: &ShardStats) -> ReadOutcome {
    let conn = &sc.conn;
    let (payload, recv) = match conn.recv_msg(READ_SLICE) {
        Ok(v) => v,
        Err(RpcError::Timeout) => return ReadOutcome::Idle,
        Err(RpcError::Protocol(_)) => {
            // Unframeable bytes (e.g. a garbage peer that passed the
            // legacy handshake sniff): count it like any corrupt frame
            // before forfeiting the connection.
            inner.metrics.inc_frame_errors();
            return ReadOutcome::Forfeit;
        }
        Err(_) => return ReadOutcome::Forfeit,
    };
    let mut reader = payload.reader();
    let parsed = if sc.version >= 3 {
        // The compact header: the negotiated version selects the codec,
        // no per-frame marker exists to mis-sniff.
        sc.dec.read_request_header(&mut reader, sc.client_id)
    } else {
        read_request_header(&mut reader)
    };
    let header = match parsed {
        Ok(h) => h,
        Err(_) => {
            // Corrupt frame: past this point the stream cannot be
            // re-synchronized, so the whole connection is forfeit.
            // Counted for observability.
            inner.metrics.inc_frame_errors();
            return ReadOutcome::Forfeit;
        }
    };
    stats.inc_processed();
    let body_offset = reader.position();
    inner.metrics.entry(header.key).record_recv(MetricsRecv {
        alloc_ns: recv.alloc_ns,
        total_ns: recv.total_ns,
        size: recv.size,
    });
    // At-most-once admission. V1 peers (and clients with caching
    // disabled, client_id 0) skip the cache but still get the
    // non-blocking queue admission below. The cache stores *neutral*
    // bodies, so V2 and V3 attempts of the same logical call share one
    // entry — each route's lead is composed in its own version.
    let cache_key: Option<CallKey> = if header.version != FrameVersion::V1 && header.client_id != 0
    {
        Some((header.client_id, header.seq))
    } else {
        None
    };
    if let Some(key) = cache_key {
        match inner.retry_cache.begin(key, || RespRoute {
            conn_id: sc.conn_id,
            conn: Arc::clone(conn),
            key: header.key,
            version: header.version,
            client_id: header.client_id,
            seq: header.seq,
        }) {
            Admission::Execute => {}
            Admission::Parked => return ReadOutcome::Frame,
            Admission::Replay(bytes) => {
                // Completed earlier: answer from the cache, never
                // touching the handler pool.
                let route = RespRoute {
                    conn_id: sc.conn_id,
                    conn: Arc::clone(conn),
                    key: header.key,
                    version: header.version,
                    client_id: header.client_id,
                    seq: header.seq,
                };
                inner.try_enqueue_response(route, bytes);
                return ReadOutcome::Frame;
            }
        }
    }
    let route = RespRoute {
        conn_id: sc.conn_id,
        conn: Arc::clone(conn),
        key: header.key,
        version: header.version,
        client_id: header.client_id,
        seq: header.seq,
    };
    let call = RawCall {
        conn_id: sc.conn_id,
        conn: Arc::clone(conn),
        header,
        payload,
        body_offset,
        admitted_at: Instant::now(),
    };
    // The shedding deadline in the server's own clock. Only V3 peers
    // carry a budget; a zero-config server (deadline_propagation off)
    // ignores it entirely.
    let expires_at_ns = match (inner.cfg.deadline_propagation, header.deadline_budget) {
        (true, Some(budget)) => Some(inner.now_ns().saturating_add(budget.as_nanos() as u64)),
        _ => None,
    };
    // Protocol-priority class: calls to a listed control protocol jump
    // their tenant's bulk backlog inside the admission queue. The
    // default empty set marks everything Bulk — ordering identical to
    // the classless queue.
    let class = if !inner.priority.is_empty() && inner.priority.contains(header.protocol()) {
        CallClass::Control
    } else {
        CallClass::Bulk
    };
    let meta = CallMeta {
        tenant: header.client_id,
        expires_at_ns,
        class,
    };
    inner.open_work.fetch_add(1, Ordering::AcqRel);
    match inner.admission.try_push(meta, call) {
        Ok(()) => {
            // Under the M:N runtime nothing blocks on the admission
            // queue's condvar — nudge an idle worker instead.
            if let Some(sched) = &inner.sched {
                sched.notify();
            }
        }
        Err((AdmitError::QueueFull | AdmitError::TenantOverQuota, _call)) => {
            // Overload (shared queue full, or this tenant over its
            // quota): reject instead of blocking the shard (which would
            // stall every connection assigned to it). The call never
            // executed, so the rejection is retryable.
            inner.open_work.fetch_sub(1, Ordering::AcqRel);
            inner.metrics.inc_busy_rejections_for(header.client_id);
            stats.inc_busy();
            let mut routes = vec![route];
            if let Some(key) = cache_key {
                // Duplicates that parked in the begin/try_push window
                // (another connection of the same client) get the same
                // busy answer; the entry is gone so a retry can execute.
                routes.extend(inner.retry_cache.abort(key));
            }
            for r in routes {
                // Per route, not shared: a V1 route needs the error-string
                // body where modern routes get the bare busy status.
                let bytes = Arc::new(busy_body(r.version));
                inner.try_enqueue_response(r, bytes);
            }
        }
        Err((AdmitError::Closed, _call)) => {
            inner.open_work.fetch_sub(1, Ordering::AcqRel);
            if let Some(key) = cache_key {
                inner.retry_cache.abort(key);
            }
            return ReadOutcome::Shutdown; // the server is going away
        }
    }
    ReadOutcome::Frame
}

fn handler_loop(inner: Arc<ServerInner>) {
    loop {
        let popped = inner.admission.pop(inner.now_ns(), IDLE_SLICE);
        // Expired heads are answered without execution — that is the whole
        // point of deadline propagation: the client already gave up on
        // these, so running them is pure wasted work.
        for (meta, call) in popped.shed {
            shed_call(&inner, meta, call);
        }
        match popped.run {
            Some((meta, call)) => {
                let entry = inner.metrics.entry(call.header.key);
                entry.record_phase(
                    Phase::ServerQueue,
                    call.admitted_at.elapsed().as_nanos() as u64,
                );
                let handler_start = Instant::now();
                let mut reader = call.payload.reader();
                reader.skip(call.body_offset);
                let result = inner.registry.dispatch(
                    call.header.protocol(),
                    call.header.method(),
                    &mut reader,
                );
                // Serialize once, on the handler thread; the responder
                // shard (and any parked duplicate) just transmits bytes.
                let error_text;
                let result_ref: Result<&dyn Writable, &str> = match &result {
                    Ok(value) => Ok(value.as_ref()),
                    Err(e) => {
                        // Application errors travel as their bare
                        // message; engine errors keep their category
                        // prefix.
                        error_text = match e {
                            RpcError::Remote(m) => m.clone(),
                            other => other.to_string(),
                        };
                        Err(&error_text)
                    }
                };
                // The body is serialized *version-neutral* (`[status]
                // [value]`): the responder shard prepends each route's
                // own lead, so a replay or parked duplicate arriving in a
                // different frame version still shares these bytes.
                let mut body = Vec::new();
                write_response_body(&mut body, result_ref).expect("serializing to Vec cannot fail");
                let bytes = Arc::new(body);
                entry.record_phase(Phase::Handler, handler_start.elapsed().as_nanos() as u64);

                let mut routes = vec![RespRoute {
                    conn_id: call.conn_id,
                    conn: call.conn,
                    key: call.header.key,
                    version: call.header.version,
                    client_id: call.header.client_id,
                    seq: call.header.seq,
                }];
                if call.header.version != FrameVersion::V1 && call.header.client_id != 0 {
                    let key = (call.header.client_id, call.header.seq);
                    routes.extend(inner.retry_cache.complete(key, Arc::clone(&bytes)));
                }
                for route in routes {
                    inner.enqueue_response(route, Arc::clone(&bytes));
                }
                // The call's own open_work slot transfers to the response
                // entries enqueued above; release it only now so `drain`
                // never sees a gap between "popped" and "response queued".
                inner.open_work.fetch_sub(1, Ordering::AcqRel);
                inner.admission.release(meta.tenant);
            }
            None => {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// One M:N worker's loop (`handler_runtime = mn`): fire due timers,
/// admit new calls from the admission queue (DRR pop order preserved —
/// each call is injected into the runtime's global FIFO), and run the
/// next task — own queue first, then the injector, then stealing. The
/// admission step precedes the run step so a yield-spinning task can
/// never starve new arrivals; the in-flight cap
/// (`cfg.max_inflight_calls`) pauses admission — backpressure into the
/// bounded queue, not rejection — while parked tasks pile up.
fn mn_worker_loop(inner: Arc<ServerInner>, worker: usize) {
    let sched = Arc::clone(inner.sched.as_ref().expect("mn mode"));
    let cap = inner.cfg.max_inflight_calls;
    loop {
        let now = inner.now_ns();
        sched.fire_timers(now);
        if cap == 0 || sched.inflight() < cap {
            let popped = inner.admission.try_pop(now);
            for (meta, call) in popped.shed {
                shed_call(&inner, meta, call);
            }
            if let Some((meta, call)) = popped.run {
                spawn_call_task(&inner, &sched, meta, call);
            }
        }
        if let Some(task) = sched.next_task(worker) {
            sched.run(worker, task, inner.now_ns());
            continue;
        }
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        // Nothing runnable and nothing admitted: sleep until the next
        // timer deadline (a parked `park_until` must not oversleep), a
        // notify (new call, external wake), or the idle slice.
        let timeout = match sched.next_timer_ns() {
            Some(at) => {
                Duration::from_nanos(at.saturating_sub(inner.now_ns()).max(1)).min(IDLE_SLICE)
            }
            None => IDLE_SLICE,
        };
        sched.idle_wait(timeout);
    }
}

/// Turn one admitted call into a lightweight task on the M:N runtime.
/// The task's frame *is* this closure's captures — the `RawCall`, the
/// service's stash, and the accumulated handler time — a few hundred
/// bytes on the heap, against the legacy pool's full OS thread per
/// in-flight call.
///
/// A completed poll mirrors [`handler_loop`]'s tail exactly: serialize
/// the version-neutral body once, fan out to the caller's route plus any
/// parked duplicates, transfer the open-work slot to the responses, and
/// release the tenant's admission quota.
fn spawn_call_task(inner: &Arc<ServerInner>, sched: &Sched, meta: CallMeta, call: RawCall) {
    let inner = Arc::clone(inner);
    let mut call = Some(call);
    let mut stash: Option<Box<dyn std::any::Any + Send>> = None;
    // Handler-phase time is the sum of this task's *running* slices;
    // parked time is charged to nobody — that is the point.
    let mut handler_ns: u64 = 0;
    sched.inject(move |cx| {
        let c = call.as_mut().expect("task polled after completion");
        let entry = inner.metrics.entry(c.header.key);
        if cx.polls() == 0 {
            entry.record_phase(
                Phase::ServerQueue,
                c.admitted_at.elapsed().as_nanos() as u64,
            );
        }
        let poll_start = Instant::now();
        let mut reader = c.payload.reader();
        reader.skip(c.body_offset);
        let mut hcx = HandlerCx::new(cx, &mut stash);
        let dispatched = inner.registry.dispatch_mn(
            c.header.protocol(),
            c.header.method(),
            &mut reader,
            &mut hcx,
        );
        let request = hcx.request();
        let result: RpcResult<Box<dyn Writable + Send>> = match dispatched {
            Ok(CallPoll::Pending) => {
                handler_ns += poll_start.elapsed().as_nanos() as u64;
                return match request {
                    ParkRequest::Yield => Step::Yield,
                    ParkRequest::Handle => Step::Park,
                    ParkRequest::Until(at_ns) => {
                        cx.park_until_ns(at_ns);
                        Step::Park
                    }
                };
            }
            Ok(CallPoll::Ready(Ok(value))) => Ok(value),
            Ok(CallPoll::Ready(Err(msg))) => Err(RpcError::Remote(msg)),
            Err(e) => Err(e),
        };
        let c = call.take().expect("taken once");
        let error_text;
        let result_ref: Result<&dyn Writable, &str> = match &result {
            Ok(value) => Ok(value.as_ref()),
            Err(e) => {
                error_text = match e {
                    RpcError::Remote(m) => m.clone(),
                    other => other.to_string(),
                };
                Err(&error_text)
            }
        };
        let mut body = Vec::new();
        write_response_body(&mut body, result_ref).expect("serializing to Vec cannot fail");
        let bytes = Arc::new(body);
        handler_ns += poll_start.elapsed().as_nanos() as u64;
        entry.record_phase(Phase::Handler, handler_ns);

        let mut routes = vec![RespRoute {
            conn_id: c.conn_id,
            conn: c.conn,
            key: c.header.key,
            version: c.header.version,
            client_id: c.header.client_id,
            seq: c.header.seq,
        }];
        if c.header.version != FrameVersion::V1 && c.header.client_id != 0 {
            let key = (c.header.client_id, c.header.seq);
            routes.extend(inner.retry_cache.complete(key, Arc::clone(&bytes)));
        }
        for route in routes {
            inner.enqueue_response(route, Arc::clone(&bytes));
        }
        // The call's open_work slot transfers to the responses above,
        // exactly as in the thread pool.
        inner.open_work.fetch_sub(1, Ordering::AcqRel);
        inner.admission.release(meta.tenant);
        Step::Done
    });
}

/// Answer a deadline-expired call with `STATUS_EXPIRED` without executing
/// it. The retry cache is *completed* (not aborted) with the expired body,
/// so any duplicate attempt — parked or future — replays the same verdict
/// instead of re-executing a call the client already gave up on.
fn shed_call(inner: &Arc<ServerInner>, meta: CallMeta, call: RawCall) {
    inner.metrics.inc_deadline_sheds_for(meta.tenant);
    let bytes = Arc::new(expired_body(call.header.version));
    let mut routes = vec![RespRoute {
        conn_id: call.conn_id,
        conn: call.conn,
        key: call.header.key,
        version: call.header.version,
        client_id: call.header.client_id,
        seq: call.header.seq,
    }];
    if call.header.version != FrameVersion::V1 && call.header.client_id != 0 {
        let key = (call.header.client_id, call.header.seq);
        routes.extend(inner.retry_cache.complete(key, Arc::clone(&bytes)));
    }
    for route in routes {
        inner.enqueue_response(route, Arc::clone(&bytes));
    }
    // The queue already returned the tenant's quota slot when it shed the
    // call; only the open_work slot transfers to the responses above.
    inner.open_work.fetch_sub(1, Ordering::AcqRel);
}

/// Most responses one responder sweep drains before sending. Bounds the
/// latency a response can pick up behind its batch; one sweep's worth of
/// frames per connection goes out as a single gathered wire operation.
const RESPONDER_SWEEP: usize = 64;

/// Responses one weight unit buys a tenant per responder sweep (QoS mode
/// only). A flooder past `weight × quantum` has its excess carried to the
/// next sweep so light tenants' responses are not queued behind it.
const RESPONDER_FAIR_QUANTUM: u32 = 8;

fn responder_loop(inner: Arc<ServerInner>, rx: Receiver<OutboundResponse>, stats: Arc<ShardStats>) {
    // Per-connection V3 response-lead encoders. They live here — all of a
    // connection's responses flow through its one responder shard in
    // enqueue order, which is exactly the wire order the client's decoder
    // replays. Socket connections are stateful (reliable stream); verbs
    // connections run the self-contained encoding.
    let mut encs: HashMap<u64, V3Encoder> = HashMap::new();
    let stateful = !inner.cfg.ib_enabled;
    let sweep = if inner.cfg.wire_batch {
        RESPONDER_SWEEP
    } else {
        1
    };
    let fair = inner.admission.fair();
    let mut batch: Vec<OutboundResponse> = Vec::new();
    // Responses deferred by the fair partition below, in pop order; the
    // next sweep leads with them so nothing is reordered within a tenant.
    let mut carry: Vec<OutboundResponse> = Vec::new();
    let mut sweep_used: HashMap<u64, u32> = HashMap::new();
    loop {
        if carry.is_empty() {
            match rx.recv_timeout(IDLE_SLICE) {
                Ok(out) => {
                    stats.dequeued();
                    batch.push(out);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if inner.stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        } else {
            std::mem::swap(&mut batch, &mut carry);
        }
        // Opportunistic drain: everything already queued behind the
        // blocking pop rides in this sweep (up to the cap).
        while batch.len() < sweep {
            match rx.try_recv() {
                Ok(more) => {
                    stats.dequeued();
                    batch.push(more);
                }
                Err(_) => break,
            }
        }
        // Weighted-fair partition (QoS mode only): each tenant sends up
        // to weight × quantum responses this sweep; the excess is carried
        // — still in order — so a flooder's burst cannot head-of-line
        // block light tenants' responses through the shared shard.
        let send = if fair {
            sweep_used.clear();
            let mut send = Vec::new();
            for out in batch.drain(..) {
                let tenant = out.route.client_id;
                let budget = inner
                    .admission
                    .weight(tenant)
                    .saturating_mul(RESPONDER_FAIR_QUANTUM);
                let used = sweep_used.entry(tenant).or_insert(0);
                if *used >= budget {
                    carry.push(out);
                } else {
                    *used += 1;
                    send.push(out);
                }
            }
            send
        } else {
            std::mem::take(&mut batch)
        };
        {
            // Group by connection, preserving pop order within and
            // across groups (pop order == enqueue order == the order
            // per-connection state was advanced in).
            let mut groups: Vec<(u64, Vec<OutboundResponse>)> = Vec::new();
            let mut index: HashMap<u64, usize> = HashMap::new();
            for out in send {
                match index.get(&out.route.conn_id) {
                    Some(&i) => groups[i].1.push(out),
                    None => {
                        index.insert(out.route.conn_id, groups.len());
                        groups.push((out.route.conn_id, vec![out]));
                    }
                }
            }
            for (conn_id, group) in groups {
                let conn = Arc::clone(&group[0].route.conn);
                // The response's buffer-size history is keyed
                // separately from the request's; one key per batch is
                // enough — the gathered frames share a wire op anyway.
                let resp_key = group[0].route.key.response_key();
                let n = group.len();
                let mut frames: Vec<Vec<u8>> = Vec::with_capacity(n);
                for out in &group {
                    let mut frame = Vec::with_capacity(out.bytes.len() + 16);
                    let lead = match out.route.version {
                        FrameVersion::V3 => encs
                            .entry(conn_id)
                            .or_insert_with(|| V3Encoder::new(stateful))
                            .write_response_lead(&mut frame, out.route.seq),
                        v => write_response_lead(&mut frame, v, out.route.seq),
                    };
                    if lead.is_err() {
                        // Unrepresentable lead (a V1 seq outside i32):
                        // drop this one response, keep the connection.
                        inner.metrics.inc_frame_errors();
                        continue;
                    }
                    frame.extend_from_slice(&out.bytes);
                    frames.push(frame);
                }
                // A failed send only affects that one connection — but
                // it does mean the connection is broken: close it so
                // its reader shard stops pulling requests whose
                // responses could never be delivered, and count it.
                let send_result = if frames.is_empty() {
                    Ok(())
                } else {
                    conn.send_frames(resp_key, frames)
                };
                if send_result.is_err() {
                    inner.metrics.inc_broken_sends();
                    conn.close();
                    encs.remove(&conn_id);
                }
                for _ in 0..n {
                    stats.inc_processed();
                    inner.open_work.fetch_sub(1, Ordering::AcqRel);
                }
            }
            // Bound the encoder map under connection churn: dead
            // connections never announce themselves to this shard, so
            // prune against the live table once the map gets large.
            if encs.len() >= 1024 {
                let live = inner.conns.lock();
                encs.retain(|id, _| live.contains_key(id));
            }
        }
    }
}
