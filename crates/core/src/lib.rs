//! # rpcoib — Hadoop-style RPC with an RDMA fast path
//!
//! This crate is the primary contribution of the reproduced paper:
//!
//! > Xiaoyi Lu et al., *High-Performance Design of Hadoop RPC with RDMA
//! > over InfiniBand*, ICPP 2013.
//!
//! It contains a faithful re-implementation of the 0.20.x-era Hadoop RPC
//! engine with **two interchangeable transports** selected by the
//! `rpc.ib.enabled` switch ([`RpcConfig::ib_enabled`]):
//!
//! * the **socket baseline** ([`transport::socket`]), bottlenecks intact:
//!   Algorithm-1 serialization buffers, the `BufferedOutputStream` copy,
//!   per-call receive allocations, and kernel-stack costs;
//! * **RPCoIB** ([`transport::rdma`]): native verbs, serialization
//!   directly into a pre-registered two-level buffer pool keyed by
//!   `<protocol, method>` size history ([`bufpool`]), send/recv for small
//!   messages, one-sided RDMA writes (+ credit flow control) for large
//!   ones.
//!
//! The engine keeps the shape of Hadoop's thread architecture — caller +
//! Connection thread on the client; Listener, Readers, Handlers,
//! Responders on the server — but shards the server's read and write
//! sides: reader *shards* each run an event loop over the connections
//! hashed onto them, and responder *shards* split transmissions by
//! connection (see [`server`] and `RpcConfig::{reader_shards,
//! responder_shards}`). Both transports expose the same
//! [`transport::Conn`] interface, mirroring the paper's
//! stream-interface-compatibility design.
//!
//! ```
//! use rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
//! use simnet::{model, Fabric};
//! use std::sync::Arc;
//! use wire::{DataInput, IntWritable, Writable};
//!
//! struct Adder;
//! impl RpcService for Adder {
//!     fn protocol(&self) -> &'static str { "demo.Adder" }
//!     fn call(&self, method: &str, param: &mut dyn DataInput)
//!         -> Result<Box<dyn Writable + Send>, String>
//!     {
//!         assert_eq!(method, "add");
//!         let mut a = IntWritable::default();
//!         let mut b = IntWritable::default();
//!         a.read_fields(param).map_err(|e| e.to_string())?;
//!         b.read_fields(param).map_err(|e| e.to_string())?;
//!         Ok(Box::new(IntWritable(a.0 + b.0)))
//!     }
//! }
//!
//! let fabric = Fabric::new(model::IB_QDR_VERBS);
//! let server_node = fabric.add_node();
//! let client_node = fabric.add_node();
//!
//! let mut registry = ServiceRegistry::new();
//! registry.register(Arc::new(Adder));
//! let server = Server::start(&fabric, server_node, 8020,
//!                            RpcConfig::rpcoib(), registry).unwrap();
//!
//! let client = Client::new(&fabric, client_node, RpcConfig::rpcoib()).unwrap();
//! let sum: IntWritable = client
//!     .call(server.addr(), "demo.Adder", "add", &(IntWritable(2), IntWritable(40)))
//!     .unwrap();
//! assert_eq!(sum.0, 42);
//! ```

pub mod admission;
pub mod client;
pub mod config;
pub mod error;
pub mod frame;
pub mod handshake;
pub mod hostcost;
pub mod intern;
pub mod metrics;
pub mod readiness;
pub mod retry;
pub mod retry_cache;
pub mod sched;
pub mod server;
pub mod service;
pub mod stream;
pub mod transport;

pub use admission::{AdmissionQueue, AdmitError, CallClass, CallMeta, Popped};
pub use client::{Client, RawResponse};
pub use config::{HandlerRuntime, RpcConfig};
pub use error::{RpcError, RpcResult};
pub use frame::{FrameVersion, Payload, ResponseStatus, V3Decoder, V3Encoder};
pub use intern::{MethodId, MethodKey};
pub use metrics::{
    CallProfile, EngineCounters, HistogramSnapshot, LatencyHistogram, MethodEntry, MethodStats,
    MetricsRegistry, MetricsSnapshot, Phase, PhaseHistograms, PhaseSnapshot, PoolCounters,
    RecvProfile, ShardRole, ShardSnapshot, TenantSnapshot,
};
pub use readiness::{ReadyQueue, WakeState};
pub use retry::RetryPolicy;
pub use retry_cache::{Admission, RetryCache};
pub use sched::{CallPoll, HandlerCx, RunOutcome, Sched, Step, WakeHandle};
pub use server::Server;
pub use service::{RpcService, ServiceRegistry};
pub use stream::{RdmaInputStream, RdmaOutputStream, RegionReader};
pub use transport::rdma::IbContext;
