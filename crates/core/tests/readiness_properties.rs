//! Equivalence property for the reader's readiness-queue event model:
//! under arbitrary interleavings of sends, EOFs, and (on verbs) injected
//! message drops, a consumer driven by [`ReadyQueue`]/[`WakeState`] wake
//! tokens must deliver exactly the frames — same sets, same per-connection
//! order — that the pre-event `poll_ready` sweep oracle delivers.
//!
//! The two runs build identical fabrics with the same fault seed and
//! apply the same schedule, so verbs drop coins replay identically (the
//! fault window only spans client-side sequential sends, and wake-hook
//! fires are charge-free and draw nothing). Divergence therefore means a
//! readiness bug: a lost wakeup (event consumer starves and the pop
//! times out), a spurious one (a token for a conn that is not ready), or
//! a non-sticky EOF.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rpcoib::intern::method_key;
use rpcoib::readiness::{token, token_slot, Pop, ReadyQueue, WakeState};
use rpcoib::transport::rdma::RdmaConn;
use rpcoib::transport::socket::SocketConn;
use rpcoib::transport::Conn;
use rpcoib::{IbContext, RpcConfig, RpcError};
use simnet::{model, Fabric, FaultSpec, SimAddr, SimListener, SimStream};

/// Frames a ready conn serves per wake before the level-trigger re-arm —
/// deliberately small so partial reads (the re-arm path) happen often.
const BURST: usize = 3;

/// Last frame on every conn that stays open; consumers run until each
/// conn has produced its sentinel or a (sticky) EOF.
const SENTINEL: &[u8] = &[0xEE];

/// One step of a schedule. `conn` indexes are taken modulo the case's
/// connection count, so any generated index is well-formed.
#[derive(Debug, Clone)]
enum Op {
    Send { conn: usize, len: usize },
    Eof { conn: usize },
}

/// Decode raw `(conn, kind, len)` tuples (the shapes the proptest shim
/// can generate) into ops: kind 0 — one draw in five — is an EOF.
fn to_ops(raw: &[(usize, usize, usize)]) -> Vec<Op> {
    raw.iter()
        .map(|&(conn, kind, len)| {
            if kind == 0 {
                Op::Eof { conn }
            } else {
                Op::Send { conn, len }
            }
        })
        .collect()
}

/// Abort (not hang) if a run wedges — a lost wakeup in the event
/// consumer would otherwise stall the whole property suite.
struct Watchdog {
    done: Arc<AtomicBool>,
}

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: {name} exceeded {limit:?}, aborting");
        std::process::abort();
    });
    Watchdog { done }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

struct Harness {
    fabric: Fabric,
    server_node: simnet::NodeId,
    client_node: simnet::NodeId,
    cli: Vec<Option<Arc<dyn Conn>>>,
    srv: Vec<Arc<dyn Conn>>,
}

/// `n_conns` raw conn pairs on a fresh seeded fabric — the same
/// transport bring-up the engine's accept path performs, minus the
/// engine, so the consumers under test own the read side outright.
fn harness(rdma: bool, n_conns: usize, seed: u64) -> Harness {
    let (net, cfg) = if rdma {
        (model::IB_QDR_VERBS, RpcConfig::rpcoib())
    } else {
        (model::IPOIB_QDR, RpcConfig::socket())
    };
    let fabric = Fabric::new(net);
    fabric.set_fault_seed(seed);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let addr = SimAddr::new(server_node, 9800);
    let listener = SimListener::bind(&fabric, addr).unwrap();
    let mut cli: Vec<Option<Arc<dyn Conn>>> = Vec::new();
    let mut srv: Vec<Arc<dyn Conn>> = Vec::new();
    let ctxs = rdma.then(|| {
        (
            IbContext::new(&fabric, client_node, &cfg).unwrap(),
            IbContext::new(&fabric, server_node, &cfg).unwrap(),
        )
    });
    for _ in 0..n_conns {
        let f2 = fabric.clone();
        let connect =
            std::thread::spawn(move || SimStream::connect(&f2, client_node, addr).unwrap());
        let (srv_stream, _) = listener.accept().unwrap();
        let cli_stream = connect.join().unwrap();
        if let Some((cli_ctx, srv_ctx)) = &ctxs {
            let rpc = cfg.clone();
            let cli_ctx = cli_ctx.clone();
            let h = std::thread::spawn(move || {
                RdmaConn::bootstrap(&cli_stream, &cli_ctx, &rpc).unwrap()
            });
            srv.push(Arc::new(
                RdmaConn::bootstrap(&srv_stream, srv_ctx, &cfg).unwrap(),
            ));
            cli.push(Some(Arc::new(h.join().unwrap())));
        } else {
            cli.push(Some(Arc::new(
                SocketConn::new(cli_stream, 4096).with_batch(cfg.wire_batch),
            )));
            srv.push(Arc::new(
                SocketConn::new(srv_stream, 4096).with_batch(cfg.wire_batch),
            ));
        }
    }
    Harness {
        fabric,
        server_node,
        client_node,
        cli,
        srv,
    }
}

/// Serve up to `burst` frames from one ready conn. Shared verbatim by
/// both consumers so any delivery difference comes from *when* a conn is
/// visited, never from how it is read.
fn drain_conn(
    conn: &Arc<dyn Conn>,
    delivered: &mut Vec<Vec<u8>>,
    done: &mut bool,
    burst: usize,
) -> bool {
    let mut progress = false;
    for _ in 0..burst {
        if *done || !conn.poll_ready() {
            break;
        }
        match conn.recv_msg(Duration::from_millis(200)) {
            Ok((payload, _)) => {
                let mut bytes = Vec::with_capacity(payload.len());
                std::io::Read::read_to_end(&mut payload.reader(), &mut bytes).unwrap();
                progress = true;
                if bytes == SENTINEL {
                    *done = true;
                } else {
                    delivered.push(bytes);
                }
            }
            Err(RpcError::ConnectionClosed) => {
                assert!(conn.poll_ready(), "EOF readiness must be sticky");
                *done = true;
                progress = true;
            }
            // A ready verbs completion can be credit-only; bounded
            // timeout is the shard's answer there too.
            Err(RpcError::Timeout) => break,
            Err(e) => panic!("unexpected recv error: {e:?}"),
        }
    }
    progress
}

/// Apply `ops` (with an optional verbs drop-fault window over
/// `ops[fault.0..fault.1]`) and consume every conn to its sentinel/EOF,
/// via the event model (`event = true`) or the sweep oracle. Returns the
/// delivered frames per conn.
fn run(
    rdma: bool,
    n_conns: usize,
    ops: &[Op],
    fault: Option<(usize, usize)>,
    seed: u64,
    event: bool,
) -> Vec<Vec<Vec<u8>>> {
    simnet::set_fast_forward(true);
    let mut h = harness(rdma, n_conns, seed);
    let key = method_key("prop.Readiness", "frame");
    let mut delivered: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n_conns];
    let mut done = vec![false; n_conns];
    let mut eof = vec![false; n_conns];
    let mut seq = vec![0u16; n_conns];

    // Event plumbing: hooks registered before any traffic, exactly like
    // the server registering a conn before its first frame can arrive.
    let queue = Arc::new(ReadyQueue::new(None));
    let wakes: Vec<Arc<WakeState>> = (0..n_conns)
        .map(|i| Arc::new(WakeState::new(token(i, 0), Arc::clone(&queue))))
        .collect();
    if event {
        for (i, conn) in h.srv.iter().enumerate() {
            let ws = Arc::clone(&wakes[i]);
            conn.set_ready_hook(Arc::new(move || ws.wake()));
            if conn.poll_ready() {
                wakes[i].wake();
            }
        }
    }

    // Bounded consumer step used mid-schedule, so consumption genuinely
    // interleaves with production instead of trailing it.
    let step = |delivered: &mut Vec<Vec<Vec<u8>>>, done: &mut Vec<bool>| {
        if event {
            for _ in 0..2 {
                let Some(tok) = queue.try_pop() else { break };
                let i = token_slot(tok);
                wakes[i].begin_poll();
                if done[i] {
                    continue;
                }
                assert!(
                    h.srv[i].poll_ready(),
                    "spurious wakeup: token for conn {i} that is not ready"
                );
                drain_conn(&h.srv[i], &mut delivered[i], &mut done[i], BURST);
                if !done[i] && h.srv[i].poll_ready() {
                    wakes[i].wake();
                }
            }
        } else {
            for i in 0..n_conns {
                if !done[i] && h.srv[i].poll_ready() {
                    drain_conn(&h.srv[i], &mut delivered[i], &mut done[i], BURST);
                }
            }
        }
    };

    for (at, op) in ops.iter().enumerate() {
        if let Some((start, end)) = fault {
            if at == start {
                h.fabric.set_link_fault(
                    h.server_node,
                    h.client_node,
                    FaultSpec::default().with_drop_rate(0.25),
                );
            }
            if at == end {
                h.fabric
                    .set_link_fault(h.server_node, h.client_node, FaultSpec::default());
            }
        }
        match *op {
            Op::Send { conn, len } => {
                let i = conn % n_conns;
                if eof[i] {
                    continue;
                }
                let mut frame = vec![0x11u8; len.max(4)];
                frame[0] = 0xAB;
                frame[1] = i as u8;
                frame[2] = seq[i] as u8;
                frame[3] = (seq[i] >> 8) as u8;
                seq[i] += 1;
                h.cli[i]
                    .as_ref()
                    .unwrap()
                    .send_msg(key, &mut |out| out.write_bytes(&frame))
                    .unwrap();
            }
            Op::Eof { conn } => {
                let i = conn % n_conns;
                if eof[i] {
                    continue;
                }
                eof[i] = true;
                h.cli[i] = None; // drop the client end
                if rdma {
                    // Verbs has no in-band EOF; the engine tears the conn
                    // down out-of-band. Drain what already landed (so the
                    // delivered set is consumer-independent — close()
                    // discards any pending stash), then model the
                    // teardown with a local close: itself a readiness
                    // edge the hook must fire.
                    while !done[i] && h.srv[i].poll_ready() {
                        if !drain_conn(&h.srv[i], &mut delivered[i], &mut done[i], BURST) {
                            break;
                        }
                    }
                    h.srv[i].close();
                }
            }
        }
        if at % 3 == 2 {
            step(&mut delivered, &mut done);
        }
    }
    // Close the fault window if the schedule ended inside it, then mark
    // end-of-stream on every conn still open.
    h.fabric
        .set_link_fault(h.server_node, h.client_node, FaultSpec::default());
    for (i, closed) in eof.iter().enumerate() {
        if !closed {
            h.cli[i]
                .as_ref()
                .unwrap()
                .send_msg(key, &mut |out| out.write_bytes(SENTINEL))
                .unwrap();
        }
    }

    // Run each conn to completion. The event consumer *blocks* on the
    // ready queue: a pop timeout with work outstanding is a lost wakeup.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done.iter().all(|&d| d) {
        assert!(Instant::now() < deadline, "consumer wedged");
        if event {
            match queue.pop(Duration::from_secs(5)) {
                Pop::Token(tok) => {
                    let i = token_slot(tok);
                    wakes[i].begin_poll();
                    if done[i] {
                        continue;
                    }
                    assert!(
                        h.srv[i].poll_ready(),
                        "spurious wakeup: token for conn {i} that is not ready"
                    );
                    drain_conn(&h.srv[i], &mut delivered[i], &mut done[i], BURST);
                    if !done[i] && h.srv[i].poll_ready() {
                        wakes[i].wake();
                    }
                }
                Pop::TimedOut => panic!(
                    "lost wakeup: ready queue idle 5s with conns {:?} unfinished",
                    done.iter()
                        .enumerate()
                        .filter(|(_, d)| !**d)
                        .map(|(i, _)| i)
                        .collect::<Vec<_>>()
                ),
                Pop::Closed => panic!("queue closed unexpectedly"),
            }
        } else {
            let mut progress = false;
            for i in 0..n_conns {
                if !done[i] && h.srv[i].poll_ready() {
                    progress |= drain_conn(&h.srv[i], &mut delivered[i], &mut done[i], BURST);
                }
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Socket: event consumer ≡ sweep oracle under random send/EOF
    /// interleavings (EOF propagates in-band on streams).
    #[test]
    fn socket_event_matches_sweep(
        n_conns in 1usize..5,
        raw in proptest::collection::vec((0usize..6, 0usize..5, 4usize..256), 1..24),
        seed in any::<u64>(),
    ) {
        let _wd = watchdog("socket_event_matches_sweep", Duration::from_secs(120));
        let ops = to_ops(&raw);
        let by_event = run(false, n_conns, &ops, None, seed, true);
        let by_sweep = run(false, n_conns, &ops, None, seed, false);
        prop_assert_eq!(by_event, by_sweep);
    }

    /// Verbs: same property with a drop-fault window over part of the
    /// schedule. Drop coins replay per seed (the window covers only
    /// sequential client sends), so both consumers must lose the *same*
    /// frames — and a dropped message correctly wakes nobody.
    #[test]
    fn verbs_event_matches_sweep(
        n_conns in 1usize..5,
        raw in proptest::collection::vec((0usize..6, 0usize..5, 4usize..256), 4..24),
        window in (0usize..12, 1usize..12),
        seed in any::<u64>(),
    ) {
        let _wd = watchdog("verbs_event_matches_sweep", Duration::from_secs(120));
        let ops = to_ops(&raw);
        let fault = Some((window.0, window.0 + window.1));
        let by_event = run(true, n_conns, &ops, fault, seed, true);
        let by_sweep = run(true, n_conns, &ops, fault, seed, false);
        prop_assert_eq!(by_event, by_sweep);
    }
}
