//! End-to-end engine tests: client + server over every fabric model.

use std::sync::Arc;
use std::time::Duration;

use rpcoib::{Client, RpcConfig, RpcError, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric, NodeId};
use wire::{BytesWritable, DataInput, NullWritable, Text, Writable};

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "test.EchoProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "pingpong" => {
                let mut payload = BytesWritable::default();
                payload.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            "upper" => {
                let mut text = Text::default();
                text.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(Text(text.0.to_uppercase())))
            }
            "fail" => Err("requested failure".into()),
            other => Err(format!("no such method {other}")),
        }
    }
}

fn setup(model: simnet::NetworkModel, cfg: RpcConfig) -> (Fabric, Server, Client, NodeId) {
    let fabric = Fabric::new(model);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, client_node, cfg).unwrap();
    (fabric, server, client, client_node)
}

fn echo_roundtrip(cfg: RpcConfig, model: simnet::NetworkModel) {
    let (_fabric, server, client, _) = setup(model, cfg);
    for size in [1usize, 100, 4096, 100_000] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let resp: BytesWritable = client
            .call(
                server.addr(),
                "test.EchoProtocol",
                "pingpong",
                &BytesWritable(payload.clone()),
            )
            .unwrap();
        assert_eq!(resp.0, payload, "size {size}");
    }
    client.shutdown();
    server.stop();
}

#[test]
fn echo_over_1gige() {
    echo_roundtrip(RpcConfig::socket(), model::GIG_E);
}

#[test]
fn echo_over_10gige() {
    echo_roundtrip(RpcConfig::socket(), model::TEN_GIG_E);
}

#[test]
fn echo_over_ipoib() {
    echo_roundtrip(RpcConfig::socket(), model::IPOIB_QDR);
}

#[test]
fn echo_over_rpcoib() {
    echo_roundtrip(RpcConfig::rpcoib(), model::IB_QDR_VERBS);
}

#[test]
fn rpcoib_refuses_non_rdma_fabric() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let node = fabric.add_node();
    let err = Client::new(&fabric, node, RpcConfig::rpcoib())
        .err()
        .unwrap();
    assert!(matches!(err, RpcError::Config(_)));
}

#[test]
fn remote_errors_propagate() {
    let (_fabric, server, client, _) = setup(model::IB_QDR_VERBS, RpcConfig::rpcoib());
    let err = client
        .call::<NullWritable, NullWritable>(
            server.addr(),
            "test.EchoProtocol",
            "fail",
            &NullWritable,
        )
        .err()
        .unwrap();
    assert_eq!(err, RpcError::Remote("requested failure".into()));
    // The connection survives an application error.
    let resp: Text = client
        .call(
            server.addr(),
            "test.EchoProtocol",
            "upper",
            &Text::from("still alive"),
        )
        .unwrap();
    assert_eq!(resp.0, "STILL ALIVE");
}

#[test]
fn unknown_protocol_is_remote_error() {
    let (_fabric, server, client, _) = setup(model::IPOIB_QDR, RpcConfig::socket());
    let err = client
        .call::<NullWritable, NullWritable>(server.addr(), "no.SuchProtocol", "x", &NullWritable)
        .err()
        .unwrap();
    assert!(
        matches!(err, RpcError::Remote(ref m) if m.contains("unknown protocol")),
        "{err:?}"
    );
}

#[test]
fn concurrent_callers_share_one_connection() {
    let (_fabric, server, client, _) = setup(model::IB_QDR_VERBS, RpcConfig::rpcoib());
    let addr = server.addr();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                for i in 0..25 {
                    let text = format!("caller-{t}-msg-{i}");
                    let resp: Text = client
                        .call(addr, "test.EchoProtocol", "upper", &Text(text.clone()))
                        .unwrap();
                    assert_eq!(resp.0, text.to_uppercase());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn many_clients_one_server() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, server_node, 8020, RpcConfig::rpcoib(), registry).unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..6)
        .map(|c| {
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                let node = fabric.add_node();
                let client = Client::new(&fabric, node, RpcConfig::rpcoib()).unwrap();
                for i in 0..20 {
                    let payload = vec![c as u8; 64 + i];
                    let resp: BytesWritable = client
                        .call(
                            addr,
                            "test.EchoProtocol",
                            "pingpong",
                            &BytesWritable(payload.clone()),
                        )
                        .unwrap();
                    assert_eq!(resp.0, payload);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn stopped_server_fails_calls() {
    let (_fabric, server, client, _) = setup(model::IPOIB_QDR, RpcConfig::socket());
    let addr = server.addr();
    let resp: Text = client
        .call(addr, "test.EchoProtocol", "upper", &Text::from("x"))
        .unwrap();
    assert_eq!(resp.0, "X");
    server.stop();
    let err = client
        .call::<Text, Text>(addr, "test.EchoProtocol", "upper", &Text::from("y"))
        .err()
        .unwrap();
    assert!(
        matches!(
            err,
            RpcError::ConnectionClosed | RpcError::Io(_) | RpcError::Timeout
        ),
        "{err:?}"
    );
}

#[test]
fn client_reconnects_to_restarted_server() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let mk_registry = || {
        let mut r = ServiceRegistry::new();
        r.register(Arc::new(EchoService));
        r
    };
    let server = Server::start(
        &fabric,
        server_node,
        8020,
        RpcConfig::socket(),
        mk_registry(),
    )
    .unwrap();
    let addr = server.addr();
    let client = Client::new(&fabric, client_node, RpcConfig::socket()).unwrap();
    let _: Text = client
        .call(addr, "test.EchoProtocol", "upper", &Text::from("a"))
        .unwrap();
    server.stop();
    drop(server);
    let _server2 = Server::start(
        &fabric,
        server_node,
        8020,
        RpcConfig::socket(),
        mk_registry(),
    )
    .unwrap();
    // One call may fail while the stale connection is discovered; the
    // built-in retry should hide it.
    let resp: Text = client
        .call(addr, "test.EchoProtocol", "upper", &Text::from("b"))
        .unwrap();
    assert_eq!(resp.0, "B");
}

#[test]
fn call_timeout_fires_when_server_node_hangs() {
    // Warm-up goes through a client with the default (generous) timeout so
    // a descheduled test thread can never flake the successful calls; the
    // dead-node claims are then checked against simnet's modeled-time
    // ledger, which is schedule-independent.
    let (fabric, server, client, client_node) = setup(model::IPOIB_QDR, RpcConfig::socket());
    let addr = server.addr();
    let _: Text = client
        .call(addr, "test.EchoProtocol", "upper", &Text::from("warm"))
        .unwrap();
    let warm_ns = fabric.modeled_ns(client_node);
    assert!(warm_ns > 0, "a successful call must charge modeled time");

    // A second client carries the tight timeout; only its doomed call is
    // governed by it.
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(300),
        ..RpcConfig::socket()
    };
    let probe = Client::new(&fabric, client_node, cfg).unwrap();
    let _: Text = probe
        .call(addr, "test.EchoProtocol", "upper", &Text::from("warm"))
        .unwrap();

    // Kill the server node abruptly: requests go nowhere.
    let before_ns = fabric.modeled_ns(client_node);
    fabric.kill_node(addr.node);
    let err = probe
        .call::<Text, Text>(addr, "test.EchoProtocol", "upper", &Text::from("x"))
        .err()
        .unwrap();
    assert!(
        matches!(
            err,
            RpcError::Timeout | RpcError::ConnectionClosed | RpcError::Io(_)
        ),
        "{err:?}"
    );
    // A dead node delivers no bytes: the failed attempt (retries included)
    // must charge far less modeled time than the whole warm-up sequence —
    // the failure came from the fabric, not from slow wall-clock luck.
    let failed_ns = fabric.modeled_ns(client_node) - before_ns;
    assert!(
        failed_ns < warm_ns,
        "failed call charged {failed_ns}ns modeled, warm-up charged {warm_ns}ns"
    );
    probe.shutdown();
    client.shutdown();
}

#[test]
fn rpcoib_metrics_show_no_adjustments_after_warmup() {
    let (_fabric, server, client, _) = setup(model::IB_QDR_VERBS, RpcConfig::rpcoib());
    let addr = server.addr();
    for _ in 0..5 {
        let _: BytesWritable = client
            .call(
                addr,
                "test.EchoProtocol",
                "pingpong",
                &BytesWritable(vec![0u8; 700]),
            )
            .unwrap();
    }
    let stats = client
        .metrics()
        .get("test.EchoProtocol", "pingpong")
        .unwrap();
    assert_eq!(stats.calls, 5);
    // Only the first call may grow; history serves the rest.
    assert!(
        stats.adjustments <= 3,
        "adjustments = {}",
        stats.adjustments
    );

    // The socket baseline on the same payload always adjusts (32B start).
    let (_f2, server2, client2, _) = setup(model::IPOIB_QDR, RpcConfig::socket());
    for _ in 0..5 {
        let _: BytesWritable = client2
            .call(
                server2.addr(),
                "test.EchoProtocol",
                "pingpong",
                &BytesWritable(vec![0u8; 700]),
            )
            .unwrap();
    }
    let stats2 = client2
        .metrics()
        .get("test.EchoProtocol", "pingpong")
        .unwrap();
    assert!(
        stats2.avg_adjustments() >= 1.0,
        "baseline must adjust every call, got {}",
        stats2.avg_adjustments()
    );
}

#[test]
fn rpcoib_latency_beats_socket_baseline() {
    // The headline claim, in miniature: median ping-pong latency of
    // RPCoIB must be well below default RPC over IPoIB. Measured on
    // simnet's modeled-time ledger (per-call `Fabric::modeled_ns` deltas
    // on the client's link), not wall-clock, so a CPU-starved test runner
    // cannot perturb the comparison.
    fn median_latency_ns(cfg: RpcConfig, model: simnet::NetworkModel) -> u64 {
        let (fabric, server, client, client_node) = setup(model, cfg);
        let addr = server.addr();
        let payload = BytesWritable(vec![7u8; 512]);
        // Warmup.
        for _ in 0..10 {
            let _: BytesWritable = client
                .call(addr, "test.EchoProtocol", "pingpong", &payload)
                .unwrap();
        }
        let mut samples: Vec<u64> = (0..50)
            .map(|_| {
                let before = fabric.modeled_ns(client_node);
                let _: BytesWritable = client
                    .call(addr, "test.EchoProtocol", "pingpong", &payload)
                    .unwrap();
                fabric.modeled_ns(client_node) - before
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        client.shutdown();
        server.stop();
        median
    }
    let ipoib = median_latency_ns(RpcConfig::socket(), model::IPOIB_QDR);
    let rpcoib = median_latency_ns(RpcConfig::rpcoib(), model::IB_QDR_VERBS);
    assert!(
        rpcoib < ipoib,
        "RPCoIB ({rpcoib}ns) must beat socket RPC over IPoIB ({ipoib}ns)"
    );
}
