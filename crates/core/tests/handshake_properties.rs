//! Property tests for the connect-time magic sniff: whatever bytes a
//! peer opens with, `server_accept` must classify them exactly — modern
//! handshake (with the version negotiated down to our maximum), legacy
//! (pre-handshake) peer, unsupported version, or a vanished peer —
//! without ever panicking, and a legacy peer's sniffed bytes must be
//! replayed onto the stream byte-for-byte so the old framing path sees
//! the connection exactly as the previous release did.

use std::io::Write;
use std::thread;

use proptest::prelude::*;
use rpcoib::handshake::{server_accept, ServerHello, MAGIC, MAX_VERSION, MIN_VERSION};
use rpcoib::RpcError;
use simnet::{model, Fabric, SimAddr, SimListener, SimStream};

fn stream_pair() -> (SimStream, SimStream) {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server = fabric.add_node();
    let client = fabric.add_node();
    let addr = SimAddr::new(server, 9100);
    let listener = SimListener::bind(&fabric, addr).unwrap();
    let f2 = fabric.clone();
    let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
    let (srv, _) = listener.accept().unwrap();
    (h.join().unwrap(), srv)
}

const ASSIGNED: u64 = 0xA551;

/// The specification of the sniff, written independently of the
/// implementation: what `server_accept` must return for a peer whose
/// entire output is `data` followed by EOF.
enum Expect {
    /// Peer vanished mid-handshake (too few bytes).
    Io,
    /// First four bytes are not the magic: pre-handshake peer.
    Legacy,
    /// Magic with a pre-V2 version byte.
    BadVersion,
    /// Well-formed hello; the connection speaks this negotiated version
    /// under this id.
    Modern(u8, u64),
}

fn oracle(data: &[u8]) -> Expect {
    if data.len() < 4 {
        return Expect::Io;
    }
    if u32::from_be_bytes(data[..4].try_into().unwrap()) != MAGIC {
        return Expect::Legacy;
    }
    if data.len() < 13 {
        return Expect::Io;
    }
    if data[4] < MIN_VERSION {
        return Expect::BadVersion;
    }
    let presented = u64::from_be_bytes(data[5..13].try_into().unwrap());
    Expect::Modern(
        data[4].min(MAX_VERSION),
        if presented == 0 { ASSIGNED } else { presented },
    )
}

/// Run `server_accept` against a peer that writes `data` and then shuts
/// down its write half, and check the outcome against the oracle. For
/// legacy peers, also drain the stream and prove the sniffed bytes were
/// replayed in order, in front of everything else the peer sent.
fn check(data: &[u8]) {
    let (cli, srv) = stream_pair();
    (&cli).write_all(data).unwrap();
    cli.shutdown_write();

    let out = server_accept(&srv, || ASSIGNED);
    match oracle(data) {
        Expect::Io => prop_assert!(
            matches!(out, Err(RpcError::Io(_))),
            "{} bytes must read as a vanished peer, got {out:?}",
            data.len()
        ),
        Expect::BadVersion => prop_assert!(
            matches!(out, Err(RpcError::Protocol(_))),
            "version {} must be rejected, got {out:?}",
            data[4]
        ),
        Expect::Modern(version, id) => {
            prop_assert_eq!(
                out.unwrap(),
                ServerHello::Modern {
                    version,
                    client_id: id
                },
                "hello bytes {:?}",
                data
            );
            // The ack must confirm the negotiated version and identity.
            let mut ack = [0u8; 9];
            cli.read_exact_at(&mut ack).unwrap();
            prop_assert_eq!(ack[0], version);
            prop_assert_eq!(u64::from_be_bytes(ack[1..9].try_into().unwrap()), id);
        }
        Expect::Legacy => {
            prop_assert_eq!(out.unwrap(), ServerHello::Legacy, "lead {:?}", &data[..4]);
            // Every byte the peer wrote — sniffed lead included — must
            // still be readable, in order, as if never touched.
            let mut replay = vec![0u8; data.len()];
            srv.read_exact_at(&mut replay).unwrap();
            prop_assert_eq!(&replay[..], data);
            let mut one = [0u8; 1];
            prop_assert!(
                srv.read_exact_at(&mut one).is_err(),
                "stream must be at EOF"
            );
        }
    }
}

proptest! {
    /// Arbitrary opening bytes: overwhelmingly legacy or vanished peers.
    #[test]
    fn arbitrary_prefix_never_panics(data in proptest::collection::vec(any::<u8>(), 0..40)) {
        check(&data);
    }

    /// Magic-led opening bytes: exercises truncated hellos, bad
    /// versions, zero ids (assignment), and complete handshakes.
    #[test]
    fn magic_prefix_classifies_exactly(tail in proptest::collection::vec(any::<u8>(), 0..20)) {
        let mut data = MAGIC.to_be_bytes().to_vec();
        data.extend_from_slice(&tail);
        check(&data);
    }

    /// Well-formed 13-byte hellos over the full version × id space.
    #[test]
    fn full_hello_roundtrip(version in any::<u8>(), id in any::<u64>()) {
        let mut data = MAGIC.to_be_bytes().to_vec();
        data.push(version);
        data.extend_from_slice(&id.to_be_bytes());
        check(&data);
    }
}
