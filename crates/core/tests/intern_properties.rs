//! Property tests for the method-key interner: ids must be stable (the
//! same `<protocol, method>` pair always resolves to the same id and the
//! same pointer), distinct pairs must never collide, and a key threaded
//! through frame encode → decode — V2 and V1 alike — must come back as
//! the *identical* interned key with its strings intact.

use proptest::prelude::*;
use rpcoib::frame::{read_request_header, write_request, write_request_v1, FrameVersion};
use rpcoib::intern;
use wire::{DataOutputBuffer, IntWritable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning is idempotent and pointer-stable: every re-resolution of
    /// a pair yields the same id, the same `Arc` pointers, and a key that
    /// `lookup` and `by_id` both find again.
    #[test]
    fn interned_ids_are_stable(protocol in "\\PC*", method in "\\PC*") {
        let first = intern::method_key(&protocol, &method);
        let again = intern::method_key(&protocol, &method);
        prop_assert_eq!(first, again);
        prop_assert_eq!(first.id(), again.id());
        prop_assert_eq!(first.protocol(), protocol.as_str());
        prop_assert_eq!(first.method(), method.as_str());
        prop_assert_eq!(intern::lookup(&protocol, &method), Some(first));
        prop_assert_eq!(intern::by_id(first.id()), Some(first));
        // The derived response key is itself stable and distinct.
        let resp = first.response_key();
        prop_assert_eq!(resp, first.response_key());
        prop_assert_ne!(resp.id(), first.id());
    }

    /// Two pairs intern to the same id only when they are the same pair.
    #[test]
    fn distinct_pairs_get_distinct_ids(
        p1 in "\\PC*", m1 in "\\PC*",
        p2 in "\\PC*", m2 in "\\PC*",
    ) {
        let k1 = intern::method_key(&p1, &m1);
        let k2 = intern::method_key(&p2, &m2);
        prop_assert_eq!(k1.id() == k2.id(), p1 == p2 && m1 == m2);
        prop_assert_eq!(k1 == k2, p1 == p2 && m1 == m2);
    }

    /// V2 frame round-trip: the decoded header carries the identical
    /// interned key (not merely an equal string pair) and every scalar
    /// field survives.
    #[test]
    fn v2_frames_roundtrip_interned_keys(
        protocol in "\\PC*",
        method in "\\PC*",
        client_id in any::<u64>(),
        seq in any::<i64>(),
        retry_attempt in 0u32..1024,
        value in any::<i32>(),
    ) {
        let mut buf = DataOutputBuffer::with_capacity(64);
        write_request(
            &mut buf,
            client_id,
            seq,
            retry_attempt,
            &protocol,
            &method,
            &IntWritable(value),
        )
        .unwrap();
        let mut input: &[u8] = buf.data();
        let header = read_request_header(&mut input).unwrap();
        prop_assert_eq!(header.version, FrameVersion::V2);
        prop_assert_eq!(header.client_id, client_id);
        prop_assert_eq!(header.seq, seq);
        prop_assert_eq!(header.retry_attempt, retry_attempt);
        prop_assert_eq!(header.key, intern::method_key(&protocol, &method));
        prop_assert_eq!(header.protocol(), protocol.as_str());
        prop_assert_eq!(header.method(), method.as_str());
    }

    /// V1 (legacy) frames resolve to the same interned key a V2 frame
    /// for the pair does: the wire compatibility path shares the table.
    #[test]
    fn v1_frames_resolve_to_the_same_keys(
        protocol in "\\PC*",
        method in "\\PC*",
        call_id in any::<i32>(),
        value in any::<i32>(),
    ) {
        // V1 call ids are non-negative in practice; a negative lead is
        // how V2's sentinel is recognized, so clamp into the V1 space.
        let call_id = call_id & i32::MAX;
        let mut buf = DataOutputBuffer::with_capacity(64);
        write_request_v1(&mut buf, call_id, &protocol, &method, &IntWritable(value)).unwrap();
        let mut input: &[u8] = buf.data();
        let header = read_request_header(&mut input).unwrap();
        prop_assert_eq!(header.version, FrameVersion::V1);
        prop_assert_eq!(header.seq, i64::from(call_id));
        prop_assert_eq!(header.key, intern::method_key(&protocol, &method));
    }
}

/// Names past the decoder's 192-byte stack window take the heap-spill
/// path; the key must still intern identically.
#[test]
fn oversized_names_spill_and_still_intern() {
    let protocol = "p".repeat(4000);
    let method = "m".repeat(500);
    let mut buf = DataOutputBuffer::with_capacity(64);
    write_request(&mut buf, 7, 1, 0, &protocol, &method, &IntWritable(9)).unwrap();
    let mut input: &[u8] = buf.data();
    let header = read_request_header(&mut input).unwrap();
    assert_eq!(header.key, intern::method_key(&protocol, &method));
    assert_eq!(header.protocol(), protocol);
}
