//! Multi-tenant QoS tests: tenant quotas feeding the busy-rejection
//! path, deadline propagation and server-side shedding, the retry-cache
//! interaction with shed calls (a duplicate of a shed call replays
//! `STATUS_EXPIRED`, never executes), deadline-aware busy backoff, and a
//! seeded misbehaving-tenant soak.
//!
//! Like the resilience suite, transport-agnostic tests pick their fabric
//! from `RPC_TRANSPORT`; the soak additionally honors `RPC_QOS=on|off`
//! (CI crosses both) — isolation assertions only apply when QoS is on,
//! liveness and at-most-once must hold either way.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rpcoib::admission::{AdmissionQueue, AdmitError, CallMeta};
use rpcoib::frame::{STATUS_EXPIRED, STATUS_OK};
use rpcoib::{
    Admission, Client, MetricsRegistry, RetryCache, RetryPolicy, RpcConfig, RpcError, RpcService,
    Server, ServiceRegistry,
};
use simnet::{model, Fabric, NodeId};
use wire::{DataInput, LongWritable, Writable};

/// Fabric + config for the transport selected by `RPC_TRANSPORT`
/// (mirrors the resilience suite so CI reuses its matrix legs).
fn env_transport() -> (Fabric, RpcConfig) {
    if std::env::var("RPC_TRANSPORT").as_deref() == Ok("verbs") {
        (Fabric::new(model::IB_QDR_VERBS), RpcConfig::rpcoib())
    } else {
        (Fabric::new(model::IPOIB_QDR), RpcConfig::socket())
    }
}

/// True unless `RPC_QOS=off`: the soak runs its isolation assertions
/// only when the QoS knobs are actually engaged.
fn env_qos_on() -> bool {
    std::env::var("RPC_QOS").as_deref() != Ok("off")
}

/// Aborts the process if the guard outlives `limit` — a stuck queue
/// fails fast instead of hanging the suite.
struct Watchdog {
    done: Arc<AtomicBool>,
}

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if !flag.load(Ordering::Acquire) {
            eprintln!("watchdog: test {name} exceeded {limit:?}, aborting");
            std::process::abort();
        }
    });
    Watchdog { done }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Counter service with a configurable per-call delay: `incr` mutates
/// (so at-most-once is auditable), `slow` burns handler time without
/// mutating, `get` reads.
struct CounterService {
    applied: Arc<AtomicU64>,
    delay: Duration,
}

impl RpcService for CounterService {
    fn protocol(&self) -> &'static str {
        "qos.CounterProtocol"
    }
    fn call(
        &self,
        method: &str,
        _param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "incr" => {
                let now = self.applied.fetch_add(1, Ordering::AcqRel) + 1;
                Ok(Box::new(LongWritable(now as i64)))
            }
            "slow" => {
                std::thread::sleep(self.delay);
                Ok(Box::new(LongWritable(0)))
            }
            "get" => Ok(Box::new(LongWritable(
                self.applied.load(Ordering::Acquire) as i64
            ))),
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start_counter_server(
    fabric: &Fabric,
    node: NodeId,
    cfg: &RpcConfig,
    delay: Duration,
) -> (Server, Arc<AtomicU64>) {
    let applied = Arc::new(AtomicU64::new(0));
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(CounterService {
        applied: Arc::clone(&applied),
        delay,
    }));
    let server = Server::start(fabric, node, 8020, cfg.clone(), registry).unwrap();
    (server, applied)
}

fn call(client: &Client, server: &Server, method: &str) -> Result<LongWritable, RpcError> {
    client.call(
        server.addr(),
        "qos.CounterProtocol",
        method,
        &LongWritable(1),
    )
}

/// Satellite regression: a `ServerBusy` whose next backoff would sleep
/// out the entire remaining deadline budget must fail fast as
/// `ServerBusy` — not burn the tail parked in the backoff and then
/// surface a generic `Timeout`.
#[test]
fn busy_backoff_fails_fast_when_deadline_nearly_spent() {
    let _wd = watchdog("busy_fail_fast", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        handlers: 1,
        call_queue_len: 1,
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, _applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(600));
    let filler = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();

    // A occupies the single handler; B the single queue slot.
    let spawn_slow = |delay_ms: u64| {
        let filler = filler.clone();
        let addr = server.addr();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(delay_ms));
            filler.call::<_, LongWritable>(addr, "qos.CounterProtocol", "slow", &LongWritable(1))
        })
    };
    let a = spawn_slow(0);
    let b = spawn_slow(100);
    std::thread::sleep(Duration::from_millis(250));

    // The victim's policy *could* retry five times, but its first backoff
    // (500 ms base) already exceeds the 300 ms overall deadline: the
    // fail-fast check must surface the busy verdict immediately.
    let victim_cfg = RpcConfig {
        retry: RetryPolicy::exponential(5, Duration::from_millis(500))
            .with_deadline(Duration::from_millis(300)),
        ..cfg.clone()
    };
    let victim = Client::new(&fabric, fabric.add_node(), victim_cfg).unwrap();
    let start = Instant::now();
    let err = call(&victim, &server, "incr").unwrap_err();
    let elapsed = start.elapsed();
    assert!(matches!(err, RpcError::ServerBusy), "got {err:?}");
    assert!(
        elapsed < Duration::from_millis(200),
        "busy + unaffordable backoff must fail fast, took {elapsed:?}"
    );

    assert!(a.join().unwrap().is_ok());
    assert!(b.join().unwrap().is_ok());
    filler.shutdown();
    victim.shutdown();
    server.stop();
}

/// Tentpole end-to-end: a call whose propagated deadline expires while it
/// waits behind a slow call is *shed* — answered `STATUS_EXPIRED` without
/// executing — and the client classifies that as the non-retryable
/// `DeadlineExpired`.
#[test]
fn expired_queued_call_is_shed_not_executed() {
    let _wd = watchdog("shed_not_executed", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let blocker_cfg = RpcConfig {
        handlers: 1,
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, applied) = start_counter_server(
        &fabric,
        server_node,
        &blocker_cfg,
        Duration::from_millis(500),
    );
    let blocker = Client::new(&fabric, fabric.add_node(), blocker_cfg.clone()).unwrap();

    // Occupy the single handler for 500 ms.
    let block = {
        let blocker = blocker.clone();
        let addr = server.addr();
        std::thread::spawn(move || {
            blocker.call::<_, LongWritable>(addr, "qos.CounterProtocol", "slow", &LongWritable(1))
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // The victim propagates a 100 ms budget per attempt; its call queues
    // behind the blocker, expires at ~200 ms, and is shed when the
    // handler finally pops it at ~600 ms. One of the victim's retries
    // (same seq) collects the expired verdict.
    let victim_cfg = RpcConfig {
        call_timeout: Duration::from_millis(100),
        retry: RetryPolicy::exponential(10, Duration::from_millis(10)),
        ..blocker_cfg
    };
    let victim = Client::new(&fabric, fabric.add_node(), victim_cfg).unwrap();
    let err = call(&victim, &server, "incr").unwrap_err();
    assert!(matches!(err, RpcError::DeadlineExpired), "got {err:?}");
    assert!(
        !err.is_retryable(),
        "an expired deadline cannot be helped by retrying"
    );

    assert!(block.join().unwrap().is_ok());
    assert_eq!(
        applied.load(Ordering::Acquire),
        0,
        "the shed call must never have executed its handler"
    );
    let counters = server.metrics().counters();
    assert!(
        counters.deadline_sheds >= 1,
        "the shed must be counted: {counters:?}"
    );
    blocker.shutdown();
    victim.shutdown();
    server.stop();
}

/// Per-tenant quota: a flooder saturating its own quota is busy-rejected
/// while a light tenant's call still gets through, and the rejections are
/// attributed to the flooder (and only the flooder) in the per-tenant
/// metrics.
#[test]
fn tenant_quota_rejects_flooder_and_attributes_counters() {
    let _wd = watchdog("tenant_quota", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        handlers: 1,
        call_queue_len: 16,
        tenant_quota: 2,
        call_timeout: Duration::from_secs(10),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(300));

    const FLOODER: u64 = 70_001;
    const LIGHT: u64 = 80_001;
    let flooder = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    flooder.force_client_id(FLOODER);
    let light = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    light.force_client_id(LIGHT);

    // Five concurrent slow calls against a quota of two (queued +
    // executing): at most two admitted, the rest busy-rejected even
    // though the shared queue has plenty of room.
    let floods: Vec<_> = (0..5)
        .map(|_| {
            let flooder = flooder.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                flooder.call::<_, LongWritable>(
                    addr,
                    "qos.CounterProtocol",
                    "slow",
                    &LongWritable(1),
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // The light tenant is untouched by the flooder's quota exhaustion.
    let resp = call(&light, &server, "incr");
    assert!(resp.is_ok(), "light tenant must get through: {resp:?}");
    assert_eq!(applied.load(Ordering::Acquire), 1);

    let outcomes: Vec<_> = floods.into_iter().map(|t| t.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let busy = outcomes
        .iter()
        .filter(|r| matches!(r, Err(RpcError::ServerBusy)))
        .count();
    assert_eq!(
        ok + busy,
        5,
        "every flood call ends Ok or Busy: {outcomes:?}"
    );
    assert!(ok >= 1, "the quota admits up to two concurrent calls");
    assert!(busy >= 1, "past the quota the flooder must be rejected");

    let tenants = server.metrics().tenant_snapshot();
    let flooder_row = tenants.iter().find(|t| t.client_id == FLOODER);
    assert!(
        flooder_row.is_some_and(|t| t.busy_rejections as usize == busy),
        "rejections must be attributed to the flooder: {tenants:?}"
    );
    assert!(
        tenants
            .iter()
            .filter(|t| t.client_id == LIGHT)
            .all(|t| t.busy_rejections == 0),
        "the light tenant was never rejected: {tenants:?}"
    );
    flooder.shutdown();
    light.shutdown();
    server.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Retry-cache × shedding, component level: drive the server's exact
    /// admission procedure (begin → push → pop/shed → complete) with
    /// seeded duplicate storms. Invariants: a logical call executes at
    /// most once, a call never both executes and sheds, every duplicate
    /// arriving after a shed replays `STATUS_EXPIRED`, and keys that
    /// carry no deadline are never shed.
    #[test]
    fn duplicate_storms_over_shed_calls_replay_expired(
        events in proptest::collection::vec((0..6usize, 0..3u64, any::<bool>()), 1..120)
    ) {
        const CLIENT: u64 = 9;
        const BUDGET: u64 = 2; // virtual ns until a deadline key expires
        let cache: RetryCache<usize> = RetryCache::new(
            Duration::from_secs(3600),
            1024,
            MetricsRegistry::new(false),
        );
        // Capacity 3 so storms also exercise the busy/abort path.
        let queue: AdmissionQueue<usize> = AdmissionQueue::new(3, 0, &[]);
        let mut now: u64 = 0;
        let mut executed = [0u32; 6];
        let mut shed = [false; 6];

        let drain = |now: u64,
                         executed: &mut [u32; 6],
                         shed: &mut [bool; 6]| {
            let popped = queue.try_pop(now);
            for (meta, idx) in popped.shed {
                shed[idx] = true;
                cache.complete((CLIENT, idx as i64), Arc::new(vec![STATUS_EXPIRED]));
                let _ = meta;
            }
            if let Some((meta, idx)) = popped.run {
                executed[idx] += 1;
                cache.complete((CLIENT, idx as i64), Arc::new(vec![STATUS_OK]));
                queue.release(meta.tenant);
            }
        };

        for (idx, dt, pop) in events {
            now += dt;
            if pop {
                drain(now, &mut executed, &mut shed);
                continue;
            }
            // Keys 0..3 carry a deadline; 3..6 do not (V2-style peers).
            let expires_at_ns = (idx < 3).then_some(now + BUDGET);
            match cache.begin((CLIENT, idx as i64), || idx) {
                Admission::Execute => {
                    let meta = CallMeta {
                        tenant: idx as u64,
                        expires_at_ns,
                        class: Default::default(),
                    };
                    if let Err((err, _)) = queue.try_push(meta, idx) {
                        prop_assert!(matches!(err, AdmitError::QueueFull));
                        cache.abort((CLIENT, idx as i64));
                    }
                }
                Admission::Parked => {}
                Admission::Replay(bytes) => {
                    // The replayed verdict must match the recorded fate.
                    if shed[idx] {
                        prop_assert_eq!(bytes[0], STATUS_EXPIRED);
                    } else {
                        prop_assert_eq!(bytes[0], STATUS_OK);
                    }
                }
            }
        }
        // Drain the backlog far past every deadline: remaining deadline
        // keys shed, deadline-free keys execute.
        for _ in 0..16 {
            drain(now + 1000, &mut executed, &mut shed);
        }
        for idx in 0..6 {
            prop_assert!(executed[idx] <= 1, "key {} executed {} times", idx, executed[idx]);
            prop_assert!(
                !(shed[idx] && executed[idx] > 0),
                "key {} both shed and executed", idx
            );
            if idx >= 3 {
                prop_assert!(!shed[idx], "deadline-free key {} was shed", idx);
            }
        }
    }
}

/// Seeded misbehaving-tenant soak (`RPC_QOS` × transport in CI): several
/// light tenants doing fast mutating calls while one flooder hammers slow
/// calls through the same server. Liveness (every call reaches a definite
/// outcome) and at-most-once (the applied count equals the light tenants'
/// successes) must hold with QoS on or off; with QoS on, the flooder's
/// quota must leave the light tenants with successes and never cost them
/// a busy rejection.
#[test]
fn soak_zipfian_light_tenants_with_flooder() {
    let _wd = watchdog("qos_soak", Duration::from_secs(120));
    let qos_on = env_qos_on();
    let (fabric, base) = env_transport();
    fabric.set_fault_seed(42);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        handlers: 2,
        call_queue_len: 32,
        tenant_quota: if qos_on { 4 } else { 0 },
        tenant_weights: if qos_on { vec![(7, 1)] } else { Vec::new() },
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(20));

    const FLOODER_ID: u64 = 7;
    const LIGHT_IDS: [u64; 4] = [101, 102, 103, 104];
    const LIGHT_CALLS: usize = 25;
    const FLOOD_THREADS: usize = 6;
    const FLOOD_CALLS: usize = 30;

    let flooder = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    flooder.force_client_id(FLOODER_ID);
    let flood_threads: Vec<_> = (0..FLOOD_THREADS)
        .map(|_| {
            let flooder = flooder.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut outcomes = Vec::with_capacity(FLOOD_CALLS);
                for _ in 0..FLOOD_CALLS {
                    let r = flooder.call::<_, LongWritable>(
                        addr,
                        "qos.CounterProtocol",
                        "slow",
                        &LongWritable(1),
                    );
                    outcomes.push(r);
                }
                outcomes
            })
        })
        .collect();

    let light_threads: Vec<_> = LIGHT_IDS
        .iter()
        .map(|&id| {
            let fabric = fabric.clone();
            let cfg = cfg.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
                client.force_client_id(id);
                let mut ok = 0u64;
                let mut busy = 0u64;
                for _ in 0..LIGHT_CALLS {
                    match client.call::<_, LongWritable>(
                        addr,
                        "qos.CounterProtocol",
                        "incr",
                        &LongWritable(1),
                    ) {
                        Ok(_) => ok += 1,
                        Err(RpcError::ServerBusy) => busy += 1,
                        Err(e) => panic!("light tenant {id}: unexpected outcome {e:?}"),
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                client.shutdown();
                (ok, busy)
            })
        })
        .collect();

    let mut light_ok = 0u64;
    let mut light_busy = 0u64;
    for t in light_threads {
        let (ok, busy) = t.join().unwrap();
        light_ok += ok;
        light_busy += busy;
    }
    let mut flood_ok = 0usize;
    let mut flood_busy = 0usize;
    for t in flood_threads {
        for r in t.join().unwrap() {
            match r {
                Ok(_) => flood_ok += 1,
                Err(RpcError::ServerBusy) => flood_busy += 1,
                Err(e) => panic!("flooder: unexpected outcome {e:?}"),
            }
        }
    }

    // Liveness: every call above already reached Ok or Busy (the panics
    // enforce it). At-most-once: each light success incremented exactly
    // once and nothing else ever mutates.
    assert_eq!(
        applied.load(Ordering::Acquire),
        light_ok,
        "applied increments must equal light-tenant successes"
    );
    assert_eq!(
        flood_ok + flood_busy,
        FLOOD_THREADS * FLOOD_CALLS,
        "every flooder call ends Ok or Busy"
    );
    assert!(flood_ok >= 1, "the flooder still makes progress");
    if qos_on {
        assert_eq!(
            light_busy, 0,
            "with QoS on, only the flooder's quota binds — light tenants \
             never see Busy through a 32-deep shared queue"
        );
        assert_eq!(light_ok, (LIGHT_CALLS * LIGHT_IDS.len()) as u64);
        let tenants = server.metrics().tenant_snapshot();
        assert!(
            tenants
                .iter()
                .filter(|t| t.client_id != FLOODER_ID)
                .all(|t| t.busy_rejections == 0),
            "rejections attributed outside the flooder: {tenants:?}"
        );
    }
    flooder.shutdown();
    server.stop();
}
