//! Property tests for the V3 compact-header codec: whatever sequence of
//! requests/responses an encoder emits — wrapping sequence numbers,
//! method keys repeating in any order, either compression mode — the
//! paired decoder must recover exactly the headers that went in, and the
//! stateful encoding must actually get *smaller* once a method has been
//! announced.

use proptest::prelude::*;
use rpcoib::frame::ResponseStatus;
use rpcoib::intern::method_key;
use rpcoib::{V3Decoder, V3Encoder};
use std::time::Duration;

/// A small pool of interned keys the generators draw from (interning is
/// process-wide, so the pool is fixed up front).
fn key_pool() -> Vec<rpcoib::MethodKey> {
    vec![
        method_key("v3prop.ProtoA", "alpha"),
        method_key("v3prop.ProtoA", "beta"),
        method_key("v3prop.ProtoB", "gamma"),
        method_key("v3prop.ProtoB", "delta"),
        method_key("v3prop.ProtoC", "epsilon"),
    ]
}

proptest! {
    /// Request headers round-trip through a stateful encoder/decoder
    /// pair for any sequence trajectory — including wraps through
    /// i64::MIN/MAX — and any order of method-key reuse.
    #[test]
    fn stateful_request_headers_roundtrip(
        seq_steps in proptest::collection::vec(
            (
                any::<i64>(),
                0..5usize,
                any::<u32>(),
                proptest::option::of(1..86_400_000_000u64),
            ),
            1..40,
        )
    ) {
        let pool = key_pool();
        let mut enc = V3Encoder::new(true);
        let mut dec = V3Decoder::new(true);
        let mut seq: i64 = 0;
        for (step, key_idx, retry, budget_micros) in seq_steps {
            seq = seq.wrapping_add(step);
            let key = pool[key_idx];
            let budget = budget_micros.map(Duration::from_micros);
            let mut buf: Vec<u8> = Vec::new();
            enc.write_request_header(&mut buf, seq, retry, budget, key).unwrap();
            let mut input = buf.as_slice();
            let header = dec.read_request_header(&mut input, 0xc11e).unwrap();
            prop_assert_eq!(header.seq, seq);
            prop_assert_eq!(header.retry_attempt, retry);
            prop_assert_eq!(header.key, key);
            prop_assert_eq!(header.client_id, 0xc11e);
            prop_assert_eq!(header.deadline_budget, budget);
            prop_assert!(input.is_empty(), "header must consume exactly its bytes");
        }
    }

    /// Self-contained (verbs) mode: any *subset* of the emitted frames,
    /// decoded in order by a fresh-or-shared decoder, still parses —
    /// dropping frames must not desynchronize anything.
    #[test]
    fn self_contained_frames_survive_arbitrary_drops(
        frames in proptest::collection::vec((any::<i64>(), 0..5usize, any::<bool>()), 1..40)
    ) {
        let pool = key_pool();
        let mut enc = V3Encoder::new(false);
        let mut dec = V3Decoder::new(false);
        for (seq, key_idx, keep) in frames {
            let key = pool[key_idx];
            let mut buf: Vec<u8> = Vec::new();
            enc.write_request_header(&mut buf, seq, 1, None, key).unwrap();
            if !keep {
                continue; // the fabric ate it; the stream lives on
            }
            let header = dec.read_request_header(&mut buf.as_slice(), 7).unwrap();
            prop_assert_eq!(header.seq, seq);
            prop_assert_eq!(header.key, key);
        }
    }

    /// Response leads round-trip in both modes, and the stateful delta
    /// form survives sequence wraps.
    #[test]
    fn response_headers_roundtrip(
        stateful in any::<bool>(),
        seq_steps in proptest::collection::vec((any::<i64>(), any::<bool>()), 1..40)
    ) {
        let mut enc = V3Encoder::new(stateful);
        let mut dec = V3Decoder::new(stateful);
        let mut seq: i64 = i64::MAX - 3; // a few steps from the wrap
        for (step, ok) in seq_steps {
            seq = seq.wrapping_add(step);
            let mut buf: Vec<u8> = Vec::new();
            enc.write_response_lead(&mut buf, seq).unwrap();
            buf.push(if ok { 0 } else { 1 }); // neutral body status byte
            let mut input = buf.as_slice();
            let header = dec.read_response_header(&mut input).unwrap();
            prop_assert_eq!(header.seq, seq);
            prop_assert_eq!(
                header.status,
                if ok { ResponseStatus::Ok } else { ResponseStatus::Error }
            );
        }
    }

    /// The point of the method table: after a key's announcement frame,
    /// every later use of it encodes strictly smaller than the inline
    /// form — and small consecutive seq deltas keep the whole interned
    /// header in single-digit bytes.
    #[test]
    fn interned_headers_shrink_after_first_use(key_idx in 0..5usize, reuses in 1..10usize) {
        let pool = key_pool();
        let key = pool[key_idx];
        let mut enc = V3Encoder::new(true);
        let mut first: Vec<u8> = Vec::new();
        enc.write_request_header(&mut first, 1, 0, None, key).unwrap();
        for i in 0..reuses {
            let mut again: Vec<u8> = Vec::new();
            enc.write_request_header(&mut again, 2 + i as i64, 0, None, key).unwrap();
            prop_assert!(
                again.len() < first.len(),
                "interned reuse ({}) must beat the announcement ({})",
                again.len(),
                first.len()
            );
            prop_assert!(again.len() <= 4, "delta-seq interned header stays tiny");
        }
    }
}
