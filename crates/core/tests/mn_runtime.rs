//! End-to-end tests of the M:N handler runtime (PR 10): parked calls
//! must cost bytes instead of threads, fast traffic must not starve
//! behind slow calls, random yield/park schedules must answer exactly
//! once on both transports, protocol-priority classes must keep
//! heartbeats ahead of a bulk flood, and the reader-shard work-stealing
//! and burst-decode paths must preserve per-connection correctness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rpcoib::metrics::ShardStats;
use rpcoib::{
    CallPoll, Client, HandlerCx, HandlerRuntime, RpcConfig, RpcService, Sched, Server,
    ServiceRegistry, ShardRole, Step,
};
use simnet::{model, Fabric, SimAddr};
use wire::{BytesWritable, DataInput, LongWritable, Writable};

/// Aborts the process if a test wedges (a stuck queue or lost wakeup
/// would otherwise hang the suite until the harness timeout).
struct Watchdog {
    done: Arc<AtomicBool>,
}

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if !flag.load(Ordering::Acquire) {
            eprintln!("watchdog: test {name} exceeded {limit:?}, aborting");
            std::process::abort();
        }
    });
    Watchdog { done }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

fn transports() -> Vec<(&'static str, Fabric, RpcConfig)> {
    vec![
        ("socket", Fabric::new(model::IPOIB_QDR), RpcConfig::socket()),
        (
            "verbs",
            Fabric::new(model::IB_QDR_VERBS),
            RpcConfig::rpcoib(),
        ),
    ]
}

/// Echo service with explicit suspension points for the `mn` runtime.
///
/// Request body: `[steps, op_1 .. op_steps, data...]`. Under `mn`, poll
/// `k < steps` suspends per `op_{k+1}` (even → cooperative yield, odd →
/// timed park of `op % 3` ms); the poll after the last op echoes `data`.
/// Under the thread pool the schedule is skipped and `data` echoes
/// directly — the response must be identical either way.
struct ScriptEcho {
    completions: AtomicU64,
}

fn split_schedule(body: &[u8]) -> (usize, &[u8]) {
    let steps = body.first().copied().unwrap_or(0).min(5) as usize;
    let data_at = (1 + steps).min(body.len());
    (steps, &body[data_at..])
}

impl RpcService for ScriptEcho {
    fn protocol(&self) -> &'static str {
        "mn.ScriptEcho"
    }

    fn call(
        &self,
        _method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut b = BytesWritable::default();
        b.read_fields(param).map_err(|e| e.to_string())?;
        let (_, data) = split_schedule(&b.0);
        self.completions.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(BytesWritable(data.to_vec())))
    }

    fn call_mn(
        &self,
        _method: &str,
        param: &mut dyn DataInput,
        cx: &mut HandlerCx<'_>,
    ) -> CallPoll {
        let mut b = BytesWritable::default();
        if let Err(e) = b.read_fields(param) {
            return CallPoll::Ready(Err(e.to_string()));
        }
        let (steps, data) = split_schedule(&b.0);
        if (cx.polls() as usize) < steps {
            let op = b.0[1 + cx.polls() as usize];
            if op % 2 == 0 {
                cx.yield_now();
            } else {
                cx.park_for(Duration::from_millis(u64::from(op % 3)));
            }
            return CallPoll::Pending;
        }
        self.completions.fetch_add(1, Ordering::Relaxed);
        CallPoll::Ready(Ok(Box::new(BytesWritable(data.to_vec()))))
    }
}

/// Echo service whose `park_ms` method parks (body byte 0 = duration in
/// ms) before echoing — the "slow but suspended" call of the starvation
/// regression. `echo` answers immediately.
struct ParkEcho;

impl RpcService for ParkEcho {
    fn protocol(&self) -> &'static str {
        "mn.ParkEcho"
    }

    fn call(
        &self,
        _method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut b = BytesWritable::default();
        b.read_fields(param).map_err(|e| e.to_string())?;
        Ok(Box::new(b))
    }

    fn call_mn(&self, method: &str, param: &mut dyn DataInput, cx: &mut HandlerCx<'_>) -> CallPoll {
        let mut b = BytesWritable::default();
        if let Err(e) = b.read_fields(param) {
            return CallPoll::Ready(Err(e.to_string()));
        }
        if method == "park_ms" && cx.first_poll() {
            let ms = u64::from(b.0.first().copied().unwrap_or(0));
            cx.park_for(Duration::from_millis(ms));
            return CallPoll::Pending;
        }
        CallPoll::Ready(Ok(Box::new(b)))
    }
}

fn start<S: RpcService + 'static>(
    fabric: &Fabric,
    cfg: &RpcConfig,
    services: Vec<Arc<S>>,
) -> (Server, SimAddr) {
    let mut registry = ServiceRegistry::new();
    for s in services {
        registry.register(s);
    }
    let server = Server::start(fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    let addr = server.addr();
    (server, addr)
}

fn echo(client: &Client, addr: SimAddr, proto: &str, method: &str, body: Vec<u8>) -> Vec<u8> {
    let resp: BytesWritable = client
        .call(addr, proto, method, &BytesWritable(body))
        .expect("call");
    resp.0
}

// ---------------------------------------------------------------------
// Tentpole: the M:N runtime end to end.
// ---------------------------------------------------------------------

/// A lone call round-trips under `handler_runtime = mn` on both
/// transports, and the runtime's per-worker shard counters surface in
/// the server snapshot.
#[test]
fn mn_lone_echo_round_trips_on_both_transports() {
    let _wd = watchdog(
        "mn_lone_echo_round_trips_on_both_transports",
        Duration::from_secs(60),
    );
    for (label, fabric, mut cfg) in transports() {
        cfg.handler_runtime = HandlerRuntime::Mn;
        cfg.handler_workers = 4;
        let (server, addr) = start(&fabric, &cfg, vec![Arc::new(ParkEcho)]);
        let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
        let body = vec![0x42u8; 1024];
        assert_eq!(
            echo(&client, addr, "mn.ParkEcho", "echo", body.clone()),
            body,
            "transport {label}"
        );
        assert_eq!(
            server
                .metrics_snapshot()
                .shards
                .iter()
                .filter(|s| s.role == ShardRole::Worker)
                .count(),
            4,
            "transport {label}: one row per worker"
        );
        // The response races the worker's own post-poll bookkeeping by a
        // few instructions; poll briefly instead of reading once.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let processed: u64 = server
                .metrics_snapshot()
                .shards
                .iter()
                .filter(|s| s.role == ShardRole::Worker)
                .map(|s| s.processed)
                .sum();
            if processed >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "transport {label}: the call never counted on a worker"
            );
            std::thread::yield_now();
        }
        client.shutdown();
        server.stop();
    }
}

/// The starvation regression the M:N design exists for: with a *single*
/// worker, a call parked for 600 ms must not block fast traffic — the
/// park frees the worker, so a burst of fast calls completes while the
/// slow call sleeps, and the slow call still answers correctly after its
/// deadline.
#[test]
fn parked_call_frees_its_single_worker() {
    let _wd = watchdog(
        "parked_call_frees_its_single_worker",
        Duration::from_secs(60),
    );
    for (label, fabric, mut cfg) in transports() {
        cfg.handler_runtime = HandlerRuntime::Mn;
        cfg.handler_workers = 1;
        let (server, addr) = start(&fabric, &cfg, vec![Arc::new(ParkEcho)]);
        let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();

        let slow = {
            let client = client.clone();
            std::thread::spawn(move || {
                let started = Instant::now();
                // Body byte 0 = 200: park for 200 ms before echoing.
                let resp: BytesWritable = client
                    .call(
                        addr,
                        "mn.ParkEcho",
                        "park_ms",
                        &BytesWritable(vec![200u8, 1, 2, 3]),
                    )
                    .expect("slow call");
                (started.elapsed(), resp.0)
            })
        };
        // Let the slow call reach its park point.
        std::thread::sleep(Duration::from_millis(60));

        // Fast traffic on the same (now parked-over) worker.
        let fast_started = Instant::now();
        for i in 0..8u8 {
            let body = vec![i; 64];
            assert_eq!(
                echo(&client, addr, "mn.ParkEcho", "echo", body.clone()),
                body,
                "transport {label}"
            );
        }
        let fast_elapsed = fast_started.elapsed();
        assert!(
            fast_elapsed < Duration::from_millis(130),
            "transport {label}: fast calls starved behind a parked call ({fast_elapsed:?})"
        );

        let (slow_elapsed, slow_body) = slow.join().unwrap();
        assert_eq!(slow_body, vec![200u8, 1, 2, 3], "transport {label}");
        assert!(
            slow_elapsed >= Duration::from_millis(180),
            "transport {label}: the park was cut short ({slow_elapsed:?})"
        );

        let snap = server.metrics_snapshot();
        let (parks, wakes): (u64, u64) = snap
            .shards
            .iter()
            .filter(|s| s.role == ShardRole::Worker)
            .fold((0, 0), |(p, w), s| (p + s.parks, w + s.wakes));
        assert!(parks >= 1, "transport {label}: the park was counted");
        assert!(wakes >= 1, "transport {label}: the timer wake was counted");
        client.shutdown();
        server.stop();
    }
}

/// Random yield/park schedules answer exactly once with the right body,
/// concurrently, on both transports — the park/wake machinery must lose
/// no response and duplicate none (the completion counter equals the
/// call count exactly).
#[test]
fn concurrent_random_schedules_complete_exactly_once() {
    let _wd = watchdog(
        "concurrent_random_schedules_complete_exactly_once",
        Duration::from_secs(120),
    );
    for (label, fabric, mut cfg) in transports() {
        cfg.handler_runtime = HandlerRuntime::Mn;
        cfg.handler_workers = 4;
        let service = Arc::new(ScriptEcho {
            completions: AtomicU64::new(0),
        });
        let (server, addr) = start(&fabric, &cfg, vec![Arc::clone(&service)]);
        let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();

        let threads = 8usize;
        let calls_per_thread = 12usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let client = client.clone();
                std::thread::spawn(move || {
                    for i in 0..calls_per_thread {
                        // A per-call pseudo-random schedule: steps 0..=5,
                        // each op mixing yields (even) and short timed
                        // parks (odd).
                        let seed = (t * 131 + i * 17) as u8;
                        let steps = seed % 6;
                        let mut body = vec![steps];
                        for k in 0..steps {
                            body.push(seed.wrapping_mul(31).wrapping_add(k * 7));
                        }
                        let data = vec![seed; 1 + (i % 64)];
                        body.extend_from_slice(&data);
                        let resp: BytesWritable = client
                            .call(addr, "mn.ScriptEcho", "run", &BytesWritable(body))
                            .expect("scripted call");
                        assert_eq!(resp.0, data);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * calls_per_thread) as u64;
        assert_eq!(
            service.completions.load(Ordering::Relaxed),
            total,
            "transport {label}: every call completes exactly once"
        );
        client.shutdown();
        server.stop();
    }
}

// ---------------------------------------------------------------------
// Satellite: protocol-priority classes.
// ---------------------------------------------------------------------

struct BulkService {
    done: Arc<AtomicU64>,
}

impl RpcService for BulkService {
    fn protocol(&self) -> &'static str {
        "mn.Bulk"
    }
    fn call(
        &self,
        _method: &str,
        _param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        std::thread::sleep(Duration::from_millis(25));
        self.done.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(LongWritable(1)))
    }
}

struct HeartbeatService {
    bulk_done: Arc<AtomicU64>,
}

impl RpcService for HeartbeatService {
    fn protocol(&self) -> &'static str {
        "mn.Heartbeat"
    }
    fn call(
        &self,
        _method: &str,
        _param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        // Report how much of the bulk flood had drained when this
        // heartbeat actually ran.
        Ok(Box::new(LongWritable(
            self.bulk_done.load(Ordering::Relaxed) as i64,
        )))
    }
}

/// A bulk flood must not starve heartbeats: with `mn.Heartbeat` in
/// `priority_protocols`, a heartbeat issued into a 20-deep backlog of
/// slow bulk calls dequeues ahead of the still-queued bulk — it runs
/// while most of the flood is still waiting, instead of draining the
/// whole queue first.
#[test]
fn heartbeats_jump_a_bulk_flood() {
    let _wd = watchdog("heartbeats_jump_a_bulk_flood", Duration::from_secs(120));
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let mut cfg = RpcConfig::rpcoib();
    cfg.handlers = 1; // one handler: the backlog is real
    cfg.priority_protocols = vec!["mn.Heartbeat".into()];
    let bulk_done = Arc::new(AtomicU64::new(0));
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(BulkService {
        done: Arc::clone(&bulk_done),
    }));
    registry.register(Arc::new(HeartbeatService {
        bulk_done: Arc::clone(&bulk_done),
    }));
    let server = Server::start(&fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    let addr = server.addr();
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();

    // 20 blocking callers pile a ~500 ms backlog onto the one handler.
    let flood: Vec<_> = (0..20)
        .map(|_| {
            let client = client.clone();
            std::thread::spawn(move || {
                client
                    .call::<_, LongWritable>(addr, "mn.Bulk", "slow", &LongWritable(0))
                    .expect("bulk call")
            })
        })
        .collect();
    // Let the flood enqueue and a few bulk calls execute.
    std::thread::sleep(Duration::from_millis(75));

    let beat: LongWritable = client
        .call(addr, "mn.Heartbeat", "beat", &LongWritable(0))
        .expect("heartbeat");
    assert!(
        (beat.0 as u64) < 16,
        "heartbeat waited out the bulk flood: {} of 20 bulk calls had drained",
        beat.0
    );

    for h in flood {
        h.join().unwrap();
    }
    assert_eq!(
        bulk_done.load(Ordering::Relaxed),
        20,
        "the flood still completes"
    );
    client.shutdown();
    server.stop();
}

// ---------------------------------------------------------------------
// Satellites: burst decode + reader stealing.
// ---------------------------------------------------------------------

/// Gathered V3 batches (many pipelined frames arriving as one wire op)
/// decode wholesale on the server's read side: heavy pipelining over a
/// single connection stays correct — every response routed to its
/// caller, byte-identical — under both handler runtimes and transports.
#[test]
fn gathered_bursts_decode_correctly_under_both_runtimes() {
    let _wd = watchdog(
        "gathered_bursts_decode_correctly_under_both_runtimes",
        Duration::from_secs(120),
    );
    for runtime in [HandlerRuntime::Threads, HandlerRuntime::Mn] {
        for (label, fabric, mut cfg) in transports() {
            cfg.handler_runtime = runtime;
            let (server, addr) = start(&fabric, &cfg, vec![Arc::new(ParkEcho)]);
            // One client = one connection; 8 threads pipeline onto it so
            // the server sees multi-frame gathered batches.
            let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
            let handles: Vec<_> = (0..8usize)
                .map(|t| {
                    let client = client.clone();
                    std::thread::spawn(move || {
                        for i in 0..20usize {
                            let body = vec![(t * 32 + i) as u8; 128 + i];
                            let resp: BytesWritable = client
                                .call(addr, "mn.ParkEcho", "echo", &BytesWritable(body.clone()))
                                .expect("pipelined call");
                            assert_eq!(resp.0, body);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let snap = server.metrics_snapshot();
            let frames: u64 = snap
                .shards
                .iter()
                .filter(|s| s.role == ShardRole::Reader)
                .map(|s| s.processed)
                .sum();
            assert!(
                frames >= 160,
                "runtime {} transport {label}: {frames} frames read",
                runtime.name()
            );
            client.shutdown();
            server.stop();
        }
    }
}

/// With `reader_steal` on, an idle reader shard drains a hot sibling:
/// pin the flood onto the connections of one shard (found empirically
/// via the per-shard `processed` counter) and assert the other shard's
/// steal counter moves while every response stays correct.
#[test]
fn reader_steal_drains_a_hot_sibling() {
    let _wd = watchdog(
        "reader_steal_drains_a_hot_sibling",
        Duration::from_secs(120),
    );
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let mut cfg = RpcConfig::rpcoib();
    cfg.reader_shards = 2;
    cfg.reader_steal = true;
    let (server, addr) = start(&fabric, &cfg, vec![Arc::new(ParkEcho)]);

    // Probe each client's shard: one ping, then see whose `processed`
    // moved.
    let shard_processed = |server: &Server| -> Vec<u64> {
        server
            .metrics_snapshot()
            .shards
            .iter()
            .filter(|s| s.role == ShardRole::Reader)
            .map(|s| s.processed)
            .collect()
    };
    let mut hot = Vec::new(); // clients on shard 0
    for _ in 0..6 {
        let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
        let before = shard_processed(&server);
        echo(&client, addr, "mn.ParkEcho", "echo", vec![1, 2, 3]);
        let after = shard_processed(&server);
        if after[0] > before[0] {
            hot.push(client);
        } else {
            client.shutdown(); // shard-1 tenant: stay silent
        }
    }
    assert!(
        hot.len() >= 2,
        "conn placement should land >=2 of 6 clients on shard 0, got {}",
        hot.len()
    );

    // Flood shard 0 only (4 pipelining threads per hot connection);
    // shard 1 idles and must start stealing.
    let stop = Arc::new(AtomicBool::new(false));
    let hot = Arc::new(hot);
    let handles: Vec<_> = (0..hot.len() * 4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let hot = Arc::clone(&hot);
            std::thread::spawn(move || {
                let client = &hot[t % hot.len()];
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let body = vec![(t * 31 + i) as u8; 512];
                    let resp: BytesWritable = client
                        .call(addr, "mn.ParkEcho", "echo", &BytesWritable(body.clone()))
                        .expect("flood call");
                    assert_eq!(resp.0, body);
                    i += 1;
                }
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut steals = 0u64;
    while Instant::now() < deadline {
        steals = server
            .metrics_snapshot()
            .shards
            .iter()
            .filter(|s| s.role == ShardRole::Reader)
            .map(|s| s.steals)
            .sum();
        if steals >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    assert!(steals >= 1, "the idle shard never stole from the hot one");
    for client in hot.iter() {
        client.shutdown();
    }
    server.stop();
}

// ---------------------------------------------------------------------
// Property tests: random schedules, both transports, exactly once.
// ---------------------------------------------------------------------

struct PropEnv {
    _server: Server,
    client: Client,
    addr: SimAddr,
    service: Arc<ScriptEcho>,
    calls: AtomicU64,
}

fn prop_env(rdma: bool) -> &'static PropEnv {
    static SOCKET: OnceLock<PropEnv> = OnceLock::new();
    static RDMA: OnceLock<PropEnv> = OnceLock::new();
    let cell = if rdma { &RDMA } else { &SOCKET };
    cell.get_or_init(|| {
        let (net, mut cfg) = if rdma {
            (model::IB_QDR_VERBS, RpcConfig::rpcoib())
        } else {
            (model::IPOIB_QDR, RpcConfig::socket())
        };
        cfg.handler_runtime = HandlerRuntime::Mn;
        cfg.handler_workers = 4;
        let fabric = Fabric::new(net);
        let service = Arc::new(ScriptEcho {
            completions: AtomicU64::new(0),
        });
        let mut registry = ServiceRegistry::new();
        let as_service: Arc<dyn RpcService> = service.clone();
        registry.register(as_service);
        let server =
            Server::start(&fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
        let addr = server.addr();
        let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
        PropEnv {
            _server: server,
            client,
            addr,
            service,
            calls: AtomicU64::new(0),
        }
    })
}

fn run_schedule(env: &PropEnv, schedule: Vec<u8>, data: Vec<u8>) {
    let mut body = vec![schedule.len() as u8];
    body.extend_from_slice(&schedule);
    body.extend_from_slice(&data);
    let resp: BytesWritable = env
        .client
        .call(env.addr, "mn.ScriptEcho", "run", &BytesWritable(body))
        .expect("scripted call");
    let calls = env.calls.fetch_add(1, Ordering::Relaxed) + 1;
    prop_assert_eq!(resp.0, data, "echo mismatch");
    prop_assert_eq!(
        env.service.completions.load(Ordering::Relaxed),
        calls,
        "a schedule completed twice or not at all"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random yield/park schedule answers exactly once over RPCoIB
    /// under the M:N runtime.
    #[test]
    fn mn_random_schedules_respond_exactly_once_verbs(
        schedule in proptest::collection::vec(any::<u8>(), 0..6),
        data in proptest::collection::vec(any::<u8>(), 1..4096),
    ) {
        run_schedule(prop_env(true), schedule, data);
    }

    /// Same property over the socket baseline.
    #[test]
    fn mn_random_schedules_respond_exactly_once_socket(
        schedule in proptest::collection::vec(any::<u8>(), 0..6),
        data in proptest::collection::vec(any::<u8>(), 1..4096),
    ) {
        run_schedule(prop_env(false), schedule, data);
    }
}

// ---------------------------------------------------------------------
// Tier-2 soak: 100k parked calls on 4 workers.
// ---------------------------------------------------------------------

/// 100 000 concurrently *parked* lightweight tasks on 4 OS workers — the
/// "in-flight calls cost bytes, not threads" claim at scale. After every
/// task is woken and drained, the runtime must hold zero residue: no
/// frame, queue slot, or timer entry survives.
#[test]
#[ignore = "tier-2 soak (run with --ignored)"]
fn soak_100k_parked_calls_leave_zero_residue() {
    let _wd = watchdog(
        "soak_100k_parked_calls_leave_zero_residue",
        Duration::from_secs(300),
    );
    const TASKS: usize = 100_000;
    const WORKERS: usize = 4;
    let stats = (0..WORKERS)
        .map(|_| Arc::new(ShardStats::default()))
        .collect();
    let sched = Arc::new(Sched::new(WORKERS, stats));
    let handles = Arc::new(Mutex::new(Vec::with_capacity(TASKS)));
    let completed = Arc::new(AtomicU64::new(0));

    for _ in 0..TASKS {
        let handles = Arc::clone(&handles);
        let completed = Arc::clone(&completed);
        sched.inject(move |cx| {
            if cx.polls() == 0 {
                handles.lock().unwrap().push(cx.wake_handle());
                return Step::Park;
            }
            completed.fetch_add(1, Ordering::Relaxed);
            Step::Done
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let sched = Arc::clone(&sched);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                if let Some(task) = sched.next_task(w) {
                    sched.run(w, task, 0);
                    continue;
                }
                if stop.load(Ordering::Acquire) {
                    return;
                }
                sched.idle_wait(Duration::from_millis(1));
            })
        })
        .collect();

    // Phase 1: everything parks.
    let deadline = Instant::now() + Duration::from_secs(120);
    while sched.parked() < TASKS {
        assert!(
            Instant::now() < deadline,
            "parking stalled at {}",
            sched.parked()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(sched.parked_peak(), TASKS);
    assert_eq!(sched.inflight(), TASKS, "all parked, none lost");
    assert_eq!(completed.load(Ordering::Relaxed), 0);

    // Phase 2: wake the lot and drain.
    for h in handles.lock().unwrap().drain(..) {
        h.wake();
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while sched.inflight() > 0 {
        assert!(
            Instant::now() < deadline,
            "drain stalled with {} in flight",
            sched.inflight()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Release);
    sched.close();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(completed.load(Ordering::Relaxed), TASKS as u64);
    assert_eq!(sched.parked(), 0);
    assert_eq!(sched.queued(), 0);
    assert_eq!(
        sched.residue(),
        0,
        "no frame, slot, or timer survives the drain"
    );
}
