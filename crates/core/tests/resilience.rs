//! Resilience tests: retry/backoff/deadline behavior under injected
//! faults, server tolerance of connection churn, and clean failure modes
//! when a server dies mid-call.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib::{Client, RetryPolicy, RpcConfig, RpcError, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric, FaultSpec, NodeId};
use wire::{BytesWritable, DataInput, Text, Writable};

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "test.EchoProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "pingpong" => {
                let mut payload = BytesWritable::default();
                payload.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            "fail" => Err("requested failure".into()),
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start_server(fabric: &Fabric, node: NodeId, cfg: &RpcConfig) -> Server {
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    Server::start(fabric, node, 8020, cfg.clone(), registry).unwrap()
}

fn ping(client: &Client, server: &Server) -> Result<BytesWritable, RpcError> {
    client.call(
        server.addr(),
        "test.EchoProtocol",
        "pingpong",
        &BytesWritable(vec![1, 2, 3]),
    )
}

/// The acceptance scenario: a transient fault that outlives
/// `RetryPolicy::none()` but not a 3-attempt backoff policy.
///
/// `fail_next_connects(n)` refuses the next `n` connection attempts.
/// Connect failures surface as retryable `Io` errors, so the first call
/// of a fresh client exercises the policy directly:
/// * 1 attempt  → a single refusal is fatal;
/// * 3 attempts → refused, refused, connected → succeeds.
#[test]
fn transient_fault_needs_retries_to_clear() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start_server(&fabric, server_node, &cfg);

    // Without retries the injected failure is fatal. (Refusals are
    // cumulative and consumed one per attempt, so inject exactly as many
    // as this phase will use up.)
    let none_cfg = RpcConfig {
        retry: RetryPolicy::none(),
        ..cfg.clone()
    };
    let client = Client::new(&fabric, fabric.add_node(), none_cfg).unwrap();
    fabric.fail_next_connects(server.addr(), 1);
    let err = ping(&client, &server).unwrap_err();
    assert!(
        matches!(err, RpcError::Io(_)),
        "expected connect refusal, got {err:?}"
    );
    assert!(
        err.is_retryable(),
        "a refused connect must be classified retryable"
    );
    let counters = client.metrics().counters();
    assert_eq!(counters.retries, 0, "RetryPolicy::none must not retry");
    assert_eq!(counters.failed_calls, 1);
    assert_eq!(fabric.pending_connect_failures(server.addr()), 0);
    client.shutdown();

    // With three attempts and backoff, the same fault heals in-flight.
    let retry_cfg = RpcConfig {
        retry: RetryPolicy::exponential(3, Duration::from_millis(5)),
        ..cfg.clone()
    };
    let client = Client::new(&fabric, fabric.add_node(), retry_cfg).unwrap();
    fabric.fail_next_connects(server.addr(), 2);
    let resp = ping(&client, &server).expect("third attempt should connect and succeed");
    assert_eq!(resp.0, vec![1, 2, 3]);
    let counters = client.metrics().counters();
    assert_eq!(counters.retries, 2, "both refusals should be retried");
    assert_eq!(counters.failed_calls, 0);
    client.shutdown();
    server.stop();
}

/// 100 connect → call → disconnect cycles: the server's live-connection
/// table must drain back to zero (no leaked conns or Reader threads),
/// while the lifetime counter records every visit.
#[test]
fn server_survives_connection_churn_without_leaking() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start_server(&fabric, server_node, &cfg);

    for i in 0..100 {
        let client = Client::new(&fabric, client_node, cfg.clone()).unwrap();
        let resp = ping(&client, &server).unwrap();
        assert_eq!(resp.0, vec![1, 2, 3], "cycle {i}");
        client.shutdown();
    }

    assert_eq!(server.lifetime_connection_count(), 100);
    // Readers notice the closed transports within their idle slice.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connection_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.connection_count(),
        0,
        "live connections must drain after clients disconnect"
    );
    server.stop();
}

/// `Server::stop` is idempotent and safe to race with in-flight calls.
#[test]
fn server_stop_is_idempotent_with_inflight_calls() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_secs(2),
        retry: RetryPolicy::none(),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    ping(&client, &server).unwrap();

    // Callers hammering the server while it stops must get clean errors
    // (or late successes), never panics or hangs.
    let callers: Vec<_> = (0..4)
        .map(|_| {
            let client = client.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = client.call::<_, BytesWritable>(
                        addr,
                        "test.EchoProtocol",
                        "pingpong",
                        &BytesWritable(vec![9; 64]),
                    );
                }
            })
        })
        .collect();

    server.stop();
    server.stop(); // second stop must be a no-op
    for t in callers {
        t.join().expect("caller panicked during server stop");
    }
    server.stop(); // and after the dust settles, still a no-op
    client.shutdown();
}

/// Killing the server's node mid-call yields Timeout/ConnectionClosed/Io
/// promptly — never a hang past the call timeout — and a later call after
/// reviving the address keeps working via reconnect.
#[test]
fn killed_server_fails_calls_promptly() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(500),
        retry: RetryPolicy::none(),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    ping(&client, &server).unwrap();

    fabric.kill_node(server_node);
    let start = Instant::now();
    let err = ping(&client, &server).unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "call against a dead server must fail promptly, took {:?}",
        start.elapsed()
    );
    assert!(
        matches!(
            err,
            RpcError::Timeout | RpcError::ConnectionClosed | RpcError::Io(_)
        ),
        "expected a transport-death error, got {err:?}"
    );
    client.shutdown();
    drop(server); // the dead node's server: stop() must not hang either
}

/// A partition heals between attempts: the retry policy carries the call
/// across the outage, reconnecting and counting the recovery.
#[test]
fn retry_reconnects_across_partition() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    // Partition failures are immediate (BrokenPipe), so attempt N lands
    // at roughly the sum of the first N-1 backoffs: ~0, 100, 300, 700 ms
    // (±20% jitter). Healing at 400 ms guarantees some attempt ≥ 4 runs
    // after the heal while the six-attempt budget is far from exhausted.
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(300),
        retry: RetryPolicy::exponential(6, Duration::from_millis(100)),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, client_node, cfg).unwrap();
    ping(&client, &server).unwrap();

    fabric.partition(client_node, server_node);
    let healer = {
        let fabric = fabric.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            fabric.heal(client_node, server_node);
        })
    };
    let resp = ping(&client, &server).expect("call should survive a healed partition");
    assert_eq!(resp.0, vec![1, 2, 3]);
    healer.join().unwrap();

    let counters = client.metrics().counters();
    assert!(
        counters.retries >= 1,
        "outage should have cost at least one retry"
    );
    assert!(
        counters.reconnects >= 1,
        "recovery should re-establish the connection"
    );
    assert_eq!(counters.failed_calls, 0);
    client.shutdown();
    server.stop();
}

/// The per-call deadline bounds total time across attempts: with an
/// unreachable server and a generous attempt budget, the call returns
/// once the deadline is spent — not after `max_attempts × call_timeout`.
#[test]
fn deadline_caps_total_time_across_attempts() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_secs(10),
        retry: RetryPolicy::exponential(50, Duration::from_millis(10))
            .with_deadline(Duration::from_millis(700)),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    ping(&client, &server).unwrap();

    // Black-hole the link: sends vanish silently, so every attempt rides
    // its receive wait — which the deadline must cap.
    fabric.set_link_fault(client.node(), server_node, FaultSpec::drop_all());
    let start = Instant::now();
    let err = ping(&client, &server).unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        err.is_retryable(),
        "expected a transport error, got {err:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(600),
        "deadline budget should be substantially used, only took {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must cap the call well under call_timeout, took {elapsed:?}"
    );
    assert_eq!(client.metrics().counters().failed_calls, 1);
    client.shutdown();
    server.stop();
}

/// A corrupt frame (garbage bytes on the raw stream) costs the client
/// that sent it its connection — counted in `frame_errors` — while other
/// clients keep working. Direct stream access sidesteps the RPC client,
/// so this drives the server's Reader exactly like a misbehaving peer.
#[test]
fn corrupt_frame_drops_connection_and_counts() {
    use std::io::Write;

    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start_server(&fabric, server_node, &cfg);
    let good_client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    ping(&good_client, &server).unwrap();

    // A raw connection that speaks garbage: a plausible length prefix
    // followed by bytes that cannot parse as a request header.
    let rogue_node = fabric.add_node();
    let rogue = simnet::SimStream::connect(&fabric, rogue_node, server.addr()).unwrap();
    let mut frame = 64u32.to_be_bytes().to_vec();
    frame.extend_from_slice(&[0xff; 64]);
    (&rogue).write_all(&frame).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().counters().frame_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.metrics().counters().frame_errors, 1);

    // The rogue connection dies; the well-behaved client is unaffected.
    let gone = Instant::now() + Duration::from_secs(5);
    while server.connection_count() > 1 && Instant::now() < gone {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.connection_count(),
        1,
        "only the rogue connection may be dropped"
    );
    ping(&good_client, &server).unwrap();
    good_client.shutdown();
    server.stop();
}

/// Echo also works under RPCoIB with a retry policy configured, and a
/// server restart heals transparently through the default policy.
#[test]
fn rpcoib_client_survives_server_restart() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::rpcoib();
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    ping(&client, &server).unwrap();
    server.stop();

    let server = start_server(&fabric, server_node, &cfg);
    let resp = ping(&client, &server).expect("default policy should heal a stale connection");
    assert_eq!(resp.0, vec![1, 2, 3]);
    assert!(client.metrics().counters().reconnects >= 1);
    client.shutdown();
    server.stop();
}

/// Non-retryable errors must not consume retry budget: a remote
/// exception fails immediately even under an aggressive policy.
#[test]
fn remote_errors_are_not_retried() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        retry: RetryPolicy::exponential(5, Duration::from_millis(100)),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    let start = Instant::now();
    let err = client
        .call::<_, Text>(
            server.addr(),
            "test.EchoProtocol",
            "fail",
            &Text("x".into()),
        )
        .unwrap_err();
    assert!(matches!(err, RpcError::Remote(_)), "got {err:?}");
    assert!(
        start.elapsed() < Duration::from_millis(100),
        "remote exceptions must fail without backoff sleeps"
    );
    let counters = client.metrics().counters();
    assert_eq!(counters.retries, 0);
    assert_eq!(counters.failed_calls, 1);
    client.shutdown();
    server.stop();
}
