//! Resilience tests: retry/backoff/deadline behavior under injected
//! faults, at-most-once semantics under drops and duplicate retries,
//! overload rejection, graceful drain, server tolerance of connection
//! churn, and clean failure modes when a server dies mid-call.
//!
//! The tests that are transport-agnostic pick their fabric from the
//! `RPC_TRANSPORT` environment variable (`verbs` → RPCoIB, anything else
//! → the socket baseline), so CI runs the whole suite once per transport.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib::handshake::client_hello;
use rpcoib::transport::rdma::RdmaConn;
use rpcoib::{
    Client, IbContext, RetryPolicy, RpcConfig, RpcError, RpcService, Server, ServiceRegistry,
};
use simnet::{model, Fabric, FaultSpec, NodeId, SimStream};
use wire::{BytesWritable, DataInput, LongWritable, Text, Writable};

/// Fabric + matching config for the transport selected by
/// `RPC_TRANSPORT` (CI runs the suite under both values), with the
/// server pipeline shape from `RPC_SHARDS` (pins both reader and
/// responder shard counts; unset or 0 keeps the config defaults) and
/// wire batching toggled by `RPC_BATCH` (`off` disables client gather
/// coalescing and responder sweep batching), and the adaptive eager/bulk
/// crossover toggled by `RPC_ADAPTIVE` (`on` lets each verbs connection
/// retune its `rdma_threshold` from live cost samples; a no-op on the
/// socket transport), and the handler runtime selected by
/// `RPC_HANDLER_RUNTIME` (`mn` → the work-stealing M:N task runtime;
/// unset or anything else keeps the legacy thread-per-handler pool).
/// CI's resilience matrix crosses these variables, so every scenario
/// here runs single-sharded *and* at 4×4, batched *and* per-frame,
/// static *and* adaptive, threaded *and* M:N.
fn env_transport() -> (Fabric, RpcConfig) {
    let (fabric, mut cfg) = if std::env::var("RPC_TRANSPORT").as_deref() == Ok("verbs") {
        (Fabric::new(model::IB_QDR_VERBS), RpcConfig::rpcoib())
    } else {
        (Fabric::new(model::IPOIB_QDR), RpcConfig::socket())
    };
    if let Some(n) = std::env::var("RPC_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        cfg.reader_shards = n;
        cfg.responder_shards = n;
    }
    if std::env::var("RPC_BATCH").as_deref() == Ok("off") {
        cfg.wire_batch = false;
    }
    if std::env::var("RPC_ADAPTIVE").as_deref() == Ok("on") {
        cfg.adaptive_rdma_threshold = true;
    }
    if std::env::var("RPC_HANDLER_RUNTIME").as_deref() == Ok("mn") {
        cfg.handler_runtime = rpcoib::HandlerRuntime::Mn;
    }
    (fabric, cfg)
}

/// Aborts the whole test process (with a pointed message) if the guard is
/// still alive after `limit` — so a deadlocked drain or a stuck queue
/// fails fast instead of hanging the suite until the harness timeout.
struct Watchdog {
    done: Arc<AtomicBool>,
}

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if !flag.load(Ordering::Acquire) {
            eprintln!("watchdog: test {name} exceeded {limit:?}, aborting");
            std::process::abort();
        }
    });
    Watchdog { done }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "test.EchoProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "pingpong" => {
                let mut payload = BytesWritable::default();
                payload.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            "fail" => Err("requested failure".into()),
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start_server(fabric: &Fabric, node: NodeId, cfg: &RpcConfig) -> Server {
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    Server::start(fabric, node, 8020, cfg.clone(), registry).unwrap()
}

fn ping(client: &Client, server: &Server) -> Result<BytesWritable, RpcError> {
    client.call(
        server.addr(),
        "test.EchoProtocol",
        "pingpong",
        &BytesWritable(vec![1, 2, 3]),
    )
}

/// The acceptance scenario: a transient fault that outlives
/// `RetryPolicy::none()` but not a 3-attempt backoff policy.
///
/// `fail_next_connects(n)` refuses the next `n` connection attempts.
/// Connect failures surface as retryable `Io` errors, so the first call
/// of a fresh client exercises the policy directly:
/// * 1 attempt  → a single refusal is fatal;
/// * 3 attempts → refused, refused, connected → succeeds.
#[test]
fn transient_fault_needs_retries_to_clear() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start_server(&fabric, server_node, &cfg);

    // Without retries the injected failure is fatal. (Refusals are
    // cumulative and consumed one per attempt, so inject exactly as many
    // as this phase will use up.)
    let none_cfg = RpcConfig {
        retry: RetryPolicy::none(),
        ..cfg.clone()
    };
    let client = Client::new(&fabric, fabric.add_node(), none_cfg).unwrap();
    fabric.fail_next_connects(server.addr(), 1);
    let err = ping(&client, &server).unwrap_err();
    assert!(
        matches!(err, RpcError::Io(_)),
        "expected connect refusal, got {err:?}"
    );
    assert!(
        err.is_retryable(),
        "a refused connect must be classified retryable"
    );
    let counters = client.metrics().counters();
    assert_eq!(counters.retries, 0, "RetryPolicy::none must not retry");
    assert_eq!(counters.failed_calls, 1);
    assert_eq!(fabric.pending_connect_failures(server.addr()), 0);
    client.shutdown();

    // With three attempts and backoff, the same fault heals in-flight.
    let retry_cfg = RpcConfig {
        retry: RetryPolicy::exponential(3, Duration::from_millis(5)),
        ..cfg.clone()
    };
    let client = Client::new(&fabric, fabric.add_node(), retry_cfg).unwrap();
    fabric.fail_next_connects(server.addr(), 2);
    let resp = ping(&client, &server).expect("third attempt should connect and succeed");
    assert_eq!(resp.0, vec![1, 2, 3]);
    let counters = client.metrics().counters();
    assert_eq!(counters.retries, 2, "both refusals should be retried");
    assert_eq!(counters.failed_calls, 0);
    client.shutdown();
    server.stop();
}

/// 100 connect → call → disconnect cycles: the server's live-connection
/// table must drain back to zero (no leaked conns or Reader threads),
/// while the lifetime counter records every visit.
#[test]
fn server_survives_connection_churn_without_leaking() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start_server(&fabric, server_node, &cfg);

    for i in 0..100 {
        let client = Client::new(&fabric, client_node, cfg.clone()).unwrap();
        let resp = ping(&client, &server).unwrap();
        assert_eq!(resp.0, vec![1, 2, 3], "cycle {i}");
        client.shutdown();
    }

    assert_eq!(server.lifetime_connection_count(), 100);
    // Readers notice the closed transports within their idle slice.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connection_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.connection_count(),
        0,
        "live connections must drain after clients disconnect"
    );
    server.stop();
}

/// `Server::stop` is idempotent and safe to race with in-flight calls.
#[test]
fn server_stop_is_idempotent_with_inflight_calls() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_secs(2),
        retry: RetryPolicy::none(),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    ping(&client, &server).unwrap();

    // Callers hammering the server while it stops must get clean errors
    // (or late successes), never panics or hangs.
    let callers: Vec<_> = (0..4)
        .map(|_| {
            let client = client.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = client.call::<_, BytesWritable>(
                        addr,
                        "test.EchoProtocol",
                        "pingpong",
                        &BytesWritable(vec![9; 64]),
                    );
                }
            })
        })
        .collect();

    server.stop();
    server.stop(); // second stop must be a no-op
    for t in callers {
        t.join().expect("caller panicked during server stop");
    }
    server.stop(); // and after the dust settles, still a no-op
    client.shutdown();
}

/// Killing the server's node mid-call yields Timeout/ConnectionClosed/Io
/// promptly — never a hang past the call timeout — and a later call after
/// reviving the address keeps working via reconnect.
#[test]
fn killed_server_fails_calls_promptly() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(500),
        retry: RetryPolicy::none(),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    ping(&client, &server).unwrap();

    fabric.kill_node(server_node);
    let start = Instant::now();
    let err = ping(&client, &server).unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "call against a dead server must fail promptly, took {:?}",
        start.elapsed()
    );
    assert!(
        matches!(
            err,
            RpcError::Timeout | RpcError::ConnectionClosed | RpcError::Io(_)
        ),
        "expected a transport-death error, got {err:?}"
    );
    client.shutdown();
    drop(server); // the dead node's server: stop() must not hang either
}

/// A partition heals between attempts: the retry policy carries the call
/// across the outage, reconnecting and counting the recovery.
#[test]
fn retry_reconnects_across_partition() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    // Partition failures are immediate (BrokenPipe), so attempt N lands
    // at roughly the sum of the first N-1 backoffs: ~0, 100, 300, 700 ms
    // (±20% jitter). Healing at 400 ms guarantees some attempt ≥ 4 runs
    // after the heal while the six-attempt budget is far from exhausted.
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(300),
        retry: RetryPolicy::exponential(6, Duration::from_millis(100)),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, client_node, cfg).unwrap();
    ping(&client, &server).unwrap();

    fabric.partition(client_node, server_node);
    let healer = {
        let fabric = fabric.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            fabric.heal(client_node, server_node);
        })
    };
    let resp = ping(&client, &server).expect("call should survive a healed partition");
    assert_eq!(resp.0, vec![1, 2, 3]);
    healer.join().unwrap();

    let counters = client.metrics().counters();
    assert!(
        counters.retries >= 1,
        "outage should have cost at least one retry"
    );
    assert!(
        counters.reconnects >= 1,
        "recovery should re-establish the connection"
    );
    assert_eq!(counters.failed_calls, 0);
    client.shutdown();
    server.stop();
}

/// The per-call deadline bounds total time across attempts: with an
/// unreachable server and a generous attempt budget, the call returns
/// once the deadline is spent — not after `max_attempts × call_timeout`.
#[test]
fn deadline_caps_total_time_across_attempts() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_secs(10),
        retry: RetryPolicy::exponential(50, Duration::from_millis(10))
            .with_deadline(Duration::from_millis(700)),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    ping(&client, &server).unwrap();

    // Black-hole the link: sends vanish silently, so every attempt rides
    // its receive wait — which the deadline must cap.
    fabric.set_link_fault(client.node(), server_node, FaultSpec::drop_all());
    let start = Instant::now();
    let err = ping(&client, &server).unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        err.is_retryable(),
        "expected a transport error, got {err:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(600),
        "deadline budget should be substantially used, only took {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must cap the call well under call_timeout, took {elapsed:?}"
    );
    assert_eq!(client.metrics().counters().failed_calls, 1);
    client.shutdown();
    server.stop();
}

/// A corrupt frame (garbage bytes on the raw stream) costs the client
/// that sent it its connection — counted in `frame_errors` — while other
/// clients keep working. Direct stream access sidesteps the RPC client,
/// so this drives the server's Reader exactly like a misbehaving peer.
#[test]
fn corrupt_frame_drops_connection_and_counts() {
    use std::io::Write;

    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start_server(&fabric, server_node, &cfg);
    let good_client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    ping(&good_client, &server).unwrap();

    // A raw connection that speaks garbage: a plausible length prefix
    // followed by bytes that cannot parse as a request header.
    let rogue_node = fabric.add_node();
    let rogue = simnet::SimStream::connect(&fabric, rogue_node, server.addr()).unwrap();
    let mut frame = 64u32.to_be_bytes().to_vec();
    frame.extend_from_slice(&[0xff; 64]);
    (&rogue).write_all(&frame).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().counters().frame_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.metrics().counters().frame_errors, 1);

    // The rogue connection dies; the well-behaved client is unaffected.
    let gone = Instant::now() + Duration::from_secs(5);
    while server.connection_count() > 1 && Instant::now() < gone {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.connection_count(),
        1,
        "only the rogue connection may be dropped"
    );
    ping(&good_client, &server).unwrap();
    good_client.shutdown();
    server.stop();
}

/// Echo also works under RPCoIB with a retry policy configured, and a
/// server restart heals transparently through the default policy.
#[test]
fn rpcoib_client_survives_server_restart() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::rpcoib();
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    ping(&client, &server).unwrap();
    server.stop();

    let server = start_server(&fabric, server_node, &cfg);
    let resp = ping(&client, &server).expect("default policy should heal a stale connection");
    assert_eq!(resp.0, vec![1, 2, 3]);
    assert!(client.metrics().counters().reconnects >= 1);
    client.shutdown();
    server.stop();
}

/// Non-retryable errors must not consume retry budget: a remote
/// exception fails immediately even under an aggressive policy.
#[test]
fn remote_errors_are_not_retried() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        retry: RetryPolicy::exponential(5, Duration::from_millis(100)),
        ..RpcConfig::socket()
    };
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    let start = Instant::now();
    let err = client
        .call::<_, Text>(
            server.addr(),
            "test.EchoProtocol",
            "fail",
            &Text("x".into()),
        )
        .unwrap_err();
    assert!(matches!(err, RpcError::Remote(_)), "got {err:?}");
    assert!(
        start.elapsed() < Duration::from_millis(100),
        "remote exceptions must fail without backoff sleeps"
    );
    let counters = client.metrics().counters();
    assert_eq!(counters.retries, 0);
    assert_eq!(counters.failed_calls, 1);
    client.shutdown();
    server.stop();
}

/// A deliberately *non-idempotent* service: every executed `incr` bumps
/// the counter, so duplicate executions are directly observable. `slow*`
/// methods stall in the handler for `delay` first.
struct CounterService {
    applied: Arc<AtomicU64>,
    delay: Duration,
}

impl RpcService for CounterService {
    fn protocol(&self) -> &'static str {
        "test.CounterProtocol"
    }
    fn call(
        &self,
        method: &str,
        _param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "incr" => {
                let now = self.applied.fetch_add(1, Ordering::AcqRel) + 1;
                Ok(Box::new(LongWritable(now as i64)))
            }
            "slow_incr" => {
                std::thread::sleep(self.delay);
                let now = self.applied.fetch_add(1, Ordering::AcqRel) + 1;
                Ok(Box::new(LongWritable(now as i64)))
            }
            "slow" => {
                std::thread::sleep(self.delay);
                Ok(Box::new(LongWritable(0)))
            }
            "get" => Ok(Box::new(LongWritable(
                self.applied.load(Ordering::Acquire) as i64
            ))),
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start_counter_server(
    fabric: &Fabric,
    node: NodeId,
    cfg: &RpcConfig,
    delay: Duration,
) -> (Server, Arc<AtomicU64>) {
    let applied = Arc::new(AtomicU64::new(0));
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(CounterService {
        applied: Arc::clone(&applied),
        delay,
    }));
    let server = Server::start(fabric, node, 8020, cfg.clone(), registry).unwrap();
    (server, applied)
}

fn counter_call(client: &Client, server: &Server, method: &str) -> Result<LongWritable, RpcError> {
    client.call(
        server.addr(),
        "test.CounterProtocol",
        method,
        &LongWritable(1),
    )
}

/// The at-most-once acceptance scenario: a lossy link forces retries of a
/// non-idempotent call, and the retry cache must ensure each logical call
/// is applied **exactly once** — the drops cost latency, never double
/// execution.
fn exactly_once_under_drops(fabric: Fabric, base: RpcConfig) {
    let _wd = watchdog("exactly_once_under_drops", Duration::from_secs(120));
    fabric.set_fault_seed(42);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(250),
        retry: RetryPolicy::exponential(10, Duration::from_millis(10)),
        ..base
    };
    let (server, applied) = start_counter_server(&fabric, server_node, &cfg, Duration::ZERO);
    let client = Client::new(&fabric, client_node, cfg).unwrap();

    // Warm the connection over a clean link, then make it lossy in both
    // directions: requests, responses, reconnect handshakes — anything
    // can vanish.
    counter_call(&client, &server, "get").unwrap();
    fabric.set_link_fault(client_node, server_node, FaultSpec::lossy(0.3));
    fabric.set_link_fault(server_node, client_node, FaultSpec::lossy(0.3));

    const CALLS: u64 = 20;
    for i in 0..CALLS {
        let resp = counter_call(&client, &server, "incr")
            .unwrap_or_else(|e| panic!("incr #{i} exhausted retries: {e:?}"));
        assert!(resp.0 >= 1);
    }

    // Heal the link and audit the server-side ground truth.
    fabric.set_link_fault(client_node, server_node, FaultSpec::lossy(0.0));
    fabric.set_link_fault(server_node, client_node, FaultSpec::lossy(0.0));
    let seen = counter_call(&client, &server, "get").unwrap();
    assert_eq!(
        applied.load(Ordering::Acquire),
        CALLS,
        "every incr must execute exactly once despite drops and retries"
    );
    assert_eq!(seen.0 as u64, CALLS);

    let client_counters = client.metrics().counters();
    let server_counters = server.metrics().counters();
    assert!(
        client_counters.retries > 0,
        "the lossy link should have forced at least one retry"
    );
    assert!(
        server_counters.retry_cache_hits + server_counters.retry_cache_parked > 0
            || client_counters.reconnects > 0,
        "duplicate suppression (or reconnects) should be visible in the counters"
    );
    client.shutdown();
    server.stop();
}

#[test]
fn exactly_once_under_drops_socket() {
    exactly_once_under_drops(Fabric::new(model::IPOIB_QDR), RpcConfig::socket());
}

#[test]
fn exactly_once_under_drops_verbs() {
    exactly_once_under_drops(Fabric::new(model::IB_QDR_VERBS), RpcConfig::rpcoib());
}

/// A retry that lands while the first attempt is still executing must be
/// *parked*, not re-executed: the handler runs once and its response is
/// fanned out to the duplicate.
#[test]
fn duplicate_of_inflight_call_parks_instead_of_reexecuting() {
    let _wd = watchdog("duplicate_parks", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        // The handler takes 400 ms; the first attempt gives up at 300 ms
        // and the retry arrives while the call is still executing.
        call_timeout: Duration::from_millis(300),
        retry: RetryPolicy::exponential(3, Duration::from_millis(10)),
        ..base
    };
    let (server, applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(400));
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    let resp = counter_call(&client, &server, "slow_incr")
        .expect("the retry should collect the first attempt's response");
    assert_eq!(resp.0, 1);
    assert_eq!(
        applied.load(Ordering::Acquire),
        1,
        "the duplicate attempt must not re-execute the increment"
    );
    assert!(
        server.metrics().counters().retry_cache_parked >= 1,
        "the duplicate should have parked behind the in-flight call"
    );
    client.shutdown();
    server.stop();
}

/// A response that arrives after its caller timed out is not an error:
/// it is counted (`late_responses`) and the connection keeps working —
/// no reconnect, no corruption of later calls.
#[test]
fn late_response_is_counted_and_connection_survives() {
    let _wd = watchdog("late_response", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        call_timeout: Duration::from_millis(150),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, _applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(400));
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    let err = counter_call(&client, &server, "slow").unwrap_err();
    assert!(matches!(err, RpcError::Timeout), "got {err:?}");

    // The server finishes at ~400 ms and the response lands on a pending
    // table with no matching entry.
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.metrics().counters().late_responses == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(client.metrics().counters().late_responses, 1);

    // Same connection, next call: works.
    let resp = counter_call(&client, &server, "get").unwrap();
    assert_eq!(resp.0, 0);
    assert_eq!(
        client.metrics().counters().reconnects,
        0,
        "a late response must not cost the connection"
    );
    client.shutdown();
    server.stop();
}

/// Overload: with one executing call and a one-slot call queue, a third
/// concurrent call must be *rejected* as retryable `ServerBusy` — fast,
/// because the Reader refuses admission instead of blocking on the full
/// queue — while the two admitted calls complete normally.
///
/// On the M:N runtime `handlers` no longer bounds execution (in-flight
/// calls cost frames, not threads), so the same one-at-a-time shape is
/// pinned through `max_inflight_calls` — the overload *contract*
/// (bounded queue + bounded in-flight ⇒ prompt retryable rejection,
/// never execution) is identical under both engines.
#[test]
fn queue_overflow_rejects_with_server_busy() {
    let _wd = watchdog("server_busy", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let mut cfg = RpcConfig {
        handlers: 1,
        call_queue_len: 1,
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..base
    };
    if cfg.handler_runtime == rpcoib::HandlerRuntime::Mn {
        cfg.handler_workers = 1;
        cfg.max_inflight_calls = 1;
    }
    let (server, applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(500));
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();

    // A occupies the single handler; B occupies the single queue slot.
    let spawn_slow = |delay_ms: u64| {
        let client = client.clone();
        let addr = server.addr();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(delay_ms));
            client.call::<_, LongWritable>(
                addr,
                "test.CounterProtocol",
                "slow_incr",
                &LongWritable(1),
            )
        })
    };
    let a = spawn_slow(0);
    let b = spawn_slow(100);

    // C: a separate client (fresh connection, same overloaded queue)
    // must be turned away promptly — the Reader is not allowed to block.
    std::thread::sleep(Duration::from_millis(250));
    let busy_client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    let start = Instant::now();
    let err = counter_call(&busy_client, &server, "incr").unwrap_err();
    let elapsed = start.elapsed();
    assert!(matches!(err, RpcError::ServerBusy), "got {err:?}");
    assert!(
        err.is_retryable(),
        "a busy rejection never executed and must be retryable"
    );
    assert!(
        elapsed < Duration::from_millis(400),
        "busy rejection must be immediate, took {elapsed:?}"
    );

    assert!(a.join().unwrap().is_ok(), "admitted call A must complete");
    assert!(b.join().unwrap().is_ok(), "queued call B must complete");
    assert_eq!(
        applied.load(Ordering::Acquire),
        2,
        "the rejected call must never have executed"
    );
    assert!(server.metrics().counters().busy_rejections >= 1);
    client.shutdown();
    busy_client.shutdown();
    server.stop();
}

/// Graceful drain: calls already admitted (executing or queued) complete
/// and their responses are delivered; only then does the server stop.
/// New work after the drain is refused.
#[test]
fn drain_completes_queued_calls() {
    let _wd = watchdog("drain_completes", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        handlers: 2,
        call_timeout: Duration::from_secs(10),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(150));
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    // Six slow calls against two handlers: three waves, ~450 ms of queued
    // work at drain time.
    let callers: Vec<_> = (0..6)
        .map(|_| {
            let client = client.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                client.call::<_, LongWritable>(
                    addr,
                    "test.CounterProtocol",
                    "slow_incr",
                    &LongWritable(1),
                )
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let drained = server.drain(Duration::from_secs(10));
    assert!(drained, "all admitted work fits well inside the deadline");

    for (i, t) in callers.into_iter().enumerate() {
        let resp = t.join().unwrap();
        assert!(resp.is_ok(), "queued call {i} must survive drain: {resp:?}");
    }
    assert_eq!(applied.load(Ordering::Acquire), 6);

    // The drained server accepts nothing new.
    assert!(counter_call(&client, &server, "get").is_err());
    client.shutdown();
}

/// A drain deadline shorter than the queued work cuts over to an abrupt
/// stop and reports the truncation.
#[test]
fn drain_deadline_cuts_off_stuck_work() {
    let _wd = watchdog("drain_deadline", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        handlers: 1,
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, _applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_secs(2));
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    let slow = {
        let client = client.clone();
        let addr = server.addr();
        std::thread::spawn(move || {
            client.call::<_, LongWritable>(addr, "test.CounterProtocol", "slow", &LongWritable(1))
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    let drained = server.drain(Duration::from_millis(200));
    assert!(!drained, "a 2 s handler cannot drain in 200 ms");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "an expired drain must not wait for the stuck handler"
    );
    let _ = slow.join().unwrap(); // cut off by the abrupt stop: any error is fine
    client.shutdown();
}

/// Drain under active multi-tenant load: a flooder saturating its quota
/// and a light tenant both have calls in flight when `drain` begins.
/// Every call must reach a definite outcome — completed, busy-rejected,
/// expired, timed out, or failed by the closing connection — never a
/// silent drop, and the server-side applied count must equal exactly the
/// light tenant's successes (at-most-once survives the drain).
#[test]
fn drain_under_multi_tenant_load_leaves_no_call_unanswered() {
    let _wd = watchdog("drain_multi_tenant", Duration::from_secs(60));
    let (fabric, base) = env_transport();
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        handlers: 2,
        call_queue_len: 16,
        tenant_quota: 4,
        call_timeout: Duration::from_secs(2),
        retry: RetryPolicy::none(),
        ..base
    };
    let (server, applied) =
        start_counter_server(&fabric, server_node, &cfg, Duration::from_millis(50));

    let flooder = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    flooder.force_client_id(71);
    let light = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    light.force_client_id(81);

    let stop_flag = Arc::new(AtomicBool::new(false));
    let spawn_loop = |client: Client, method: &'static str| {
        let addr = server.addr();
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::spawn(move || {
            let mut outcomes: Vec<Result<LongWritable, RpcError>> = Vec::new();
            while !stop_flag.load(Ordering::Acquire) {
                outcomes.push(client.call(addr, "test.CounterProtocol", method, &LongWritable(1)));
                std::thread::sleep(Duration::from_millis(2));
            }
            outcomes
        })
    };
    let flood_threads: Vec<_> = (0..4)
        .map(|_| spawn_loop(flooder.clone(), "slow"))
        .collect();
    let light_thread = spawn_loop(light.clone(), "incr");

    // Both tenants have work executing and queued when the drain begins.
    std::thread::sleep(Duration::from_millis(150));
    let drained = server.drain(Duration::from_secs(10));
    assert!(drained, "admitted work fits well inside the drain deadline");
    stop_flag.store(true, Ordering::Release);

    // Every issued call ended in a definite, explainable outcome.
    let mut light_ok = 0u64;
    let mut audit = |outcomes: Vec<Result<LongWritable, RpcError>>, is_light: bool| {
        for r in outcomes {
            match r {
                Ok(_) => {
                    if is_light {
                        light_ok += 1;
                    }
                }
                Err(
                    RpcError::ServerBusy
                    | RpcError::DeadlineExpired
                    | RpcError::Timeout
                    | RpcError::ConnectionClosed
                    | RpcError::Io(_),
                ) => {}
                Err(e) => panic!("call ended in an unexplainable state: {e:?}"),
            }
        }
    };
    for t in flood_threads {
        audit(t.join().unwrap(), false);
    }
    audit(light_thread.join().unwrap(), true);
    assert!(
        light_ok >= 1,
        "the light tenant must have completed calls before and during drain"
    );
    assert_eq!(
        applied.load(Ordering::Acquire),
        light_ok,
        "at-most-once must survive the drain: applied == light successes"
    );
    flooder.shutdown();
    light.shutdown();
}

/// A pre-handshake (V1) peer — no hello, straight to length-prefixed V1
/// frames — is sniffed as legacy and served: its call executes and the
/// answer comes back in V1 framing. This keeps the "V1 decoded for one
/// release" promise honest over the wire, not just at the codec layer.
#[test]
fn legacy_v1_peer_is_served_without_handshake() {
    use rpcoib::frame::{self, FrameVersion, ResponseStatus};
    use std::io::Write;

    let _wd = watchdog("legacy_v1_peer", Duration::from_secs(60));
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let (server, applied) = start_counter_server(&fabric, server_node, &cfg, Duration::ZERO);

    let legacy_node = fabric.add_node();
    let stream = simnet::SimStream::connect(&fabric, legacy_node, server.addr()).unwrap();

    // A V1 request frame, exactly as the previous release put it on the
    // wire: 4-byte length prefix, then `[i32 call_id][proto][method][param]`.
    let mut body: Vec<u8> = Vec::new();
    frame::write_request_v1(
        &mut body,
        7,
        "test.CounterProtocol",
        "incr",
        &LongWritable(1),
    )
    .unwrap();
    let mut framed = (body.len() as i32).to_be_bytes().to_vec();
    framed.extend_from_slice(&body);
    (&stream).write_all(&framed).unwrap();

    // The answer comes back length-prefixed in V1 framing.
    let mut len = [0u8; 4];
    stream.read_exact_at(&mut len).unwrap();
    let mut resp = vec![0u8; i32::from_be_bytes(len) as usize];
    stream.read_exact_at(&mut resp).unwrap();
    let mut input = resp.as_slice();
    let header = frame::read_response_header(&mut input).unwrap();
    assert_eq!(header.version, FrameVersion::V1);
    assert_eq!(header.seq, 7, "V1 response echoes the call id");
    assert_eq!(header.status, ResponseStatus::Ok);
    let mut value = LongWritable::default();
    value.read_fields(&mut input).unwrap();
    assert_eq!(value.0, 1);
    assert_eq!(applied.load(Ordering::Acquire), 1);

    // A modern (handshaking) client coexists on the same server.
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    assert_eq!(counter_call(&client, &server, "incr").unwrap().0, 2);
    client.shutdown();
    server.stop();
}

/// Per-connection response ORDER survives responder batching. A raw V1
/// peer pipelines 8 requests; with a single handler thread, completion
/// order equals request order, and the batched responder sweep — which
/// may drain several ready responses into one gathered send — must put
/// them on the wire in exactly that order. Runs with batching on and
/// off so a regression in either arm is pinned to the sweep logic.
#[test]
fn pipelined_responses_stay_in_request_order_under_batching() {
    use rpcoib::frame::{self, ResponseStatus};
    use std::io::Write;

    let _wd = watchdog("pipelined_order", Duration::from_secs(60));
    for wire_batch in [true, false] {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let server_node = fabric.add_node();
        let cfg = RpcConfig {
            handlers: 1,
            wire_batch,
            ..RpcConfig::socket()
        };
        let (server, applied) = start_counter_server(&fabric, server_node, &cfg, Duration::ZERO);

        let stream = simnet::SimStream::connect(&fabric, fabric.add_node(), server.addr()).unwrap();
        const PIPELINED: i32 = 8;
        // All 8 requests hit the wire before any response is read: the
        // responder's ready queue actually fills, so a batched sweep
        // really does gather several responses per send.
        let mut burst: Vec<u8> = Vec::new();
        for seq in 0..PIPELINED {
            let mut body: Vec<u8> = Vec::new();
            frame::write_request_v1(
                &mut body,
                seq,
                "test.CounterProtocol",
                "incr",
                &LongWritable(1),
            )
            .unwrap();
            burst.extend_from_slice(&(body.len() as i32).to_be_bytes());
            burst.extend_from_slice(&body);
        }
        (&stream).write_all(&burst).unwrap();

        for seq in 0..PIPELINED {
            let mut len = [0u8; 4];
            stream.read_exact_at(&mut len).unwrap();
            let mut resp = vec![0u8; i32::from_be_bytes(len) as usize];
            stream.read_exact_at(&mut resp).unwrap();
            let mut input = resp.as_slice();
            let header = frame::read_response_header(&mut input).unwrap();
            assert_eq!(
                header.seq, seq as i64,
                "batch={wire_batch}: response #{seq} out of order"
            );
            assert_eq!(header.status, ResponseStatus::Ok);
            let mut value = LongWritable::default();
            value.read_fields(&mut input).unwrap();
            assert_eq!(
                value.0,
                (seq + 1) as i64,
                "batch={wire_batch}: single-handler completion order broken"
            );
        }
        assert_eq!(applied.load(Ordering::Acquire), PIPELINED as u64);
        drop(stream);
        server.stop();
    }
}

/// The handshake's assign-on-zero path: a client that presents id 0 is
/// handed a server-minted identity in the ack and must *adopt* it — the
/// frames it then sends carry the assigned id, so retry caching engages.
#[test]
fn server_assigned_client_id_is_adopted() {
    let _wd = watchdog("assigned_id", Duration::from_secs(60));
    let (fabric, cfg) = env_transport();
    let server_node = fabric.add_node();
    let (server, applied) = start_counter_server(&fabric, server_node, &cfg, Duration::ZERO);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    client.force_client_id(0);

    assert_eq!(counter_call(&client, &server, "incr").unwrap().0, 1);
    let adopted = client.client_id();
    assert_ne!(adopted, 0, "client must adopt the server-assigned id");
    assert!(
        server.retry_cache_len() >= 1,
        "calls under the adopted id must be retry-cached"
    );
    assert_eq!(counter_call(&client, &server, "incr").unwrap().0, 2);
    assert_eq!(client.client_id(), adopted, "id is stable once adopted");
    assert_eq!(applied.load(Ordering::Acquire), 2);
    client.shutdown();
    server.stop();
}

/// Regression for the old `i32` call-id counter, which wrapped negative
/// after 2³¹ calls and collided with the V2 sentinel space: sequence
/// numbers are `i64` now, and calls crossing the old boundary just work.
#[test]
fn sequence_numbers_survive_i32_wraparound() {
    let _wd = watchdog("seq_wrap", Duration::from_secs(60));
    let (fabric, cfg) = env_transport();
    let server_node = fabric.add_node();
    let (server, applied) = start_counter_server(&fabric, server_node, &cfg, Duration::ZERO);
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    assert_ne!(client.client_id(), 0);

    client.force_next_seq(i64::from(i32::MAX) - 2);
    for i in 0..5 {
        let resp = counter_call(&client, &server, "incr")
            .unwrap_or_else(|e| panic!("call {i} across the i32 boundary failed: {e:?}"));
        assert_eq!(resp.0, i + 1);
    }
    assert_eq!(applied.load(Ordering::Acquire), 5);
    assert_eq!(client.metrics().counters().failed_calls, 0);
    client.shutdown();
    server.stop();
}

// ---------------------------------------------------------------------------
// Retry-cache generation safety under contention. Duplicate calls race the
// original's completion, capacity eviction, and TTL expiry; whatever wins,
// a Replay must never surface a response generation older than the last
// completion the duplicate could already have observed.
// ---------------------------------------------------------------------------

#[test]
fn retry_cache_never_replays_stale_generation_under_contention() {
    use rpcoib::{Admission, MetricsRegistry, RetryCache};

    let _guard = watchdog(
        "retry_cache_never_replays_stale_generation_under_contention",
        Duration::from_secs(60),
    );

    // More keys than capacity so completed entries are constantly evicted
    // oldest-first while duplicates for them are still arriving.
    const KEYS: usize = 16;
    const CAPACITY: usize = 8;
    const THREADS: u64 = 4;
    const ITERS: u64 = 400;

    let cache = Arc::new(RetryCache::<u32>::new(
        Duration::from_millis(25),
        CAPACITY,
        MetricsRegistry::new(false),
    ));
    // Per-key generation source and high-water mark of completed
    // generations. `last_done` only ever lags the cache's own state, so
    // reading it *before* begin() gives a sound lower bound for what a
    // replay is allowed to return.
    let gens: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let last_done: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let parked = Arc::new(AtomicU64::new(0));
    let replayed = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let gens = Arc::clone(&gens);
            let last_done = Arc::clone(&last_done);
            let parked = Arc::clone(&parked);
            let replayed = Arc::clone(&replayed);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (t + 1);
                for _ in 0..ITERS {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let k = (rng % KEYS as u64) as usize;
                    let key = (0u64, k as i64);
                    let low = last_done[k].load(Ordering::SeqCst);
                    match cache.begin(key, || t as u32) {
                        Admission::Execute => {
                            // Execute windows for one key are mutually
                            // exclusive (duplicates park), so generations
                            // are completed in increasing order per key.
                            let tag = gens[k].fetch_add(1, Ordering::SeqCst) + 1;
                            if tag.is_multiple_of(13) {
                                let waiters = cache.abort(key);
                                delivered.fetch_add(waiters.len() as u64, Ordering::SeqCst);
                            } else {
                                if tag.is_multiple_of(7) {
                                    // Widen the in-flight window so
                                    // duplicates actually park on it.
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                let waiters =
                                    cache.complete(key, Arc::new(tag.to_be_bytes().to_vec()));
                                last_done[k].fetch_max(tag, Ordering::SeqCst);
                                delivered.fetch_add(waiters.len() as u64, Ordering::SeqCst);
                            }
                        }
                        Admission::Parked => {
                            parked.fetch_add(1, Ordering::SeqCst);
                        }
                        Admission::Replay(bytes) => {
                            let tag = u64::from_be_bytes(
                                bytes.as_slice().try_into().expect("8-byte generation tag"),
                            );
                            assert!(
                                tag >= low,
                                "key {k}: replayed generation {tag} is older than \
                                 generation {low} already completed before this \
                                 duplicate began"
                            );
                            replayed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Every execute window was resolved, so nothing is in flight and the
    // eviction order keeps the cache bounded by its capacity.
    assert!(
        cache.len() <= CAPACITY,
        "cache holds {} entries, capacity is {CAPACITY}",
        cache.len()
    );
    // Every parked waiter must have been handed back by exactly one
    // complete() or abort() — none lost, none duplicated.
    assert_eq!(
        delivered.load(Ordering::SeqCst),
        parked.load(Ordering::SeqCst),
        "parked waiters were dropped or double-delivered"
    );
    // The schedule actually exercised the interesting paths.
    assert!(
        replayed.load(Ordering::SeqCst) > 0,
        "no duplicate ever hit a cached response"
    );
    assert!(
        parked.load(Ordering::SeqCst) > 0,
        "no duplicate ever parked on an in-flight call"
    );
}

#[test]
fn retry_cache_ttl_expiry_reexecutes_instead_of_replaying_stale() {
    use rpcoib::{Admission, MetricsRegistry, RetryCache};

    let cache = RetryCache::<u32>::new(Duration::from_millis(10), 4, MetricsRegistry::new(false));
    let key = (7u64, 1i64);

    assert!(matches!(cache.begin(key, || 0), Admission::Execute));
    cache.complete(key, Arc::new(vec![1]));
    match cache.begin(key, || 0) {
        Admission::Replay(bytes) => assert_eq!(*bytes, vec![1]),
        other => panic!("within TTL the duplicate must replay, got {other:?}"),
    }

    std::thread::sleep(Duration::from_millis(25));

    // Past the TTL the cached generation is gone: the duplicate
    // re-executes, and from then on only the fresh generation replays.
    assert!(matches!(cache.begin(key, || 0), Admission::Execute));
    cache.complete(key, Arc::new(vec![2]));
    match cache.begin(key, || 0) {
        Admission::Replay(bytes) => assert_eq!(*bytes, vec![2]),
        other => panic!("fresh generation must replay after re-execution, got {other:?}"),
    }
}

/// The sharded pipeline's correctness contract, cross-shard: with two
/// reader and two responder shards, two connections land on *different*
/// shards (conn ids are assigned in accept order and routed `id % N`),
/// and
///
/// * a parked duplicate on one connection still fans out exactly once;
/// * a non-idempotent workload split across both connections applies
///   exactly once per logical call under seeded link faults;
/// * concurrent callers multiplexed on one connection always get *their
///   own* response back — the per-connection responder routing never
///   lets two shards interleave writes on a single connection.
///
/// All three invariants must hold whether the responder sweeps one
/// response per send or gathers a whole batch: this runs under the
/// `RPC_BATCH` environment toggle, so CI exercises both arms.
#[test]
fn cross_shard_ordering_and_at_most_once() {
    let _wd = watchdog("cross_shard", Duration::from_secs(120));
    let (fabric, base) = env_transport();
    fabric.set_fault_seed(7);
    let server_node = fabric.add_node();
    let cfg = RpcConfig {
        reader_shards: 2,
        responder_shards: 2,
        // The slow_incr handler takes 400 ms: the first attempt times out
        // and its retry parks behind the in-flight execution.
        call_timeout: Duration::from_millis(300),
        retry: RetryPolicy::exponential(10, Duration::from_millis(10)),
        ..base
    };
    let applied = Arc::new(AtomicU64::new(0));
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(CounterService {
        applied: Arc::clone(&applied),
        delay: Duration::from_millis(400),
    }));
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();

    // Two clients = two connections; sequential warm-ups pin the accept
    // order, so conn 0 and conn 1 sit on different shards of both kinds.
    let client_a = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    counter_call(&client_a, &server, "get").unwrap();
    let client_b = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    counter_call(&client_b, &server, "get").unwrap();

    // Parked duplicate on connection A while connection B (on the other
    // responder shard) keeps working.
    let resp = counter_call(&client_a, &server, "slow_incr")
        .expect("the retry should collect the first attempt's response");
    assert_eq!(resp.0, 1);
    assert_eq!(
        applied.load(Ordering::Acquire),
        1,
        "the parked duplicate must not re-execute"
    );
    assert!(
        server.metrics().counters().retry_cache_parked >= 1,
        "the duplicate should have parked behind the in-flight call"
    );

    // Seeded faults on both links; each connection drives a sequential
    // stream of non-idempotent calls from its own thread.
    for &node in &[client_a.node(), client_b.node()] {
        fabric.set_link_fault(node, server_node, FaultSpec::lossy(0.2));
        fabric.set_link_fault(server_node, node, FaultSpec::lossy(0.2));
    }
    const CALLS_PER_CONN: u64 = 10;
    let workers: Vec<_> = [client_a.clone(), client_b.clone()]
        .into_iter()
        .map(|client| {
            let server_addr = server.addr();
            std::thread::spawn(move || {
                for i in 0..CALLS_PER_CONN {
                    let resp: LongWritable = client
                        .call(
                            server_addr,
                            "test.CounterProtocol",
                            "incr",
                            &LongWritable(1),
                        )
                        .unwrap_or_else(|e| panic!("incr #{i} exhausted retries: {e:?}"));
                    assert!(resp.0 >= 1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    for &node in &[client_a.node(), client_b.node()] {
        fabric.set_link_fault(node, server_node, FaultSpec::lossy(0.0));
        fabric.set_link_fault(server_node, node, FaultSpec::lossy(0.0));
    }
    assert_eq!(
        applied.load(Ordering::Acquire),
        1 + 2 * CALLS_PER_CONN,
        "every incr must apply exactly once across both shard pairs"
    );

    // Clean links again: hammer one connection with concurrent callers.
    // If responder routing ever let two shards write one connection,
    // interleaved frames would corrupt these echoes.
    let hammers: Vec<_> = (0..4)
        .map(|t| {
            let client = client_a.clone();
            let server_addr = server.addr();
            std::thread::spawn(move || {
                for i in 0..10u8 {
                    let payload: Vec<u8> = vec![t as u8 * 16 + i; 64 + i as usize];
                    let resp: BytesWritable = client
                        .call(
                            server_addr,
                            "test.EchoProtocol",
                            "pingpong",
                            &BytesWritable(payload.clone()),
                        )
                        .unwrap();
                    assert_eq!(resp.0, payload, "response routed to the wrong caller");
                }
            })
        })
        .collect();
    for h in hammers {
        h.join().unwrap();
    }

    // Both shards of each kind must actually have seen work.
    let shards = server.metrics_snapshot().shards;
    for role in ["reader", "responder"] {
        let busy: Vec<_> = shards
            .iter()
            .filter(|s| s.role.name() == role && s.processed > 0)
            .collect();
        assert!(
            busy.len() >= 2,
            "{role} work was not spread across shards: {shards:?}"
        );
    }

    client_a.shutdown();
    client_b.shutdown();
    server.stop();
}

// ---------------------------------------------------------------------------
// Connection-scale resilience: accept backpressure, churn soak, drain/restart.
// These drive the accept path below the `Client` layer so they can park raw
// connections, observe the busy ack directly, and count reader-side residue.
// ---------------------------------------------------------------------------

/// A raw parked connection held open against a server: a handshaken
/// stream (socket) or a handshaken stream plus its bootstrapped verbs
/// conn. Dropping it releases the client end. On the socket transport
/// the server sees EOF immediately; on verbs there is no in-band
/// teardown, so churn tests pair this with `Fabric::kill_node` and the
/// reader's liveness sweep.
struct ParkedConn {
    _stream: SimStream,
    _conn: Option<RdmaConn>,
}

fn park_conn(
    fabric: &Fabric,
    node: NodeId,
    addr: simnet::SimAddr,
    cfg: &RpcConfig,
    ctx: Option<&IbContext>,
) -> Result<ParkedConn, RpcError> {
    let stream = SimStream::connect(fabric, node, addr).map_err(|e| RpcError::Io(e.to_string()))?;
    client_hello(&stream, 0, 3)?;
    let conn = match ctx {
        Some(ctx) => Some(RdmaConn::bootstrap(&stream, ctx, cfg)?),
        None => None,
    };
    Ok(ParkedConn {
        _stream: stream,
        _conn: conn,
    })
}

fn wait_connection_count(server: &Server, want: usize, limit: Duration, what: &str) {
    let deadline = Instant::now() + limit;
    while server.connection_count() != want {
        assert!(
            Instant::now() < deadline,
            "{what}: connection count stuck at {} (want {want})",
            server.connection_count()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A connect storm past `max_connections` is answered with the
/// retryable busy ack at the accept path — before any handshake work or
/// conn registration — and the rejections are counted. Once the parked
/// population goes away the freed capacity serves new peers again.
#[test]
fn accept_storm_past_max_connections_is_rejected_retryably() {
    let _wd = watchdog("accept_storm", Duration::from_secs(120));
    let (fabric, mut cfg) = env_transport();
    cfg.max_connections = 8;
    cfg.accept_backlog = 4;
    let server_node = fabric.add_node();
    let idle_node = fabric.add_node();
    let server = start_server(&fabric, server_node, &cfg);
    let ctx = cfg
        .ib_enabled
        .then(|| IbContext::new(&fabric, idle_node, &cfg).unwrap());

    // Fill every admission slot with parked conns.
    let parked: Vec<ParkedConn> = (0..8)
        .map(|_| park_conn(&fabric, idle_node, server.addr(), &cfg, ctx.as_ref()).unwrap())
        .collect();
    wait_connection_count(&server, 8, Duration::from_secs(30), "fill");

    // The storm: every further connect must get the busy ack, and it
    // must be marked retryable (the peer did no work on our behalf).
    for i in 0..5 {
        match park_conn(&fabric, idle_node, server.addr(), &cfg, ctx.as_ref()) {
            Err(e @ RpcError::ServerBusy) => {
                assert!(e.is_retryable(), "busy ack must be retryable")
            }
            Err(other) => panic!("storm conn {i}: expected ServerBusy, got {other:?}"),
            Ok(_) => panic!("storm conn {i} was admitted past max_connections"),
        }
    }
    let rejected = server.metrics_snapshot().counters.accept_rejections;
    assert!(rejected >= 5, "accept_rejections = {rejected}, want >= 5");
    assert_eq!(
        server.connection_count(),
        8,
        "rejected conns must not register"
    );
    assert_eq!(server.lifetime_connection_count(), 8);

    // Release the population. Socket conns EOF on drop; verbs conns are
    // only observable as dead via the fabric, through the liveness sweep.
    drop(parked);
    if cfg.ib_enabled {
        fabric.kill_node(idle_node);
    }
    wait_connection_count(&server, 0, Duration::from_secs(30), "release");

    // Freed capacity admits a real client.
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    assert_eq!(ping(&client, &server).unwrap().0, vec![1, 2, 3]);
    client.shutdown();
    server.stop();
}

/// Seeded connection-churn soak: thousands of conns each run the full
/// accept path and then go away (EOF on socket, node death on verbs).
/// The conn table, the reader slot tables, and the ready queues must
/// all return to empty — no leaked entry, stale token, or gauge residue
/// — and the server must still serve fresh traffic afterwards.
#[test]
fn connection_churn_soak_leaks_nothing() {
    let _wd = watchdog("churn_soak", Duration::from_secs(300));
    let (fabric, mut cfg) = env_transport();
    if cfg.ib_enabled {
        // Shrink per-conn buffer footprints so thousands of bootstraps
        // stay cheap (same shape as the shards figure).
        cfg.rdma_threshold = 2 * 1024;
        cfg.recv_buf_bytes = 4 * 1024;
        cfg.posted_recvs = 2;
        cfg.large_region_bytes = 16 * 1024;
        cfg.prefill_per_class = 1;
    }
    let server_node = fabric.add_node();
    let server = start_server(&fabric, server_node, &cfg);

    // Verbs conns can only be reaped via node death, so each batch gets
    // its own client node that dies when the batch is done.
    let (total, batch) = if cfg.ib_enabled {
        (2_000, 100)
    } else {
        (5_000, 250)
    };
    for _ in 0..total / batch {
        let node = fabric.add_node();
        let ctx = cfg
            .ib_enabled
            .then(|| IbContext::new(&fabric, node, &cfg).unwrap());
        let conns: Vec<ParkedConn> = (0..batch)
            .map(|_| park_conn(&fabric, node, server.addr(), &cfg, ctx.as_ref()).unwrap())
            .collect();
        drop(conns);
        if cfg.ib_enabled {
            fabric.kill_node(node);
        }
    }
    assert_eq!(server.lifetime_connection_count(), total as u64);
    wait_connection_count(&server, 0, Duration::from_secs(60), "soak reap");

    // No residue: every reader slot freed, every ready-queue token
    // consumed, no buffered bytes pinned.
    let snap = server.metrics_snapshot();
    for shard in snap.shards.iter().filter(|s| s.role.name() == "reader") {
        assert_eq!(shard.connections, 0, "reader slot leaked: {shard:?}");
        assert_eq!(shard.queue_depth, 0, "ready-queue token leaked: {shard:?}");
    }
    assert_eq!(
        snap.conn_buffered_bytes, 0,
        "buffered bytes pinned after churn"
    );

    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    assert_eq!(ping(&client, &server).unwrap().0, vec![1, 2, 3]);
    client.shutdown();
    server.stop();
}

/// Draining an *idle* server completes promptly — the readers are woken
/// out of their blocked pops rather than waiting out idle-slice
/// timeouts — and a successor bound to the same address serves both
/// fresh clients and survivors reconnecting over their stale conns.
#[test]
fn idle_drain_is_prompt_and_restart_serves_reconnects() {
    let _wd = watchdog("idle_drain_restart", Duration::from_secs(60));
    let (fabric, cfg) = env_transport();
    let server_node = fabric.add_node();
    let server = start_server(&fabric, server_node, &cfg);
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    assert_eq!(ping(&client, &server).unwrap().0, vec![1, 2, 3]);

    let t0 = Instant::now();
    assert!(
        server.drain(Duration::from_secs(5)),
        "idle drain must succeed"
    );
    server.stop();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "drain+stop of an idle server took {elapsed:?} — blocked pops were not woken"
    );

    let server = start_server(&fabric, server_node, &cfg);
    let fresh = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    assert_eq!(ping(&fresh, &server).unwrap().0, vec![1, 2, 3]);
    // The survivor's cached conn died with the old server; the default
    // policy reconnects it transparently.
    assert_eq!(ping(&client, &server).unwrap().0, vec![1, 2, 3]);
    assert!(client.metrics().counters().reconnects >= 1);
    client.shutdown();
    fresh.shutdown();
    server.stop();
}
