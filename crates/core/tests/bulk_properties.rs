//! Flow-control properties of the one-sided bulk data plane.
//!
//! The multi-slot ring must be *behaviourally equivalent* to the paper's
//! one-deep credit gate: whatever schedule of concurrent large calls is
//! thrown at it, and whatever slot count the region is carved into, the
//! receiver sees exactly the frames that were sent — same contents, and
//! (for a single sender) the same order. Pipelining is allowed to change
//! timing, never delivery. A second property drives the credit window
//! with seeded message drops: the plane may lose frames and starve
//! senders, but every failure must surface as a clean, classified
//! transport error — retryable starvation, timeout, closure, or protocol
//! — and never as a deadlock or a panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rpcoib::intern::method_key;
use rpcoib::transport::rdma::RdmaConn;
use rpcoib::transport::Conn;
use rpcoib::{IbContext, RpcConfig, RpcError};
use simnet::{model, Fabric, FaultSpec, SimAddr, SimListener, SimStream};

/// Geometry small enough that generated schedules actually contend for
/// slots: a 64 KiB region over 1..=8 slots, frames a few slots wide.
fn bulk_cfg(slots: usize, call_timeout: Duration) -> RpcConfig {
    RpcConfig {
        rdma_threshold: 2 * 1024,
        recv_buf_bytes: 8 * 1024,
        large_region_bytes: 64 * 1024,
        large_slots: slots,
        posted_recvs: 8,
        prefill_per_class: 2,
        call_timeout,
        ..RpcConfig::rpcoib()
    }
}

struct Pair {
    fabric: Fabric,
    server_node: simnet::NodeId,
    client_node: simnet::NodeId,
    cli: Arc<RdmaConn>,
    srv: Arc<RdmaConn>,
}

fn pair(cfg: &RpcConfig, seed: u64) -> Pair {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    fabric.set_fault_seed(seed);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let addr = SimAddr::new(server_node, 9700);
    let listener = SimListener::bind(&fabric, addr).unwrap();
    let cli_ctx = IbContext::new(&fabric, client_node, cfg).unwrap();
    let srv_ctx = IbContext::new(&fabric, server_node, cfg).unwrap();
    let f2 = fabric.clone();
    let rpc = cfg.clone();
    let h = thread::spawn(move || {
        let stream = SimStream::connect(&f2, client_node, addr).unwrap();
        RdmaConn::bootstrap(&stream, &cli_ctx, &rpc).unwrap()
    });
    let (srv_stream, _) = listener.accept().unwrap();
    let srv = Arc::new(RdmaConn::bootstrap(&srv_stream, &srv_ctx, cfg).unwrap());
    let cli = Arc::new(h.join().unwrap());
    Pair {
        fabric,
        server_node,
        client_node,
        cli,
        srv,
    }
}

/// Credits flow back through the client's receive path; emulate the
/// engine's Connection thread. Stops once the conn closes.
fn progress_thread(conn: Arc<RdmaConn>) -> thread::JoinHandle<()> {
    thread::spawn(move || loop {
        match conn.recv_msg(Duration::from_millis(100)) {
            Err(RpcError::Timeout) => continue,
            _ => return,
        }
    })
}

/// Abort (not hang) if a schedule wedges: a flow-control deadlock would
/// otherwise stall the whole property suite.
struct Watchdog {
    done: Arc<AtomicBool>,
}

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Acquire) {
                return;
            }
            thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: {name} exceeded {limit:?}, aborting");
        std::process::abort();
    });
    Watchdog { done }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

/// A deterministic frame body: tagged with its sender and sequence
/// number, filled with a recognizable pattern.
fn frame_body(sender: usize, seq: usize, len: usize) -> Vec<u8> {
    let mut body = vec![0u8; len];
    body[0] = 0xAB;
    body[1] = sender as u8;
    body[2] = seq as u8;
    body[3] = (seq >> 8) as u8;
    for (i, b) in body.iter_mut().enumerate().skip(4) {
        *b = ((i + sender + seq) % 251) as u8;
    }
    body
}

/// Run `lens` as concurrent large calls (round-robined over `senders`
/// threads) against a `slots`-slot ring and return the delivered frames.
fn deliver(slots: usize, senders: usize, lens: &[usize], seed: u64) -> Vec<Vec<u8>> {
    simnet::set_fast_forward(true);
    let cfg = bulk_cfg(slots, Duration::from_secs(20));
    let p = pair(&cfg, seed);
    let progress = progress_thread(Arc::clone(&p.cli));
    let total = lens.len();
    let srv = Arc::clone(&p.srv);
    let reader = thread::spawn(move || {
        let mut got = Vec::new();
        while got.len() < total {
            let (payload, _) = srv.recv_msg(Duration::from_secs(20)).unwrap();
            let mut bytes = Vec::with_capacity(payload.len());
            std::io::Read::read_to_end(&mut payload.reader(), &mut bytes).unwrap();
            got.push(bytes);
        }
        got
    });
    let key = method_key("prop.Bulk", "frame");
    let mut handles = Vec::new();
    for t in 0..senders {
        let my: Vec<(usize, usize)> = lens
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % senders == t)
            .collect();
        let cli = Arc::clone(&p.cli);
        handles.push(thread::spawn(move || {
            for (seq, len) in my {
                let body = frame_body(t, seq, len);
                cli.send_msg(key, &mut |out| out.write_bytes(&body))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let got = reader.join().unwrap();
    p.cli.close();
    p.srv.close();
    progress.join().unwrap();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delivered frames are independent of the slot count: a multi-slot
    /// ring and the one-deep gate move exactly the same set of frames,
    /// bytes intact, for the same schedule of concurrent senders.
    #[test]
    fn multi_slot_ring_delivers_the_same_frames_as_one_deep(
        slots_idx in 0usize..3,
        senders in 1usize..4,
        lens in proptest::collection::vec(2100usize..20_000, 1..10),
        seed in any::<u64>(),
    ) {
        let _wd = watchdog("bulk equivalence", Duration::from_secs(120));
        let slots = [2usize, 4, 8][slots_idx];
        let mut expected: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(seq, &len)| frame_body(seq % senders, seq, len))
            .collect();
        expected.sort();
        let mut one_deep = deliver(1, senders, &lens, seed);
        one_deep.sort();
        let mut multi = deliver(slots, senders, &lens, seed);
        multi.sort();
        prop_assert_eq!(&one_deep, &expected, "one-deep arm lost or corrupted frames");
        prop_assert_eq!(&multi, &expected, "multi-slot arm lost or corrupted frames");
    }

    /// A single sender's frames additionally arrive *in order*, at any
    /// slot count — the ring's posting turnstile at work.
    #[test]
    fn single_sender_order_is_preserved(
        slots_idx in 0usize..3,
        lens in proptest::collection::vec(2100usize..20_000, 1..8),
        seed in any::<u64>(),
    ) {
        let _wd = watchdog("bulk ordering", Duration::from_secs(120));
        let slots = [1usize, 4, 8][slots_idx];
        let expected: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(seq, &len)| frame_body(0, seq, len))
            .collect();
        let got = deliver(slots, 1, &lens, seed);
        prop_assert_eq!(&got, &expected);
    }

    /// Seeded drops inside the credit window: frames and credit returns
    /// vanish mid-flight. The plane may lose data, but every outcome must
    /// be a classified error — starvation is retryable, nothing panics,
    /// nothing deadlocks, and delivery never exceeds what was sent.
    #[test]
    fn credit_window_drops_fail_cleanly(
        slots_idx in 0usize..2,
        lens in proptest::collection::vec(2100usize..16_000, 2..8),
        drop_bp in 500u32..3000,
        seed in any::<u64>(),
    ) {
        let _wd = watchdog("bulk faults", Duration::from_secs(120));
        let slots = [1usize, 4][slots_idx];
        simnet::set_fast_forward(true);
        let cfg = bulk_cfg(slots, Duration::from_millis(400));
        let p = pair(&cfg, seed);
        p.fabric.set_link_fault(
            p.client_node,
            p.server_node,
            FaultSpec::default().with_drop_rate(drop_bp as f64 / 10_000.0),
        );
        p.fabric.set_link_fault(
            p.server_node,
            p.client_node,
            FaultSpec::default().with_drop_rate(drop_bp as f64 / 10_000.0),
        );
        let progress = progress_thread(Arc::clone(&p.cli));
        let srv = Arc::clone(&p.srv);
        let sent_flag = Arc::new(AtomicBool::new(false));
        let sent_flag2 = Arc::clone(&sent_flag);
        let reader = thread::spawn(move || {
            let mut delivered = 0usize;
            loop {
                match srv.recv_msg(Duration::from_millis(300)) {
                    Ok(_) => delivered += 1,
                    Err(RpcError::Timeout) => {
                        if sent_flag2.load(Ordering::Acquire) {
                            return delivered;
                        }
                    }
                    // A partially-dropped frame trips validation and tears
                    // the connection down — clean, classified outcomes.
                    Err(RpcError::Protocol(_)) | Err(RpcError::ConnectionClosed) => {
                        return delivered;
                    }
                    Err(e) => panic!("unclassified receive failure: {e:?}"),
                }
            }
        });
        let key = method_key("prop.BulkFault", "frame");
        let mut ok_sends = 0usize;
        for (seq, &len) in lens.iter().enumerate() {
            let body = frame_body(0, seq, len);
            match p.cli.send_msg(key, &mut |out| out.write_bytes(&body)) {
                Ok(_) => ok_sends += 1,
                Err(RpcError::CreditStarved) => {
                    // The signature loss mode: a dropped frame or credit
                    // strands slots. Must be flagged retryable so the
                    // engine's failover can re-issue the call.
                    prop_assert!(RpcError::CreditStarved.is_retryable());
                    prop_assert!(!RpcError::CreditStarved.invalidates_connection());
                }
                Err(RpcError::Timeout) | Err(RpcError::ConnectionClosed) => {}
                Err(e) => panic!("unclassified send failure: {e:?}"),
            }
        }
        sent_flag.store(true, Ordering::Release);
        let delivered = reader.join().unwrap();
        prop_assert!(
            delivered <= ok_sends,
            "delivered {delivered} frames but only {ok_sends} sends succeeded"
        );
        p.cli.close();
        p.srv.close();
        progress.join().unwrap();
    }
}

/// A frame too large for the peer's region is refused up front with a
/// protocol error — on a one-deep gate and on a multi-slot ring alike —
/// and the refusal leaves the connection fully usable.
#[test]
fn oversize_frames_are_rejected_on_both_arms() {
    simnet::set_fast_forward(true);
    for slots in [1usize, 4, 8] {
        let cfg = bulk_cfg(slots, Duration::from_secs(5));
        let p = pair(&cfg, 7);
        let key = method_key("prop.Oversize", "frame");
        let body = vec![9u8; cfg.large_region_bytes + 1];
        let err = p
            .cli
            .send_msg(key, &mut |out| out.write_bytes(&body))
            .unwrap_err();
        assert!(
            matches!(err, RpcError::Protocol(_)),
            "slots={slots}: expected Protocol, got {err:?}"
        );
        // No slots were claimed and nothing was torn down: a normal
        // large frame still goes through.
        let body = frame_body(0, 0, 10_000);
        p.cli
            .send_msg(key, &mut |out| out.write_bytes(&body))
            .unwrap();
        let (payload, _) = p.srv.recv_msg(Duration::from_secs(10)).unwrap();
        let mut bytes = Vec::new();
        std::io::Read::read_to_end(&mut payload.reader(), &mut bytes).unwrap();
        assert_eq!(bytes, body, "slots={slots}");
        p.cli.close();
        p.srv.close();
    }
}
