//! Regression tests for the client's pending-call table lifecycle.
//!
//! Every exit path out of a call attempt — response delivered, timeout,
//! send failure, busy rejection, connection breakage, corrupt response —
//! must leave the pending table empty once the call returns. A leaked
//! entry keeps its reply slot alive for the life of the connection and
//! makes a later wrap of the sequence space deliver a response to the
//! wrong caller.
//!
//! The transport-agnostic tests run on both transports in-process; the
//! corrupt-response test drives a hand-rolled frame through a raw
//! `SimListener`, which only the socket framing permits.

use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rpcoib::{
    handshake, Client, RetryPolicy, RpcConfig, RpcError, RpcService, Server, ServiceRegistry,
};
use simnet::{model, Fabric, SimAddr, SimListener};
use wire::{DataInput, Text, Writable};

/// Both transports, with their matching fabric model.
fn transports() -> Vec<(&'static str, Fabric, RpcConfig)> {
    vec![
        ("socket", Fabric::new(model::IPOIB_QDR), RpcConfig::socket()),
        (
            "verbs",
            Fabric::new(model::IB_QDR_VERBS),
            RpcConfig::rpcoib(),
        ),
    ]
}

/// Echo, plus a `stall` method that parks the handler on a gate the test
/// opens — a server that is *slow*, deterministically, rather than by
/// wall-clock luck.
struct GatedService {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedService {
    fn new() -> (Arc<(Mutex<bool>, Condvar)>, GatedService) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let svc = GatedService {
            gate: Arc::clone(&gate),
        };
        (gate, svc)
    }
}

fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cv) = &**gate;
    *lock.lock().unwrap() = true;
    cv.notify_all();
}

impl RpcService for GatedService {
    fn protocol(&self) -> &'static str {
        "test.GatedProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut text = Text::default();
        text.read_fields(param).map_err(|e| e.to_string())?;
        match method {
            "echo" => Ok(Box::new(text)),
            "stall" => {
                let (lock, cv) = &*self.gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(Box::new(text))
            }
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start_gated(fabric: &Fabric, cfg: &RpcConfig) -> (Server, Arc<(Mutex<bool>, Condvar)>) {
    start_gated_at(fabric, cfg, SimAddr::new(fabric.add_node(), 8020))
}

fn start_gated_at(
    fabric: &Fabric,
    cfg: &RpcConfig,
    addr: SimAddr,
) -> (Server, Arc<(Mutex<bool>, Condvar)>) {
    let (gate, svc) = GatedService::new();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(svc));
    let server = Server::start(fabric, addr.node, addr.port, cfg.clone(), registry).unwrap();
    (server, gate)
}

fn echo(client: &Client, addr: SimAddr, text: &str) -> Result<Text, RpcError> {
    client.call(addr, "test.GatedProtocol", "echo", &Text::from(text))
}

#[test]
fn pending_cleared_on_success() {
    for (name, fabric, cfg) in transports() {
        let (server, _gate) = start_gated(&fabric, &cfg);
        let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
        let resp = echo(&client, server.addr(), "hi").unwrap();
        assert_eq!(resp.0, "hi", "{name}");
        assert_eq!(client.pending_calls(), 0, "{name}: leaked after success");
        client.shutdown();
        server.stop();
    }
}

#[test]
fn pending_cleared_on_timeout() {
    for (name, fabric, cfg) in transports() {
        let cfg = RpcConfig {
            call_timeout: Duration::from_millis(100),
            retry: RetryPolicy::none(),
            ..cfg
        };
        let (server, gate) = start_gated(&fabric, &cfg);
        let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
        let err = client
            .call::<Text, Text>(
                server.addr(),
                "test.GatedProtocol",
                "stall",
                &Text::from("x"),
            )
            .err()
            .unwrap();
        assert!(matches!(err, RpcError::Timeout), "{name}: {err:?}");
        assert_eq!(client.pending_calls(), 0, "{name}: leaked after timeout");
        // Unblock the handler so the server can stop promptly.
        open_gate(&gate);
        client.shutdown();
        server.stop();
    }
}

#[test]
fn pending_cleared_on_send_failure() {
    for (name, fabric, cfg) in transports() {
        let cfg = RpcConfig {
            call_timeout: Duration::from_millis(300),
            retry: RetryPolicy::none(),
            ..cfg
        };
        let (server, _gate) = start_gated(&fabric, &cfg);
        let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
        echo(&client, server.addr(), "warm").unwrap();
        // The server's node dies under the cached connection: the next
        // attempt fails in send (or, at worst, times out unanswered).
        fabric.kill_node(server.addr().node);
        let err = echo(&client, server.addr(), "x").err().unwrap();
        assert!(
            matches!(
                err,
                RpcError::Timeout | RpcError::ConnectionClosed | RpcError::Io(_)
            ),
            "{name}: {err:?}"
        );
        assert_eq!(
            client.pending_calls(),
            0,
            "{name}: leaked after send failure"
        );
        client.shutdown();
    }
}

#[test]
fn pending_cleared_on_busy_rejection() {
    for (name, fabric, cfg) in transports() {
        let cfg = RpcConfig {
            handlers: 1,
            call_queue_len: 1,
            call_timeout: Duration::from_secs(10),
            retry: RetryPolicy::none(),
            ..cfg
        };
        let (server, gate) = start_gated(&fabric, &cfg);
        let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
        let addr = server.addr();
        // Four concurrent stalls against one gated handler and a
        // one-deep queue: at most two are absorbed (one executing, one
        // queued), so at least two come back ServerBusy.
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let client = client.clone();
                std::thread::spawn(move || {
                    client.call::<Text, Text>(
                        addr,
                        "test.GatedProtocol",
                        "stall",
                        &Text::from(format!("c{i}").as_str()),
                    )
                })
            })
            .collect();
        // The busy rejections return on their own; the absorbed calls
        // need the gate opened. Give the rejections a moment to land
        // before releasing, so the scenario really overlapped.
        std::thread::sleep(Duration::from_millis(300));
        open_gate(&gate);
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let busy = results
            .iter()
            .filter(|r| matches!(r, Err(RpcError::ServerBusy)))
            .count();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert!(
            busy >= 1,
            "{name}: expected busy rejections, got {results:?}"
        );
        assert!(ok >= 1, "{name}: expected absorbed calls, got {results:?}");
        assert_eq!(client.pending_calls(), 0, "{name}: leaked after busy");
        client.shutdown();
        server.stop();
    }
}

/// Socket-only: a raw fake server completes the handshake, then answers
/// the first request with an unparseable frame. The Connection thread
/// must fail the waiting call and leave the table (and the connection
/// cache) clean.
#[test]
fn pending_cleared_on_corrupt_response() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let addr = SimAddr::new(server_node, 8020);
    let listener = SimListener::bind(&fabric, addr).unwrap();
    let fake = std::thread::spawn(move || {
        let (stream, _peer) = listener.accept().unwrap();
        handshake::server_accept(&stream, || 7).unwrap();
        // Consume the client's request frame first, so the corrupt answer
        // cannot race ahead of the call being registered and sent.
        let mut len_buf = [0u8; 4];
        stream.read_exact_at(&mut len_buf).unwrap();
        let mut body = vec![0u8; i32::from_be_bytes(len_buf) as usize];
        stream.read_exact_at(&mut body).unwrap();
        // Length-prefixed frame whose body cannot parse as a response
        // header: lead i32 = -1 selects V1, and then the status byte is
        // missing.
        (&stream).write_all(&4i32.to_be_bytes()).unwrap();
        (&stream).write_all(&(-1i32).to_be_bytes()).unwrap();
        // Hold the stream open until the client has reacted, so EOF
        // doesn't race the corrupt frame.
        std::thread::sleep(Duration::from_millis(500));
    });

    let cfg = RpcConfig {
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..RpcConfig::socket()
    };
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    let err = client
        .call::<Text, Text>(addr, "test.GatedProtocol", "echo", &Text::from("x"))
        .err()
        .unwrap();
    assert!(matches!(err, RpcError::Protocol(_)), "{err:?}");
    assert_eq!(client.pending_calls(), 0, "leaked after corrupt response");
    assert_eq!(
        client.connection_count(),
        0,
        "corrupt connection must be evicted"
    );
    fake.join().unwrap();
    client.shutdown();
}

/// The dropped-connection tracking set (which decides whether a fresh
/// establishment counts as a reconnect) must stay bounded: empty while
/// connections are healthy, one entry per dropped server, and emptied
/// again by the reconnect that consumes it — repeated break/reconnect
/// churn against one server never accumulates entries. Its unbounded
/// predecessor kept every server ever contacted, forever.
#[test]
fn reconnect_tracking_is_bounded_by_churn() {
    for (name, fabric, cfg) in transports() {
        let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
        // Every round restarts "the same server": same node, same port,
        // so the client sees one logical peer across the churn.
        let addr = SimAddr::new(fabric.add_node(), 8020);
        for round in 0..3 {
            let (server, _gate) = start_gated_at(&fabric, &cfg, addr);
            // The default retry policy heals the stale connection left by
            // the previous round's stop; that reconnect must consume the
            // tracked entry, leaving the set empty while healthy.
            echo(&client, addr, "hi").unwrap();
            assert_eq!(
                client.reconnect_tracking_len(),
                0,
                "{name} round {round}: healthy connection must not be tracked"
            );
            server.stop();
            // Whether the Connection thread has already noticed the stop
            // or the next round's call will discover it, at most this one
            // dropped server is ever remembered.
            assert!(
                client.reconnect_tracking_len() <= 1,
                "{name} round {round}: tracking set grew past the one dropped server"
            );
        }
        // Rounds 1 and 2 each healed a stale connection.
        assert!(
            client.metrics().counters().reconnects >= 2,
            "{name}: reconnects were not counted"
        );
        client.shutdown();
    }
}

/// `shutdown` must interrupt a retry backoff: a caller parked between
/// attempts returns promptly with `ConnectionClosed` instead of sleeping
/// out the remaining pause and burning further attempts.
#[test]
fn shutdown_interrupts_retry_backoff() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    // No server at this address: every attempt fails with a retryable
    // connect error, and the policy would sleep 30 s before retrying.
    let addr = SimAddr::new(fabric.add_node(), 8020);
    let cfg = RpcConfig {
        retry: RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_secs(30),
            max_backoff: Duration::from_secs(30),
            multiplier: 1.0,
            jitter: 0.0,
            deadline: None,
        },
        ..RpcConfig::socket()
    };
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    let worker = {
        let client = client.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            let err = client
                .call::<Text, Text>(addr, "test.GatedProtocol", "echo", &Text::from("x"))
                .err()
                .unwrap();
            (err, start.elapsed())
        })
    };
    // Let the first attempt fail and the backoff begin.
    std::thread::sleep(Duration::from_millis(300));
    client.shutdown();
    let (err, elapsed) = worker.join().unwrap();
    assert!(
        matches!(err, RpcError::ConnectionClosed),
        "stopped client must fail ConnectionClosed, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "backoff was not interrupted: call took {elapsed:?}"
    );
}
