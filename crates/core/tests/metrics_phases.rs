//! Acceptance test for the per-phase latency observability: after real
//! end-to-end calls, the client's and server's metrics snapshots must
//! hold non-zero counts in every pipeline phase — serialize, wire,
//! server queue, handler, deserialize — keyed by `<protocol, method>`,
//! and on the verbs transport the buffer-pool counters must be surfaced
//! in the same snapshot. Runs once per `RPC_TRANSPORT` value in CI.

use std::sync::Arc;

use rpcoib::{Client, MetricsSnapshot, Phase, RpcConfig, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric};
use wire::{BytesWritable, DataInput, Writable};

fn env_transport() -> (Fabric, RpcConfig) {
    if std::env::var("RPC_TRANSPORT").as_deref() == Ok("verbs") {
        (Fabric::new(model::IB_QDR_VERBS), RpcConfig::rpcoib())
    } else {
        (Fabric::new(model::IPOIB_QDR), RpcConfig::socket())
    }
}

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "test.EchoProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "pingpong" => {
                let mut payload = BytesWritable::default();
                payload.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            other => Err(format!("no such method {other}")),
        }
    }
}

/// Sample count of one phase under one `<protocol, method>` key.
fn phase_count(snap: &MetricsSnapshot, protocol: &str, method: &str, phase: Phase) -> u64 {
    snap.phases
        .iter()
        .find(|((p, m), _)| p == protocol && m == method)
        .map(|(_, ps)| ps.get(phase).count)
        .unwrap_or(0)
}

#[test]
fn end_to_end_calls_populate_every_phase_histogram() {
    const CALLS: u64 = 5;
    let (fabric, cfg) = env_transport();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();

    for _ in 0..CALLS {
        let _: BytesWritable = client
            .call(
                server.addr(),
                "test.EchoProtocol",
                "pingpong",
                &BytesWritable(vec![7u8; 600]),
            )
            .unwrap();
    }

    // Client side: request serialization, wire time, and response
    // deserialization, all keyed by the request's method.
    let cli = client.metrics_snapshot();
    for phase in [Phase::Serialize, Phase::Wire, Phase::Deserialize] {
        assert_eq!(
            phase_count(&cli, "test.EchoProtocol", "pingpong", phase),
            CALLS,
            "client-side {phase:?} must be recorded once per call"
        );
    }
    let wire = cli
        .phases
        .iter()
        .find(|((p, m), _)| p == "test.EchoProtocol" && m == "pingpong")
        .map(|(_, ps)| ps.get(Phase::Wire))
        .unwrap();
    assert!(
        wire.sum_ns > 0,
        "wire time includes modeled latency, cannot be zero"
    );
    assert!(wire.quantile_ns(0.5) <= wire.quantile_ns(0.99));
    assert!(wire.quantile_ns(0.99) <= wire.max_ns.next_power_of_two().max(wire.max_ns));

    // Server side: queue wait and handler execution under the request's
    // method; the responder's serialize/wire under the `#resp` key (a
    // method's responses have their own stable size history).
    let srv = server.metrics_snapshot();
    for phase in [Phase::ServerQueue, Phase::Handler] {
        assert_eq!(
            phase_count(&srv, "test.EchoProtocol", "pingpong", phase),
            CALLS,
            "server-side {phase:?} must be recorded once per admitted call"
        );
    }
    for phase in [Phase::Serialize, Phase::Wire] {
        assert_eq!(
            phase_count(&srv, "test.EchoProtocol", "pingpong#resp", phase),
            CALLS,
            "responder {phase:?} must be recorded once per response"
        );
    }

    // The pool rides along in the same snapshot on the RDMA transport
    // (and only there): these calls must have actually exercised it.
    if cfg.ib_enabled {
        for (name, snap) in [("client", &cli), ("server", &srv)] {
            let pool = snap
                .pool
                .unwrap_or_else(|| panic!("{name} snapshot must carry pool counters"));
            let lookups = pool.history_hits + pool.grows + pool.shrinks + pool.cold;
            assert!(lookups > 0, "{name} pool history saw no traffic");
            assert!(
                pool.native_hits + pool.native_misses > 0,
                "{name} native pool served no buffers"
            );
        }
    } else {
        assert!(cli.pool.is_none(), "socket transport has no buffer pool");
        assert!(srv.pool.is_none(), "socket transport has no buffer pool");
    }

    client.shutdown();
    server.stop();
}
