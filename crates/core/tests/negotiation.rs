//! The version-negotiation matrix, over the wire: clients capped at each
//! supported frame version, on both transports, must land on exactly the
//! expected negotiated version and complete real calls under it — and a
//! pre-handshake (V1) peer arriving *mid-stream*, while modern
//! connections are active, must be served without perturbing them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric};
use wire::{DataInput, LongWritable, Writable};

struct CountingEcho {
    calls: Arc<AtomicU64>,
}

impl RpcService for CountingEcho {
    fn protocol(&self) -> &'static str {
        "nego.Echo"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "echo" => {
                self.calls.fetch_add(1, Ordering::AcqRel);
                let mut v = LongWritable::default();
                v.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(v))
            }
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start(fabric: &Fabric, cfg: &RpcConfig) -> (Server, Arc<AtomicU64>) {
    let calls = Arc::new(AtomicU64::new(0));
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(CountingEcho {
        calls: Arc::clone(&calls),
    }));
    let server = Server::start(fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    (server, calls)
}

fn echo(client: &Client, server: &Server, v: i64) -> i64 {
    client
        .call::<_, LongWritable>(server.addr(), "nego.Echo", "echo", &LongWritable(v))
        .unwrap()
        .0
}

/// Every `(transport, client max version)` cell: the negotiated version
/// is exactly the client's cap (the server always offers its maximum),
/// and calls round-trip under it.
#[test]
fn version_matrix_negotiates_and_serves() {
    for ib in [false, true] {
        let fabric = Fabric::new(if ib {
            model::IB_QDR_VERBS
        } else {
            model::IPOIB_QDR
        });
        let base = if ib {
            RpcConfig::rpcoib()
        } else {
            RpcConfig::socket()
        };
        let (server, calls) = start(&fabric, &base);
        for client_max in [2u8, 3u8] {
            let cfg = RpcConfig {
                max_wire_version: client_max,
                ..base.clone()
            };
            let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
            for i in 0..8 {
                assert_eq!(echo(&client, &server, i), i, "ib={ib} max={client_max}");
            }
            assert_eq!(
                client.negotiated_version(server.addr()),
                Some(client_max),
                "ib={ib}: server must ack exactly the client's cap"
            );
            client.shutdown();
        }
        assert_eq!(calls.load(Ordering::Acquire), 16);
        server.stop();
    }
}

/// V2-capped and V3 clients of the *same* server, interleaved: each
/// connection frames in its own negotiated version and neither corrupts
/// the other's state (the server keeps per-connection codecs).
#[test]
fn mixed_version_clients_interleave() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let base = RpcConfig::socket();
    let (server, calls) = start(&fabric, &base);

    let v3 = Client::new(&fabric, fabric.add_node(), base.clone()).unwrap();
    let v2 = Client::new(
        &fabric,
        fabric.add_node(),
        RpcConfig {
            max_wire_version: 2,
            ..base.clone()
        },
    )
    .unwrap();

    for i in 0..20 {
        let (a, b) = if i % 2 == 0 { (&v3, &v2) } else { (&v2, &v3) };
        assert_eq!(echo(a, &server, i), i);
        assert_eq!(echo(b, &server, 100 + i), 100 + i);
    }
    assert_eq!(v3.negotiated_version(server.addr()), Some(3));
    assert_eq!(v2.negotiated_version(server.addr()), Some(2));
    assert_eq!(calls.load(Ordering::Acquire), 40);
    v3.shutdown();
    v2.shutdown();
    server.stop();
}

/// A pre-handshake V1 peer speaking raw length-prefixed frames shows up
/// while a V3 client is mid-conversation. The legacy exchange completes
/// in V1 framing, and the V3 connection — whose compact header carries
/// delta/table state across frames — continues unperturbed afterwards.
#[test]
fn legacy_peer_mid_stream_leaves_v3_connections_intact() {
    use rpcoib::frame::{self, FrameVersion, ResponseStatus};
    use std::io::Write;

    let fabric = Fabric::new(model::IPOIB_QDR);
    let base = RpcConfig::socket();
    let (server, _calls) = start(&fabric, &base);

    let v3 = Client::new(&fabric, fabric.add_node(), base.clone()).unwrap();
    for i in 0..5 {
        assert_eq!(echo(&v3, &server, i), i);
    }
    assert_eq!(v3.negotiated_version(server.addr()), Some(3));

    // Mid-stream: the legacy peer, straight to V1 frames.
    let stream = simnet::SimStream::connect(&fabric, fabric.add_node(), server.addr()).unwrap();
    let mut body: Vec<u8> = Vec::new();
    frame::write_request_v1(&mut body, 42, "nego.Echo", "echo", &LongWritable(7)).unwrap();
    let mut framed = (body.len() as i32).to_be_bytes().to_vec();
    framed.extend_from_slice(&body);
    (&stream).write_all(&framed).unwrap();
    let mut len = [0u8; 4];
    stream.read_exact_at(&mut len).unwrap();
    let mut resp = vec![0u8; i32::from_be_bytes(len) as usize];
    stream.read_exact_at(&mut resp).unwrap();
    let mut input = resp.as_slice();
    let header = frame::read_response_header(&mut input).unwrap();
    assert_eq!(header.version, FrameVersion::V1);
    assert_eq!(header.seq, 42);
    assert_eq!(header.status, ResponseStatus::Ok);
    let mut value = LongWritable::default();
    value.read_fields(&mut input).unwrap();
    assert_eq!(value.0, 7);

    // The V3 connection's stateful codec picks up exactly where it was.
    for i in 5..10 {
        assert_eq!(echo(&v3, &server, i), i);
    }
    assert_eq!(
        server.metrics_snapshot().counters.frame_errors,
        0,
        "no connection saw a codec inconsistency"
    );
    drop(stream);
    v3.shutdown();
    server.drain(Duration::from_secs(5));
}
