//! Property tests for the RPC engine: arbitrary payloads must round-trip
//! over both transports, byte-for-byte.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric};
use wire::{BytesWritable, DataInput, Writable};

struct Echo;
impl RpcService for Echo {
    fn protocol(&self) -> &'static str {
        "prop.Echo"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut b = BytesWritable::default();
        b.read_fields(param).map_err(|e| e.to_string())?;
        // Method name selects a transform so responses differ from
        // requests (catches request/response frame mix-ups).
        match method {
            "echo" => Ok(Box::new(b)),
            "reverse" => {
                b.0.reverse();
                Ok(Box::new(b))
            }
            other => Err(format!("no method {other}")),
        }
    }
}

struct Env {
    _server: Server,
    client: Client,
    addr: simnet::SimAddr,
}

fn env(rdma: bool) -> &'static Env {
    static SOCKET: OnceLock<Env> = OnceLock::new();
    static RDMA: OnceLock<Env> = OnceLock::new();
    let cell = if rdma { &RDMA } else { &SOCKET };
    cell.get_or_init(|| {
        let (net, cfg) = if rdma {
            (model::IB_QDR_VERBS, RpcConfig::rpcoib())
        } else {
            (model::IPOIB_QDR, RpcConfig::socket())
        };
        let fabric = Fabric::new(net);
        let sn = fabric.add_node();
        let cn = fabric.add_node();
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(Echo));
        let server = Server::start(&fabric, sn, 7, cfg.clone(), registry).unwrap();
        let addr = server.addr();
        let client = Client::new(&fabric, cn, cfg).unwrap();
        Env {
            _server: server,
            client,
            addr,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary payloads (1 B .. 100 KB, spanning the send/recv ↔
    /// RDMA-write threshold) round-trip over RPCoIB.
    #[test]
    fn rpcoib_roundtrips_arbitrary_payloads(
        data in proptest::collection::vec(any::<u8>(), 1..100_000),
        reverse in any::<bool>(),
    ) {
        let env = env(true);
        let method = if reverse { "reverse" } else { "echo" };
        let resp: BytesWritable = env
            .client
            .call(env.addr, "prop.Echo", method, &BytesWritable(data.clone()))
            .unwrap();
        let mut expected = data;
        if reverse {
            expected.reverse();
        }
        prop_assert_eq!(resp.0, expected);
    }

    /// Same property over the socket baseline.
    #[test]
    fn socket_roundtrips_arbitrary_payloads(
        data in proptest::collection::vec(any::<u8>(), 1..100_000),
    ) {
        let env = env(false);
        let resp: BytesWritable = env
            .client
            .call(env.addr, "prop.Echo", "echo", &BytesWritable(data.clone()))
            .unwrap();
        prop_assert_eq!(resp.0, data);
    }
}
