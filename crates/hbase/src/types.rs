//! Protocol types for `hbase.MasterProtocol` and
//! `hbase.RegionServerProtocol`.

use std::io;

use simnet::{NodeId, SimAddr};
use wire::{DataInput, DataOutput, Writable};

/// One region: a hash bucket served by a region server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionInfo {
    /// Region index in `0..n_regions` (hash bucket id).
    pub region: u32,
    /// Total bucket count.
    pub n_regions: u32,
    /// Operation-plane address of the hosting region server.
    pub rs_node: u32,
    pub rs_port: u16,
}

impl RegionInfo {
    pub fn rs_addr(&self) -> SimAddr {
        SimAddr::new(NodeId(self.rs_node), self.rs_port)
    }
}

impl Writable for RegionInfo {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.region as i32)?;
        out.write_vint(self.n_regions as i32)?;
        out.write_i32(self.rs_node as i32)?;
        out.write_u16(self.rs_port)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.region = input.read_vint()? as u32;
        self.n_regions = input.read_vint()? as u32;
        self.rs_node = input.read_i32()? as u32;
        self.rs_port = input.read_u16()?;
        Ok(())
    }
}

/// Route a row key to its region bucket (FNV hash, like the client and
/// the servers must agree on).
pub fn region_of(key: &[u8], n_regions: u32) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % n_regions as u64) as u32
}

/// A Put request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PutArgs {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

impl Writable for PutArgs {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_len_bytes(&self.key)?;
        out.write_len_bytes(&self.value)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.key = input.read_len_bytes()?;
        self.value = input.read_len_bytes()?;
        Ok(())
    }
}

/// A scan request: up to `limit` rows with keys ≥ `start`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanArgs {
    pub start: Vec<u8>,
    pub limit: u32,
}

impl Writable for ScanArgs {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_len_bytes(&self.start)?;
        out.write_vint(self.limit as i32)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.start = input.read_len_bytes()?;
        self.limit = input.read_vint()? as u32;
        Ok(())
    }
}

/// A key/value row (scan results).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Row {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

impl Writable for Row {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_len_bytes(&self.key)?;
        out.write_len_bytes(&self.value)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.key = input.read_len_bytes()?;
        self.value = input.read_len_bytes()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{from_bytes, to_bytes};

    #[test]
    fn types_roundtrip() {
        let r = RegionInfo {
            region: 3,
            n_regions: 16,
            rs_node: 7,
            rs_port: 60020,
        };
        assert_eq!(from_bytes::<RegionInfo>(&to_bytes(&r).unwrap()).unwrap(), r);
        let p = PutArgs {
            key: b"user1".to_vec(),
            value: vec![0u8; 64],
        };
        assert_eq!(from_bytes::<PutArgs>(&to_bytes(&p).unwrap()).unwrap(), p);
        let s = ScanArgs {
            start: b"user5".to_vec(),
            limit: 10,
        };
        assert_eq!(from_bytes::<ScanArgs>(&to_bytes(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn region_routing_is_deterministic_and_bounded() {
        for n in [1u32, 4, 16] {
            for k in 0..200u32 {
                let key = format!("user{k:010}");
                let r = region_of(key.as_bytes(), n);
                assert!(r < n);
                assert_eq!(r, region_of(key.as_bytes(), n));
            }
        }
    }

    #[test]
    fn region_routing_spreads_keys() {
        let n = 8;
        let mut counts = vec![0u32; n as usize];
        for k in 0..8000u32 {
            counts[region_of(format!("user{k:010}").as_bytes(), n) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 500, "region {i} underloaded: {c}");
        }
    }
}
