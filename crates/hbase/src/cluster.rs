//! `MiniHbase`: HDFS + HMaster + N region servers on one cluster.
//! Host 0 runs NameNode + HMaster, host 1 is the client host, hosts
//! `2..2+n` co-locate a DataNode and a region server (as the paper's 16
//! region-server setup does).

use std::sync::Arc;
use std::time::{Duration, Instant};

use mini_hdfs::MiniDfs;
use rpcoib::{RpcError, RpcResult};
use simnet::{Cluster, Host, NetworkModel, SimAddr};

use crate::client::HBaseClient;
use crate::config::HBaseConfig;
use crate::master::HMaster;
use crate::regionserver::HRegionServer;

/// A booted mini-HBase deployment.
pub struct MiniHbase {
    dfs: MiniDfs,
    master: HMaster,
    regionservers: Vec<HRegionServer>,
    cfg: HBaseConfig,
}

impl MiniHbase {
    /// Start `n_servers` region servers (with co-located DataNodes).
    pub fn start(
        eth_model: NetworkModel,
        n_servers: usize,
        cfg: HBaseConfig,
    ) -> RpcResult<MiniHbase> {
        let cluster = Arc::new(Cluster::new(eth_model, n_servers + 2));
        let dfs = MiniDfs::start_on(Arc::clone(&cluster), n_servers, cfg.hdfs.clone())?;

        let (master_fabric, master_node) = if cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(Host(0)))
        } else {
            (cluster.eth().clone(), cluster.eth_node(Host(0)))
        };
        let master = HMaster::start(
            &master_fabric,
            master_node,
            cfg.rpc.clone(),
            (n_servers * cfg.regions_per_server) as u32,
            n_servers,
        )?;

        let mut regionservers = Vec::with_capacity(n_servers);
        for i in 0..n_servers {
            regionservers.push(HRegionServer::start(
                &cluster,
                Host(2 + i),
                master.addr(),
                dfs.nn_addr(),
                cfg.clone(),
                n_servers,
            )?);
        }

        let hbase = MiniHbase {
            dfs,
            master,
            regionservers,
            cfg,
        };
        hbase.await_servers(n_servers, Duration::from_secs(10))?;
        Ok(hbase)
    }

    fn await_servers(&self, want: usize, timeout: Duration) -> RpcResult<()> {
        let deadline = Instant::now() + timeout;
        while self.master.server_count() < want || !self.master.fully_assigned() {
            if Instant::now() > deadline {
                return Err(RpcError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// The cluster topology.
    pub fn cluster(&self) -> &Arc<Cluster> {
        self.dfs.cluster()
    }

    /// The underlying HDFS.
    pub fn dfs(&self) -> &MiniDfs {
        &self.dfs
    }

    /// The master's address.
    pub fn master_addr(&self) -> SimAddr {
        self.master.addr()
    }

    /// The region servers.
    pub fn regionservers(&self) -> &[HRegionServer] {
        &self.regionservers
    }

    /// A client on the reserved client host.
    pub fn client(&self) -> RpcResult<HBaseClient> {
        self.client_on(Host(1))
    }

    /// A client on an arbitrary host.
    pub fn client_on(&self, host: Host) -> RpcResult<HBaseClient> {
        HBaseClient::new(self.cluster(), host, self.master.addr(), &self.cfg)
    }

    /// Stop everything.
    pub fn stop(&self) {
        for rs in &self.regionservers {
            rs.stop();
        }
        self.master.stop();
        self.dfs.stop();
    }
}

impl std::fmt::Debug for MiniHbase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiniHbase")
            .field("regionservers", &self.regionservers.len())
            .field("ops_rdma", &self.cfg.ops_rdma)
            .field("rpc_ib", &self.cfg.rpc.ib_enabled)
            .finish()
    }
}
