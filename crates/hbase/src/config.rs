//! HBase deployment configuration: the two transport planes of Figure 8.

use mini_hdfs::HdfsConfig;
use rpcoib::RpcConfig;

/// Configuration for a mini-HBase deployment.
#[derive(Debug, Clone)]
pub struct HBaseConfig {
    /// RPC plane (HMaster protocol + the HDFS control plane): socket
    /// Hadoop RPC or RPCoIB.
    pub rpc: RpcConfig,
    /// Operation plane (client ↔ region server Get/Put): `true` is the
    /// paper's "HBaseoIB".
    pub ops_rdma: bool,
    /// HDFS settings for WAL segments and memstore flushes.
    pub hdfs: HdfsConfig,
    /// Regions hosted per region server.
    pub regions_per_server: usize,
    /// Memstore size that triggers a flush to HDFS.
    pub memstore_flush_bytes: usize,
    /// WAL bytes accumulated before a segment is written to HDFS.
    pub wal_roll_bytes: usize,
}

impl Default for HBaseConfig {
    fn default() -> Self {
        HBaseConfig {
            rpc: RpcConfig::socket(),
            ops_rdma: false,
            hdfs: HdfsConfig::default(),
            regions_per_server: 1,
            memstore_flush_bytes: 256 * 1024,
            wal_roll_bytes: 128 * 1024,
        }
    }
}

impl HBaseConfig {
    /// `HBase(x)-RPC(x)`: everything over sockets.
    pub fn socket() -> Self {
        HBaseConfig::default()
    }

    /// `HBaseoIB-RPC(x)`: RDMA operations, socket Hadoop RPC.
    pub fn ops_ib() -> Self {
        HBaseConfig {
            ops_rdma: true,
            ..HBaseConfig::default()
        }
    }

    /// `HBaseoIB-RPCoIB`: the paper's fully-RDMA configuration.
    pub fn all_ib() -> Self {
        let mut cfg = HBaseConfig {
            ops_rdma: true,
            ..HBaseConfig::default()
        };
        cfg.rpc = RpcConfig::rpcoib();
        cfg.hdfs.rpc = RpcConfig::rpcoib();
        cfg
    }

    /// Transport configuration of the operation plane.
    pub fn ops_rpc_config(&self) -> RpcConfig {
        RpcConfig {
            ib_enabled: self.ops_rdma,
            ..RpcConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_figure8_axes() {
        let s = HBaseConfig::socket();
        assert!(!s.ops_rdma && !s.rpc.ib_enabled);
        let o = HBaseConfig::ops_ib();
        assert!(o.ops_rdma && !o.rpc.ib_enabled);
        let a = HBaseConfig::all_ib();
        assert!(a.ops_rdma && a.rpc.ib_enabled && a.hdfs.rpc.ib_enabled);
        a.ops_rpc_config().validate().unwrap();
    }
}
