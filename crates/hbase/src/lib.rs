//! # mini-hbase — a miniature HBase with a YCSB driver
//!
//! Figure 8 of the paper evaluates HBase Get/Put throughput under five
//! transport configurations, crossing the **operation plane** (client ↔
//! HRegionServer, either sockets or the RDMA-based "HBaseoIB" design of
//! Huang et al., IPDPS'11) with the **RPC plane** (Hadoop RPC carrying
//! HMaster lookups and the region servers' HDFS traffic, either sockets
//! or RPCoIB). This crate implements both planes:
//!
//! * [`HMaster`] — static range assignment of regions to region servers,
//!   served over `hbase.MasterProtocol`;
//! * [`HRegionServer`] — per-region memstores with write-ahead-log
//!   segments and memstore flushes persisted to mini-HDFS (this is what
//!   makes Put workloads RPC-intensive, as §IV-E explains), serving
//!   `hbase.RegionServerProtocol` on the operation plane;
//! * [`HBaseClient`] — region-map caching client;
//! * [`ycsb`] — a YCSB-style workload driver (load + run phases, get/put
//!   mixes, uniform and zipfian key choosers);
//! * [`MiniHbase`] — harness booting HDFS + master + N region servers.
//!
//! Substitution note: regions are hash-partitioned rather than
//! range-partitioned (YCSB's hashed keys make range splits equivalent in
//! load), and reads are served from memstore + an in-memory store-file
//! cache (standing in for HBase's block cache).
//!
//! ```
//! use mini_hbase::{HBaseConfig, MiniHbase};
//!
//! let hbase = MiniHbase::start(simnet::model::TEN_GIG_E, 2, HBaseConfig::socket()).unwrap();
//! let client = hbase.client().unwrap();
//! client.put(b"user42", b"hello").unwrap();
//! assert_eq!(client.get(b"user42").unwrap().as_deref(), Some(b"hello".as_slice()));
//! assert!(client.delete(b"user42").unwrap());
//! client.shutdown();
//! hbase.stop();
//! ```

pub mod client;
pub mod cluster;
pub mod config;
pub mod master;
pub mod regionserver;
pub mod types;
pub mod ycsb;

pub use client::HBaseClient;
pub use cluster::MiniHbase;
pub use config::HBaseConfig;
pub use master::HMaster;
pub use regionserver::HRegionServer;
pub use types::RegionInfo;

/// HMaster RPC port.
pub const MASTER_PORT: u16 = 60000;
/// HRegionServer operation-plane port.
pub const RS_PORT: u16 = 60020;
