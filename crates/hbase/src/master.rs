//! The HMaster: region servers register and heartbeat, buckets are
//! assigned over the *live* server set, and clients fetch the region map.
//! When a region server stops heartbeating, its buckets automatically
//! reassign to survivors (who recover them from HDFS — see
//! [`crate::regionserver`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rpcoib::{RpcResult, RpcService, Server, ServiceRegistry};
use simnet::{Fabric, NodeId, SimAddr};
use wire::{DataInput, IntWritable, Writable};

use crate::types::RegionInfo;
use crate::MASTER_PORT;

/// A region server is declared dead after this long without a heartbeat.
pub const RS_TIMEOUT: Duration = Duration::from_millis(1200);

struct RsReg {
    node: u32,
    port: u16,
    last_heartbeat: Instant,
}

struct MasterState {
    servers: Mutex<HashMap<u32, RsReg>>,
    /// Fixed bucket count (servers_at_creation × regions_per_server).
    n_regions: u32,
    /// Assignment is *sticky*: a bucket moves only when its server dies.
    /// Moving a bucket off a live server would discard that server's
    /// unrolled WAL tail (only a crash justifies that loss).
    assignment: Mutex<HashMap<u32, u32>>,
    /// No bucket is assigned until this many servers have registered, so
    /// the initial placement is spread instead of first-come-grab-all.
    expected_servers: usize,
    next_rs: AtomicU32,
}

impl MasterState {
    /// Live servers, sorted by id for a stable assignment.
    fn live(&self) -> Vec<(u32, u32, u16)> {
        let now = Instant::now();
        let mut live: Vec<(u32, u32, u16)> = self
            .servers
            .lock()
            .iter()
            .filter(|(_, reg)| now.duration_since(reg.last_heartbeat) < RS_TIMEOUT)
            .map(|(id, reg)| (*id, reg.node, reg.port))
            .collect();
        live.sort_by_key(|(id, _, _)| *id);
        live
    }

    /// (Re)assign: keep live owners, move orphaned buckets to the
    /// least-loaded live servers.
    fn refresh_assignment(&self) {
        if self.servers.lock().len() < self.expected_servers {
            return; // wait for the fleet before the first placement
        }
        let live = self.live();
        if live.is_empty() {
            return;
        }
        let mut assignment = self.assignment.lock();
        let mut load: HashMap<u32, usize> = live.iter().map(|(id, _, _)| (*id, 0)).collect();
        for rs in assignment.values() {
            if let Some(n) = load.get_mut(rs) {
                *n += 1;
            }
        }
        for bucket in 0..self.n_regions {
            let owner_alive = assignment
                .get(&bucket)
                .is_some_and(|rs| load.contains_key(rs));
            if !owner_alive {
                let (&target, _) = load
                    .iter()
                    .min_by_key(|(id, n)| (**n, **id))
                    .expect("live set nonempty");
                assignment.insert(bucket, target);
                *load.get_mut(&target).expect("target live") += 1;
            }
        }
    }

    /// The full region map (bucket → live server address).
    fn region_map(&self) -> Result<Vec<RegionInfo>, String> {
        self.refresh_assignment();
        let servers = self.servers.lock();
        let assignment = self.assignment.lock();
        (0..self.n_regions)
            .map(|region| {
                let rs = assignment
                    .get(&region)
                    .ok_or_else(|| "regions not yet assigned".to_string())?;
                let reg = servers
                    .get(rs)
                    .ok_or_else(|| "owner vanished".to_string())?;
                Ok(RegionInfo {
                    region,
                    n_regions: self.n_regions,
                    rs_node: reg.node,
                    rs_port: reg.port,
                })
            })
            .collect()
    }

    /// Buckets currently assigned to `rs_id`.
    fn buckets_of(&self, rs_id: u32) -> Vec<u32> {
        self.refresh_assignment();
        let assignment = self.assignment.lock();
        let mut buckets: Vec<u32> = assignment
            .iter()
            .filter(|(_, rs)| **rs == rs_id)
            .map(|(b, _)| *b)
            .collect();
        buckets.sort_unstable();
        buckets
    }
}

/// `hbase.MasterProtocol`.
struct MasterProtocol {
    state: Arc<MasterState>,
}

impl RpcService for MasterProtocol {
    fn protocol(&self) -> &'static str {
        "hbase.MasterProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "registerRegionServer" => {
                let mut node = IntWritable::default();
                let mut port = IntWritable::default();
                node.read_fields(param).map_err(|e| e.to_string())?;
                port.read_fields(param).map_err(|e| e.to_string())?;
                let id = self.state.next_rs.fetch_add(1, Ordering::Relaxed);
                self.state.servers.lock().insert(
                    id,
                    RsReg {
                        node: node.0 as u32,
                        port: port.0 as u16,
                        last_heartbeat: Instant::now(),
                    },
                );
                Ok(Box::new(IntWritable(id as i32)))
            }
            "rsHeartbeat" => {
                let mut id = IntWritable::default();
                id.read_fields(param).map_err(|e| e.to_string())?;
                let rs_id = id.0 as u32;
                match self.state.servers.lock().get_mut(&rs_id) {
                    Some(reg) => reg.last_heartbeat = Instant::now(),
                    None => return Err(format!("unregistered region server {rs_id}")),
                }
                let buckets: Vec<IntWritable> = self
                    .state
                    .buckets_of(rs_id)
                    .into_iter()
                    .map(|b| IntWritable(b as i32))
                    .collect();
                Ok(Box::new(buckets))
            }
            "getRegions" => Ok(Box::new(self.state.region_map()?)),
            other => Err(format!("MasterProtocol has no method {other}")),
        }
    }
}

/// A running HMaster.
pub struct HMaster {
    server: Server,
    state: Arc<MasterState>,
}

impl HMaster {
    /// Start on `(node, MASTER_PORT)` of the RPC-plane fabric, managing
    /// `n_regions` fixed buckets over an expected fleet of
    /// `expected_servers` region servers.
    pub fn start(
        fabric: &Fabric,
        node: NodeId,
        rpc: rpcoib::RpcConfig,
        n_regions: u32,
        expected_servers: usize,
    ) -> RpcResult<HMaster> {
        let state = Arc::new(MasterState {
            servers: Mutex::new(HashMap::new()),
            n_regions,
            assignment: Mutex::new(HashMap::new()),
            expected_servers,
            next_rs: AtomicU32::new(0),
        });
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(MasterProtocol {
            state: Arc::clone(&state),
        }));
        let server = Server::start(fabric, node, MASTER_PORT, rpc, registry)?;
        Ok(HMaster { server, state })
    }

    /// The master's RPC address.
    pub fn addr(&self) -> SimAddr {
        self.server.addr()
    }

    /// Registered region-server count (live or not).
    pub fn server_count(&self) -> usize {
        self.state.servers.lock().len()
    }

    /// Currently live (heartbeating) region-server count.
    pub fn live_server_count(&self) -> usize {
        self.state.live().len()
    }

    /// Whether every bucket has an assigned (registered) owner.
    pub fn fully_assigned(&self) -> bool {
        self.state.refresh_assignment();
        self.state.assignment.lock().len() == self.state.n_regions as usize
    }

    /// Stop the RPC server.
    pub fn stop(&self) {
        self.server.stop();
    }
}

impl std::fmt::Debug for HMaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HMaster")
            .field("addr", &self.server.addr())
            .finish()
    }
}
