//! The HBase client: caches the region map from the master and routes
//! operations to the right region server over the operation plane.

use parking_lot::RwLock;
use rpcoib::{Client, RpcError, RpcResult};
use simnet::{Cluster, Host, SimAddr};
use wire::BooleanWritable;

use crate::config::HBaseConfig;
use crate::types::{region_of, PutArgs, RegionInfo, Row, ScanArgs};

const MASTER_PROTOCOL: &str = "hbase.MasterProtocol";
const RS_PROTOCOL: &str = "hbase.RegionServerProtocol";

/// A mini-HBase client.
pub struct HBaseClient {
    master_rpc: Client,
    ops_rpc: Client,
    master: SimAddr,
    regions: RwLock<Vec<RegionInfo>>,
}

impl HBaseClient {
    /// Build a client on `host`, fetching the region map eagerly.
    pub fn new(
        cluster: &Cluster,
        host: Host,
        master: SimAddr,
        cfg: &HBaseConfig,
    ) -> RpcResult<HBaseClient> {
        let (rpc_fabric, rpc_node) = if cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };
        let (ops_fabric, ops_node) = if cfg.ops_rdma {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };
        let master_rpc = Client::new(&rpc_fabric, rpc_node, cfg.rpc.clone())?;
        let ops_rpc = Client::new(&ops_fabric, ops_node, cfg.ops_rpc_config())?;
        let client = HBaseClient {
            master_rpc,
            ops_rpc,
            master,
            regions: RwLock::new(Vec::new()),
        };
        client.refresh_regions()?;
        Ok(client)
    }

    /// Re-fetch the region map from the master.
    pub fn refresh_regions(&self) -> RpcResult<()> {
        let map: Vec<RegionInfo> = self.master_rpc.call(
            self.master,
            MASTER_PROTOCOL,
            "getRegions",
            &wire::NullWritable,
        )?;
        if map.is_empty() {
            return Err(RpcError::Protocol("empty region map".into()));
        }
        *self.regions.write() = map;
        Ok(())
    }

    fn locate(&self, key: &[u8]) -> RpcResult<RegionInfo> {
        let regions = self.regions.read();
        let n = regions.len() as u32;
        let bucket = region_of(key, n);
        regions
            .get(bucket as usize)
            .copied()
            .ok_or_else(|| RpcError::Protocol(format!("no region for bucket {bucket}")))
    }

    /// Is this error the region server telling us our map is stale
    /// (NotServingRegion), or the server being gone entirely? Both mean
    /// "refresh the map from the master and retry".
    fn is_stale_region(err: &RpcError) -> bool {
        matches!(err, RpcError::Remote(m) if m.starts_with(crate::regionserver::NOT_SERVING))
            || matches!(
                err,
                RpcError::ConnectionClosed | RpcError::Io(_) | RpcError::Timeout
            )
    }

    /// Route an operation to `key`'s region server, refreshing the region
    /// map and retrying when the assignment moved (e.g. after a region
    /// server crash — the master reassigns within its liveness timeout).
    fn with_region<T>(&self, key: &[u8], op: impl Fn(&RegionInfo) -> RpcResult<T>) -> RpcResult<T> {
        let mut last_err = RpcError::Protocol("no region attempt made".into());
        for attempt in 0..12 {
            let region = self.locate(key)?;
            match op(&region) {
                Ok(v) => return Ok(v),
                Err(e) if Self::is_stale_region(&e) => {
                    last_err = e;
                    // Recovery takes a master liveness timeout plus a
                    // heartbeat; back off accordingly.
                    std::thread::sleep(std::time::Duration::from_millis(50 * (attempt + 1)));
                    let _ = self.refresh_regions();
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Store a row.
    pub fn put(&self, key: &[u8], value: &[u8]) -> RpcResult<()> {
        self.with_region(key, |region| {
            let _: BooleanWritable = self.ops_rpc.call(
                region.rs_addr(),
                RS_PROTOCOL,
                "put",
                &PutArgs {
                    key: key.to_vec(),
                    value: value.to_vec(),
                },
            )?;
            Ok(())
        })
    }

    /// Delete a row; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> RpcResult<bool> {
        self.with_region(key, |region| {
            let existed: BooleanWritable =
                self.ops_rpc
                    .call(region.rs_addr(), RS_PROTOCOL, "delete", &key.to_vec())?;
            Ok(existed.0)
        })
    }

    /// Fetch a row.
    pub fn get(&self, key: &[u8]) -> RpcResult<Option<Vec<u8>>> {
        self.with_region(key, |region| {
            self.ops_rpc
                .call(region.rs_addr(), RS_PROTOCOL, "get", &key.to_vec())
        })
    }

    /// Batch point reads: one RPC per key (grouped routing), collected in
    /// input order. `None` entries are missing rows.
    pub fn multi_get(&self, keys: &[&[u8]]) -> RpcResult<Vec<Option<Vec<u8>>>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Scan up to `limit` rows with keys ≥ `start` from the region server
    /// owning `start`'s bucket (single-server scan).
    pub fn scan(&self, start: &[u8], limit: u32) -> RpcResult<Vec<Row>> {
        self.with_region(start, |region| {
            self.ops_rpc.call(
                region.rs_addr(),
                RS_PROTOCOL,
                "scan",
                &ScanArgs {
                    start: start.to_vec(),
                    limit,
                },
            )
        })
    }

    /// Operation-plane RPC metrics.
    pub fn ops_metrics(&self) -> &rpcoib::MetricsRegistry {
        self.ops_rpc.metrics()
    }

    /// Shut down both planes.
    pub fn shutdown(&self) {
        self.master_rpc.shutdown();
        self.ops_rpc.shutdown();
    }
}

impl std::fmt::Debug for HBaseClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HBaseClient")
            .field("master", &self.master)
            .field("regions", &self.regions.read().len())
            .finish()
    }
}
