//! The HRegionServer: memstores, write-ahead log, flushes to HDFS, and
//! the operation-plane RPC service.
//!
//! Puts append to the WAL buffer and the region's memstore; when the WAL
//! buffer reaches `wal_roll_bytes` a segment file is written to HDFS, and
//! when a memstore reaches `memstore_flush_bytes` it is flushed to an
//! HDFS store file. Both generate the NameNode RPC traffic (`create`,
//! `addBlock`, `complete`, `blockReceived`) that makes Put-heavy YCSB
//! workloads RPC-bound — the effect Figure 8(b)/(c) measures.
//! Flushed data stays readable through an in-memory store-file cache
//! (HBase's block cache equivalent), so Gets hit memory.
//!
//! Region hosting is **dynamic**: the server heartbeats the HMaster and
//! receives its current bucket assignment; buckets gained after another
//! server's death are *recovered* from HDFS — store files are reloaded
//! and the dead servers' WAL segments are replayed — so rows survive a
//! region-server crash.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mini_hdfs::{DfsClient, HostNet};
use parking_lot::Mutex;
use rpcoib::{Client, RpcResult, RpcService, Server, ServiceRegistry};
use simnet::{Cluster, Host, SimAddr};
use wire::{BooleanWritable, DataInput, IntWritable, Writable};

use crate::config::HBaseConfig;
use crate::types::{region_of, PutArgs, Row, ScanArgs};
use crate::RS_PORT;

/// WAL / store-file entry opcodes.
const ENTRY_PUT: u8 = 1;
const ENTRY_DELETE: u8 = 2;

/// Error message prefix a client interprets as "refresh your region map".
pub const NOT_SERVING: &str = "NotServingRegion";

struct Region {
    /// In-memory, not yet persisted.
    memstore: BTreeMap<Vec<u8>, Vec<u8>>,
    memstore_bytes: usize,
    /// Block-cache stand-in: flushed rows, kept queryable.
    flushed: BTreeMap<Vec<u8>, Vec<u8>>,
    flush_seq: u64,
}

impl Region {
    fn new() -> Region {
        Region {
            memstore: BTreeMap::new(),
            memstore_bytes: 0,
            flushed: BTreeMap::new(),
            flush_seq: 0,
        }
    }

    fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.memstore.get(key).or_else(|| self.flushed.get(key))
    }
}

/// Serialize entries in the WAL / store-file format.
fn append_entry(buf: &mut Vec<u8>, op: u8, key: &[u8], value: &[u8]) {
    buf.push(op);
    buf.extend_from_slice(&(key.len() as u32).to_be_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(&(value.len() as u32).to_be_bytes());
    buf.extend_from_slice(value);
}

/// Parse entries written by [`append_entry`].
fn parse_entries(data: &[u8]) -> Vec<(u8, Vec<u8>, Vec<u8>)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 9 <= data.len() {
        let op = data[pos];
        pos += 1;
        let klen = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + klen + 4 > data.len() {
            break; // truncated tail (partial roll) — ignore, like HBase
        }
        let key = data[pos..pos + klen].to_vec();
        pos += klen;
        let vlen = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + vlen > data.len() {
            break;
        }
        let value = data[pos..pos + vlen].to_vec();
        pos += vlen;
        out.push((op, key, value));
    }
    out
}

struct RsState {
    cfg: HBaseConfig,
    rs_id: u32,
    n_regions: u32,
    /// Dynamically hosted buckets.
    regions: Mutex<HashMap<u32, Region>>,
    dfs: DfsClient,
    wal: Mutex<Vec<u8>>,
    wal_seq: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
    stop: AtomicBool,
}

impl RsState {
    fn wal_path(&self, seq: u64) -> String {
        format!("/hbase/wal/rs{}-{seq:08}", self.rs_id)
    }

    fn append_wal(&self, op: u8, key: &[u8], value: &[u8]) -> RpcResult<()> {
        let segment = {
            let mut wal = self.wal.lock();
            append_entry(&mut wal, op, key, value);
            if wal.len() >= self.cfg.wal_roll_bytes {
                Some(std::mem::take(&mut *wal))
            } else {
                None
            }
        };
        if let Some(segment) = segment {
            let seq = self.wal_seq.fetch_add(1, Ordering::Relaxed);
            self.dfs.write_file(&self.wal_path(seq), &segment)?;
        }
        Ok(())
    }

    fn put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), String> {
        let bucket = region_of(&key, self.n_regions);
        self.append_wal(ENTRY_PUT, &key, &value)
            .map_err(|e| e.to_string())?;
        let flush = {
            let mut regions = self.regions.lock();
            let region = regions
                .get_mut(&bucket)
                .ok_or_else(|| format!("{NOT_SERVING}: bucket {bucket}"))?;
            region.memstore_bytes += key.len() + value.len();
            region.memstore.insert(key, value);
            if region.memstore_bytes >= self.cfg.memstore_flush_bytes {
                let snapshot = std::mem::take(&mut region.memstore);
                region.memstore_bytes = 0;
                region.flush_seq += 1;
                Some((snapshot, region.flush_seq))
            } else {
                None
            }
        };
        if let Some((snapshot, seq)) = flush {
            // Persist the store file under the *region's* directory so any
            // future host of this bucket can recover it.
            let mut buf = Vec::new();
            for (k, v) in &snapshot {
                append_entry(&mut buf, ENTRY_PUT, k, v);
            }
            let path = format!("/hbase/region{bucket}/hfile-rs{}-{seq:06}", self.rs_id);
            self.dfs
                .write_file(&path, &buf)
                .map_err(|e| e.to_string())?;
            let mut regions = self.regions.lock();
            if let Some(region) = regions.get_mut(&bucket) {
                for (k, v) in snapshot {
                    region.flushed.insert(k, v);
                }
            }
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<bool, String> {
        let bucket = region_of(key, self.n_regions);
        self.append_wal(ENTRY_DELETE, key, &[])
            .map_err(|e| e.to_string())?;
        let mut regions = self.regions.lock();
        let region = regions
            .get_mut(&bucket)
            .ok_or_else(|| format!("{NOT_SERVING}: bucket {bucket}"))?;
        let in_mem = region.memstore.remove(key).is_some();
        let in_flushed = region.flushed.remove(key).is_some();
        Ok(in_mem || in_flushed)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        let bucket = region_of(key, self.n_regions);
        let regions = self.regions.lock();
        let region = regions
            .get(&bucket)
            .ok_or_else(|| format!("{NOT_SERVING}: bucket {bucket}"))?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        Ok(region.get(key).cloned())
    }

    fn scan(&self, start: &[u8], limit: usize) -> Vec<Row> {
        // Scan across all hosted regions, merged by key.
        let mut rows = Vec::new();
        let regions = self.regions.lock();
        for region in regions.values() {
            for (k, v) in region.memstore.range(start.to_vec()..) {
                rows.push(Row {
                    key: k.clone(),
                    value: v.clone(),
                });
            }
            for (k, v) in region.flushed.range(start.to_vec()..) {
                if !region.memstore.contains_key(k) {
                    rows.push(Row {
                        key: k.clone(),
                        value: v.clone(),
                    });
                }
            }
        }
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        rows.truncate(limit);
        rows
    }

    /// Bring a newly assigned bucket online: reload its store files from
    /// HDFS, then replay every WAL segment (any writer), applying only
    /// this bucket's entries — crash recovery, HBase-style.
    fn recover_bucket(&self, bucket: u32) -> RpcResult<Region> {
        let mut region = Region::new();
        // 1. Store files, in (writer, seq) path order.
        let dir = format!("/hbase/region{bucket}");
        let mut hfiles = self.dfs.list(&dir).unwrap_or_default();
        hfiles.sort_by(|a, b| a.path.cmp(&b.path));
        for file in hfiles {
            let data = self.dfs.read_file(&file.path)?;
            for (op, k, v) in parse_entries(&data) {
                match op {
                    ENTRY_PUT => {
                        region.flushed.insert(k, v);
                    }
                    ENTRY_DELETE => {
                        region.flushed.remove(&k);
                    }
                    _ => {}
                }
            }
        }
        // 2. WAL segments (every server's — entries for other buckets are
        // skipped). Unflushed rows live only here.
        let mut wals = self.dfs.list("/hbase/wal").unwrap_or_default();
        wals.sort_by(|a, b| a.path.cmp(&b.path));
        for file in wals {
            let data = self.dfs.read_file(&file.path)?;
            for (op, k, v) in parse_entries(&data) {
                if region_of(&k, self.n_regions) != bucket {
                    continue;
                }
                match op {
                    ENTRY_PUT => {
                        region.flushed.insert(k, v);
                    }
                    ENTRY_DELETE => {
                        region.flushed.remove(&k);
                    }
                    _ => {}
                }
            }
        }
        Ok(region)
    }

    /// Reconcile the hosted bucket set with the master's assignment.
    fn apply_assignment(self: &Arc<Self>, assigned: &[u32]) {
        let current: Vec<u32> = self.regions.lock().keys().copied().collect();
        for bucket in assigned {
            if !current.contains(bucket) {
                let _ = self.dfs.mkdirs(&format!("/hbase/region{bucket}"));
                match self.recover_bucket(*bucket) {
                    Ok(region) => {
                        self.regions.lock().insert(*bucket, region);
                    }
                    Err(_) => { /* retried on the next heartbeat */ }
                }
            }
        }
        // Hand off buckets moved away (the master's map is
        // authoritative). A *graceful* shed first rolls the WAL buffer
        // and flushes the bucket's memstore to HDFS, so nothing is lost
        // when another server recovers the bucket.
        let shed: Vec<(u32, Region)> = {
            let mut regions = self.regions.lock();
            let doomed: Vec<u32> = regions
                .keys()
                .copied()
                .filter(|bucket| !assigned.contains(bucket))
                .collect();
            doomed
                .into_iter()
                .filter_map(|bucket| regions.remove(&bucket).map(|r| (bucket, r)))
                .collect()
        };
        if !shed.is_empty() {
            // Roll the whole WAL buffer (covers every shed bucket's
            // unflushed puts and deletes).
            let segment = std::mem::take(&mut *self.wal.lock());
            if !segment.is_empty() {
                let seq = self.wal_seq.fetch_add(1, Ordering::Relaxed);
                let _ = self.dfs.write_file(&self.wal_path(seq), &segment);
            }
            for (bucket, mut region) in shed {
                if region.memstore.is_empty() {
                    continue;
                }
                let mut buf = Vec::new();
                for (k, v) in std::mem::take(&mut region.memstore) {
                    append_entry(&mut buf, ENTRY_PUT, &k, &v);
                }
                region.flush_seq += 1;
                let path = format!(
                    "/hbase/region{bucket}/hfile-rs{}-{:06}",
                    self.rs_id, region.flush_seq
                );
                let _ = self.dfs.write_file(&path, &buf);
            }
        }
    }
}

/// `hbase.RegionServerProtocol` — the operation plane.
struct RegionServerProtocol {
    state: Arc<RsState>,
}

impl RpcService for RegionServerProtocol {
    fn protocol(&self) -> &'static str {
        "hbase.RegionServerProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "put" => {
                let mut args = PutArgs::default();
                args.read_fields(param).map_err(|e| e.to_string())?;
                self.state.put(args.key, args.value)?;
                Ok(Box::new(BooleanWritable(true)))
            }
            "get" => {
                let mut key = Vec::new();
                key.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(self.state.get(&key)?))
            }
            "delete" => {
                let mut key = Vec::new();
                key.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(BooleanWritable(self.state.delete(&key)?)))
            }
            "scan" => {
                let mut args = ScanArgs::default();
                args.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(self.state.scan(&args.start, args.limit as usize)))
            }
            other => Err(format!("RegionServerProtocol has no method {other}")),
        }
    }
}

/// A running region server.
pub struct HRegionServer {
    server: Server,
    state: Arc<RsState>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl HRegionServer {
    /// Register with the master and start serving. The initial bucket
    /// assignment (and every later one) arrives via master heartbeats.
    pub fn start(
        cluster: &Cluster,
        host: Host,
        master: SimAddr,
        nn: SimAddr,
        cfg: HBaseConfig,
        total_servers: usize,
    ) -> RpcResult<HRegionServer> {
        // Operation plane rail.
        let (ops_fabric, ops_node) = if cfg.ops_rdma {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };
        // RPC plane rail (master + HDFS).
        let (rpc_fabric, rpc_node) = if cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };

        let master_client = Client::new(&rpc_fabric, rpc_node, cfg.rpc.clone())?;
        let rs_id: IntWritable = master_client.call(
            master,
            "hbase.MasterProtocol",
            "registerRegionServer",
            &(IntWritable(ops_node.0 as i32), IntWritable(RS_PORT as i32)),
        )?;
        let rs_id = rs_id.0 as u32;

        let hdfs_net = HostNet::of(cluster, host, &cfg.hdfs);
        let dfs = DfsClient::new(&hdfs_net, nn, cfg.hdfs.clone())?;
        dfs.mkdirs("/hbase/wal")?;

        let n_regions = (total_servers * cfg.regions_per_server) as u32;
        let state = Arc::new(RsState {
            cfg: cfg.clone(),
            rs_id,
            n_regions,
            regions: Mutex::new(HashMap::new()),
            dfs,
            wal: Mutex::new(Vec::new()),
            wal_seq: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });

        // First heartbeat synchronously, so the server comes up already
        // hosting its buckets.
        let assigned: Vec<IntWritable> = master_client.call(
            master,
            "hbase.MasterProtocol",
            "rsHeartbeat",
            &IntWritable(rs_id as i32),
        )?;
        state.apply_assignment(&assigned.iter().map(|b| b.0 as u32).collect::<Vec<_>>());

        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(RegionServerProtocol {
            state: Arc::clone(&state),
        }));
        let server = Server::start(
            &ops_fabric,
            ops_node,
            RS_PORT,
            cfg.ops_rpc_config(),
            registry,
        )?;

        // Heartbeat loop: liveness + assignment reconciliation.
        let state2 = Arc::clone(&state);
        let heartbeat = std::thread::Builder::new()
            .name(format!("rs{rs_id}-heartbeat"))
            .spawn(move || {
                while !state2.stop.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(150));
                    if let Ok(assigned) = master_client.call::<IntWritable, Vec<IntWritable>>(
                        master,
                        "hbase.MasterProtocol",
                        "rsHeartbeat",
                        &IntWritable(state2.rs_id as i32),
                    ) {
                        state2.apply_assignment(
                            &assigned.iter().map(|b| b.0 as u32).collect::<Vec<_>>(),
                        );
                    }
                }
                master_client.shutdown();
            })
            .expect("spawn rs heartbeat");

        Ok(HRegionServer {
            server,
            state,
            threads: Mutex::new(vec![heartbeat]),
        })
    }

    /// This server's id.
    pub fn id(&self) -> u32 {
        self.state.rs_id
    }

    /// Buckets currently hosted.
    pub fn hosted_buckets(&self) -> Vec<u32> {
        let mut buckets: Vec<u32> = self.state.regions.lock().keys().copied().collect();
        buckets.sort_unstable();
        buckets
    }

    /// (puts served, gets served).
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.state.puts.load(Ordering::Relaxed),
            self.state.gets.load(Ordering::Relaxed),
        )
    }

    /// Stop serving. Idempotent.
    pub fn stop(&self) {
        if self.state.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.server.stop();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        self.state.dfs.shutdown();
    }
}

impl std::fmt::Debug for HRegionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HRegionServer")
            .field("id", &self.state.rs_id)
            .field("buckets", &self.hosted_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_format_roundtrips_and_tolerates_truncation() {
        let mut buf = Vec::new();
        append_entry(&mut buf, ENTRY_PUT, b"k1", b"v1");
        append_entry(&mut buf, ENTRY_DELETE, b"k2", b"");
        append_entry(&mut buf, ENTRY_PUT, b"k3", &[7u8; 100]);
        let entries = parse_entries(&buf);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (ENTRY_PUT, b"k1".to_vec(), b"v1".to_vec()));
        assert_eq!(entries[1], (ENTRY_DELETE, b"k2".to_vec(), Vec::new()));
        // A torn tail drops only the incomplete entry.
        let torn = &buf[..buf.len() - 30];
        let entries = parse_entries(torn);
        assert_eq!(entries.len(), 2);
    }
}
