//! A YCSB-style workload driver (Cooper et al., SoCC'10).
//!
//! Implements the pieces the paper's Figure 8 uses: a load phase that
//! inserts `record_count` rows of `value_size` bytes, and a run phase of
//! `operation_count` operations with a configurable get/put mix, keys
//! chosen uniformly or by the standard YCSB zipfian generator.

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use rpcoib::RpcResult;

use crate::client::HBaseClient;

/// Key chooser distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    Uniform,
    /// Zipfian with the YCSB-standard constant 0.99.
    Zipfian,
}

/// Workload definition.
#[derive(Debug, Clone)]
pub struct Workload {
    pub record_count: usize,
    pub operation_count: usize,
    /// Fraction of reads in the run phase (1.0 = 100% Get, 0.0 = 100% Put).
    pub read_proportion: f64,
    /// Fraction of scans (YCSB workload E style); the remainder after
    /// reads and scans is Puts.
    pub scan_proportion: f64,
    /// Rows returned per scan.
    pub scan_length: u32,
    pub value_size: usize,
    pub distribution: KeyDistribution,
    pub seed: u64,
}

impl Workload {
    /// 100% Get over `records` rows (Figure 8(a)).
    pub fn get_only(records: usize, ops: usize) -> Workload {
        Workload {
            record_count: records,
            operation_count: ops,
            read_proportion: 1.0,
            scan_proportion: 0.0,
            scan_length: 10,
            value_size: 1024,
            distribution: KeyDistribution::Zipfian,
            seed: 42,
        }
    }

    /// YCSB workload E shape: 95% short scans, 5% puts.
    pub fn scan_heavy(records: usize, ops: usize) -> Workload {
        Workload {
            read_proportion: 0.0,
            scan_proportion: 0.95,
            ..Workload::get_only(records, ops)
        }
    }

    /// 100% Put (Figure 8(b)).
    pub fn put_only(records: usize, ops: usize) -> Workload {
        Workload {
            read_proportion: 0.0,
            ..Workload::get_only(records, ops)
        }
    }

    /// 50% Get / 50% Put (Figure 8(c)).
    pub fn mixed(records: usize, ops: usize) -> Workload {
        Workload {
            read_proportion: 0.5,
            ..Workload::get_only(records, ops)
        }
    }
}

/// Result of a run phase.
#[derive(Debug, Clone)]
pub struct Report {
    pub operations: usize,
    pub gets: usize,
    pub puts: usize,
    pub scans: usize,
    pub elapsed: Duration,
    /// Sorted per-op latencies (for percentile queries).
    latencies: Vec<Duration>,
}

impl Report {
    /// Throughput in thousands of operations per second (the Figure 8
    /// y-axis unit).
    pub fn kops_per_sec(&self) -> f64 {
        self.operations as f64 / self.elapsed.as_secs_f64() / 1e3
    }

    /// Latency at percentile `p` (0.0..=1.0).
    pub fn latency_at(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies.len() - 1) as f64 * p).round() as usize;
        self.latencies[idx]
    }
}

/// The YCSB key for a record id.
pub fn key_of(id: usize) -> Vec<u8> {
    format!("user{id:012}").into_bytes()
}

/// Zipfian id generator (Gray et al. rejection-free method, as in YCSB).
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    pub fn new(n: usize) -> Zipfian {
        let theta = 0.99;
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw an id in `0..n`, skewed toward small ids.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let id = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        id.min(self.n - 1)
    }
}

/// Load phase: insert `record_count` rows.
pub fn load(client: &HBaseClient, workload: &Workload) -> RpcResult<()> {
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut value = vec![0u8; workload.value_size];
    for id in 0..workload.record_count {
        rng.fill_bytes(&mut value);
        client.put(&key_of(id), &value)?;
    }
    Ok(())
}

/// Run phase: execute `operation_count` operations per the mix.
pub fn run(client: &HBaseClient, workload: &Workload) -> RpcResult<Report> {
    let mut rng = StdRng::seed_from_u64(workload.seed.wrapping_add(1));
    let zipf = Zipfian::new(workload.record_count);
    let mut value = vec![0u8; workload.value_size];
    let mut latencies = Vec::with_capacity(workload.operation_count);
    let mut gets = 0;
    let mut puts = 0;
    let mut scans = 0;
    let start = Instant::now();
    for _ in 0..workload.operation_count {
        let id = match workload.distribution {
            KeyDistribution::Uniform => rng.gen_range(0..workload.record_count),
            KeyDistribution::Zipfian => zipf.sample(&mut rng),
        };
        let key = key_of(id);
        let op_start = Instant::now();
        let dice: f64 = rng.gen();
        if dice < workload.read_proportion {
            let _row = client.get(&key)?;
            gets += 1;
        } else if dice < workload.read_proportion + workload.scan_proportion {
            let _rows = client.scan(&key, workload.scan_length)?;
            scans += 1;
        } else {
            rng.fill_bytes(&mut value);
            client.put(&key, &value)?;
            puts += 1;
        }
        latencies.push(op_start.elapsed());
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    Ok(Report {
        operations: gets + puts + scans,
        gets,
        puts,
        scans,
        elapsed,
        latencies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0;
        for _ in 0..10_000 {
            let id = z.sample(&mut rng);
            assert!(id < 1000);
            if id < 100 {
                low += 1;
            }
        }
        // With theta=0.99 the lowest 10% of ids should absorb well over
        // half the draws.
        assert!(
            low > 5_000,
            "zipfian not skewed: {low}/10000 in lowest decile"
        );
    }

    #[test]
    fn keys_are_fixed_width_and_distinct() {
        assert_eq!(key_of(0).len(), key_of(999_999).len());
        assert_ne!(key_of(1), key_of(2));
    }

    #[test]
    fn workload_presets_match_figure8() {
        assert_eq!(Workload::get_only(100, 10).read_proportion, 1.0);
        assert_eq!(Workload::put_only(100, 10).read_proportion, 0.0);
        assert_eq!(Workload::mixed(100, 10).read_proportion, 0.5);
        assert_eq!(
            Workload::get_only(100, 10).value_size,
            1024,
            "1 KB records per the paper"
        );
    }

    #[test]
    fn report_percentiles() {
        let report = Report {
            operations: 3,
            gets: 3,
            puts: 0,
            scans: 0,
            elapsed: Duration::from_secs(1),
            latencies: vec![
                Duration::from_micros(10),
                Duration::from_micros(20),
                Duration::from_micros(30),
            ],
        };
        assert_eq!(report.latency_at(0.0), Duration::from_micros(10));
        assert_eq!(report.latency_at(0.5), Duration::from_micros(20));
        assert_eq!(report.latency_at(1.0), Duration::from_micros(30));
        assert!((report.kops_per_sec() - 0.003).abs() < 1e-9);
    }
}
