//! Mini-HBase integration: put/get/scan semantics, flush persistence,
//! YCSB phases, and the Figure 8 transport configurations.

use mini_hbase::ycsb::{self, key_of, Workload};
use mini_hbase::{HBaseConfig, MiniHbase};
use simnet::{model, Host};

fn small(mut cfg: HBaseConfig) -> HBaseConfig {
    cfg.memstore_flush_bytes = 16 * 1024;
    cfg.wal_roll_bytes = 8 * 1024;
    cfg.hdfs.block_size = 128 * 1024;
    cfg
}

fn put_get_roundtrip(cfg: HBaseConfig) {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 3, small(cfg)).unwrap();
    let client = hbase.client().unwrap();
    for id in 0..50usize {
        let value = format!("value-{id}").into_bytes();
        client.put(&key_of(id), &value).unwrap();
    }
    for id in 0..50usize {
        let got = client.get(&key_of(id)).unwrap().unwrap();
        assert_eq!(got, format!("value-{id}").into_bytes());
    }
    assert!(client.get(b"user-nonexistent").unwrap().is_none());
    client.shutdown();
    hbase.stop();
}

#[test]
fn put_get_all_sockets() {
    put_get_roundtrip(HBaseConfig::socket());
}

#[test]
fn put_get_hbaseoib() {
    put_get_roundtrip(HBaseConfig::ops_ib());
}

#[test]
fn put_get_fully_rdma() {
    put_get_roundtrip(HBaseConfig::all_ib());
}

#[test]
fn overwrites_return_latest_value() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    client.put(b"user1", b"v1").unwrap();
    client.put(b"user1", b"v2").unwrap();
    assert_eq!(client.get(b"user1").unwrap().unwrap(), b"v2");
    client.shutdown();
    hbase.stop();
}

#[test]
fn flushes_write_to_hdfs_and_data_stays_readable() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    // Write enough 1KB values to force several memstore flushes and WAL
    // rolls (16KB / 8KB thresholds).
    let value = vec![7u8; 1024];
    for id in 0..200usize {
        client.put(&key_of(id), &value).unwrap();
    }
    // Every row still readable (memstore + block cache).
    for id in (0..200).step_by(17) {
        assert_eq!(client.get(&key_of(id)).unwrap().unwrap(), value, "row {id}");
    }
    // HDFS now holds WAL segments and store files.
    let dfs = hbase.dfs().client().unwrap();
    let wal_segments = dfs.list("/hbase/wal").unwrap().len();
    let mut store_files = 0;
    for bucket in 0..hbase.regionservers().len() {
        store_files += dfs
            .list(&format!("/hbase/region{bucket}"))
            .unwrap_or_default()
            .len();
    }
    assert!(wal_segments > 0, "WAL rolls must hit HDFS");
    assert!(store_files > 0, "memstore flushes must hit HDFS");
    client.shutdown();
    hbase.stop();
}

#[test]
fn scan_returns_sorted_rows() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    for id in 0..30usize {
        client
            .put(&key_of(id), format!("v{id}").as_bytes())
            .unwrap();
    }
    let rows = client.scan(&key_of(0), 10).unwrap();
    assert!(!rows.is_empty());
    assert!(
        rows.windows(2).all(|w| w[0].key <= w[1].key),
        "scan must be key-ordered"
    );
    client.shutdown();
    hbase.stop();
}

#[test]
fn ycsb_load_and_mixed_run() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 3, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    let workload = Workload {
        value_size: 256,
        ..Workload::mixed(300, 400)
    };
    ycsb::load(&client, &workload).unwrap();
    let report = ycsb::run(&client, &workload).unwrap();
    assert_eq!(report.operations, 400);
    assert!(
        report.gets > 100 && report.puts > 100,
        "mix must be near 50/50: {report:?}"
    );
    assert!(report.kops_per_sec() > 0.0);
    assert!(report.latency_at(0.5) > std::time::Duration::ZERO);
    // Loaded rows exist.
    assert!(client.get(&key_of(0)).unwrap().is_some());
    assert!(client.get(&key_of(299)).unwrap().is_some());
    client.shutdown();
    hbase.stop();
}

#[test]
fn ops_are_spread_across_region_servers() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 3, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    let workload = Workload {
        value_size: 128,
        ..Workload::put_only(240, 240)
    };
    ycsb::load(&client, &workload).unwrap();
    for rs in hbase.regionservers() {
        let (puts, _gets) = rs.op_counts();
        assert!(puts > 20, "region server {} starved: {puts} puts", rs.id());
    }
    client.shutdown();
    hbase.stop();
}

#[test]
fn rdma_ops_plane_beats_socket_plane_on_get_latency() {
    // Figure 8's direction, in miniature: HBaseoIB gets are faster than
    // socket gets over IPoIB. Measured on the simnet modeled-time ledger
    // (the wire/stack cost the calibrated models charge the client host,
    // summed over both rails) rather than on wall-clock, so scheduler
    // noise from the rest of the suite cannot flip the comparison.
    let socket_hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let rdma_hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::ops_ib())).unwrap();
    let socket_client = socket_hbase.client().unwrap();
    let rdma_client = rdma_hbase.client().unwrap();
    // Clients live on the reserved client host; a sequential get charges
    // every client-side ledger entry before it returns, and no background
    // traffic (heartbeats, flushes) touches this host's nodes.
    let modeled = |hbase: &MiniHbase| {
        let c = hbase.cluster();
        c.eth().modeled_ns(c.eth_node(Host(1))) + c.ib().modeled_ns(c.ib_node(Host(1)))
    };
    let value = vec![9u8; 1024];
    for id in 0..100usize {
        socket_client.put(&key_of(id), &value).unwrap();
        rdma_client.put(&key_of(id), &value).unwrap();
    }
    let mut socket_samples = Vec::new();
    let mut rdma_samples = Vec::new();
    for round in 0..120usize {
        let key = key_of(round % 100);
        let before = modeled(&socket_hbase);
        let _ = socket_client.get(&key).unwrap();
        socket_samples.push(modeled(&socket_hbase) - before);
        let before = modeled(&rdma_hbase);
        let _ = rdma_client.get(&key).unwrap();
        rdma_samples.push(modeled(&rdma_hbase) - before);
    }
    socket_samples.sort_unstable();
    rdma_samples.sort_unstable();
    let (socket, rdma) = (socket_samples[60], rdma_samples[60]);
    socket_client.shutdown();
    rdma_client.shutdown();
    socket_hbase.stop();
    rdma_hbase.stop();
    assert!(
        rdma < socket,
        "HBaseoIB median get ({rdma} modeled ns) must beat sockets ({socket} modeled ns)"
    );
}

#[test]
fn delete_removes_rows_everywhere() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    // Enough volume that some rows are flushed out of the memstore.
    let value = vec![3u8; 1024];
    for id in 0..60usize {
        client.put(&key_of(id), &value).unwrap();
    }
    assert!(client.delete(&key_of(5)).unwrap(), "freshly written row");
    assert!(client.get(&key_of(5)).unwrap().is_none());
    assert!(!client.delete(&key_of(5)).unwrap(), "double delete");
    assert!(!client.delete(b"user-never-existed").unwrap());
    // Survivors unaffected.
    assert!(client.get(&key_of(6)).unwrap().is_some());
    client.shutdown();
    hbase.stop();
}

#[test]
fn scan_heavy_workload_runs() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    let workload = mini_hbase::ycsb::Workload {
        value_size: 128,
        ..mini_hbase::ycsb::Workload::scan_heavy(200, 150)
    };
    ycsb::load(&client, &workload).unwrap();
    let report = ycsb::run(&client, &workload).unwrap();
    assert_eq!(report.operations, 150);
    assert!(report.scans > 100, "95% scans expected: {report:?}");
    assert!(report.gets == 0);
    client.shutdown();
    hbase.stop();
}

#[test]
fn rows_survive_region_server_crash() {
    // The flagship recovery path: rows (flushed AND unflushed) must
    // survive a region-server crash via HDFS store files + WAL replay on
    // whichever surviving server inherits the buckets.
    let mut cfg = small(HBaseConfig::socket());
    cfg.wal_roll_bytes = 2 * 1024; // roll often so little sits unflushed
    let hbase = MiniHbase::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let client = hbase.client().unwrap();
    let n_rows = 120usize;
    for id in 0..n_rows {
        client
            .put(&key_of(id), format!("value-{id}").as_bytes())
            .unwrap();
    }
    // Force the tail of the WAL out by writing filler (the final partial
    // WAL buffer of a crashed server is lost, as in real HBase).
    for id in n_rows..n_rows + 40 {
        client.put(&key_of(id), &[0u8; 256]).unwrap();
    }

    // Crash one region server (not a clean stop: kill its host so the
    // master sees missed heartbeats). Keep its DataNode? Killing the host
    // kills the co-located DataNode too — replication covers the data.
    let victim = &hbase.regionservers()[0];
    let victim_buckets = victim.hosted_buckets();
    assert!(!victim_buckets.is_empty());
    victim.stop();

    // Every row must come back, served by the surviving servers.
    for id in 0..n_rows {
        let got = client.get(&key_of(id)).unwrap();
        assert_eq!(
            got.as_deref(),
            Some(format!("value-{id}").as_bytes()),
            "row {id} lost in the crash"
        );
    }
    // And the inherited buckets are really hosted elsewhere now.
    let survivors: Vec<u32> = hbase.regionservers()[1..]
        .iter()
        .flat_map(|rs| rs.hosted_buckets())
        .collect();
    for bucket in victim_buckets {
        assert!(
            survivors.contains(&bucket),
            "bucket {bucket} not reassigned"
        );
    }
    client.shutdown();
    hbase.stop();
}

#[test]
fn multi_get_preserves_order_and_missing_rows() {
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, small(HBaseConfig::socket())).unwrap();
    let client = hbase.client().unwrap();
    client.put(&key_of(1), b"one").unwrap();
    client.put(&key_of(3), b"three").unwrap();
    let k1 = key_of(1);
    let k2 = key_of(2);
    let k3 = key_of(3);
    let rows = client.multi_get(&[&k1, &k2, &k3]).unwrap();
    assert_eq!(rows[0].as_deref(), Some(b"one".as_slice()));
    assert_eq!(rows[1], None);
    assert_eq!(rows[2].as_deref(), Some(b"three".as_slice()));
    client.shutdown();
    hbase.stop();
}
