//! Property tests: pool invariants under arbitrary call-size sequences.

use bufpool::{class_capacity, class_for, HeapMem, NativePool, PoolMem, ShadowPool, SizeClasses};
use proptest::prelude::*;

proptest! {
    /// The pool always returns a buffer at least as large as requested,
    /// and ladder-sized requests come back with the exact class capacity.
    #[test]
    fn acquired_buffers_fit_requests(sizes in proptest::collection::vec(1usize..100_000, 1..100)) {
        let pool = NativePool::new(SizeClasses::up_to(16 * 1024), HeapMem::new);
        for size in sizes {
            let buf = pool.acquire_size(size);
            prop_assert!(buf.capacity() >= size);
            if let Some(class) = buf.class() {
                prop_assert_eq!(buf.capacity(), class_capacity(class));
                prop_assert_eq!(class, class_for(size));
            } else {
                prop_assert!(size > 16 * 1024, "only jumbo requests go oversize");
            }
        }
    }

    /// Whatever sequence of sizes a call kind produces, the history always
    /// predicts the class of the *previous* size — message size locality
    /// turns that into a hit when sizes repeat.
    #[test]
    fn history_tracks_last_size(sizes in proptest::collection::vec(1usize..20_000, 1..50)) {
        let shadow = ShadowPool::new(
            NativePool::new(SizeClasses::up_to(32 * 1024), HeapMem::new),
            true,
        );
        for &size in &sizes {
            shadow.record("proto", "method", size);
            let expect = class_for(size).min(shadow.native().classes().count - 1);
            prop_assert_eq!(shadow.recorded_class("proto", "method"), Some(expect));
            let buf = shadow.acquire("proto", "method");
            prop_assert_eq!(buf.class(), Some(expect));
        }
    }

    /// Growing a buffer repeatedly preserves the prefix that was in use.
    #[test]
    fn repeated_grow_preserves_prefix(data in proptest::collection::vec(any::<u8>(), 1..4000)) {
        let shadow = ShadowPool::new(
            NativePool::new(SizeClasses::up_to(64 * 1024), HeapMem::new),
            true,
        );
        let mut buf = shadow.acquire("p", "m");
        let mut written = 0usize;
        for chunk in data.chunks(97) {
            while written + chunk.len() > buf.capacity() {
                buf = shadow.grow(buf, written);
            }
            buf.mem_mut().put(written, chunk);
            written += chunk.len();
        }
        let mut out = vec![0u8; written];
        buf.mem().get(0, &mut out);
        prop_assert_eq!(out, data);
    }
}
