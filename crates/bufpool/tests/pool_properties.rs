//! Property tests: pool invariants under arbitrary call-size sequences.

use bufpool::{
    class_capacity, class_for, HeapMem, NativePool, PoolMem, ShadowPool, SizeClasses,
    SHRINK_HYSTERESIS,
};
use proptest::prelude::*;

fn shadow(max_bytes: usize) -> ShadowPool<HeapMem> {
    ShadowPool::new(
        NativePool::new(SizeClasses::up_to(max_bytes), HeapMem::new),
        true,
    )
}

/// The reference model of the history's hysteresis: grow immediately,
/// shrink after [`SHRINK_HYSTERESIS`] consecutive smaller observations.
struct ModelEntry {
    class: Option<usize>,
    overshoots: u32,
}

impl ModelEntry {
    fn new() -> ModelEntry {
        ModelEntry {
            class: None,
            overshoots: 0,
        }
    }

    fn record(&mut self, class: usize) {
        match self.class {
            None => self.class = Some(class),
            Some(current) if class > current => {
                self.class = Some(class);
                self.overshoots = 0;
            }
            Some(current) if class == current => self.overshoots = 0,
            Some(_) => {
                self.overshoots += 1;
                if self.overshoots >= SHRINK_HYSTERESIS {
                    self.class = Some(class);
                    self.overshoots = 0;
                }
            }
        }
    }
}

proptest! {
    /// The pool always returns a buffer at least as large as requested,
    /// and ladder-sized requests come back with the exact class capacity.
    #[test]
    fn acquired_buffers_fit_requests(sizes in proptest::collection::vec(1usize..100_000, 1..100)) {
        let pool = NativePool::new(SizeClasses::up_to(16 * 1024), HeapMem::new);
        for size in sizes {
            let buf = pool.acquire_size(size);
            prop_assert!(buf.capacity() >= size);
            if let Some(class) = buf.class() {
                prop_assert_eq!(buf.capacity(), class_capacity(class));
                prop_assert_eq!(class, class_for(size));
            } else {
                prop_assert!(size > 16 * 1024, "only jumbo requests go oversize");
            }
        }
    }

    /// Whatever sequence of sizes a call kind produces, the history obeys
    /// the hysteresis model exactly: grow immediately on undershoot,
    /// shrink only after `SHRINK_HYSTERESIS` consecutive smaller
    /// observations — and acquisitions are always served at the recorded
    /// class.
    #[test]
    fn history_follows_hysteresis_model(sizes in proptest::collection::vec(1usize..20_000, 1..50)) {
        let shadow = shadow(32 * 1024);
        let top = shadow.native().classes().count - 1;
        let mut model = ModelEntry::new();
        for &size in &sizes {
            shadow.record("proto", "method", size);
            model.record(class_for(size).min(top));
            prop_assert_eq!(shadow.recorded_class("proto", "method"), model.class);
            let buf = shadow.acquire("proto", "method");
            prop_assert_eq!(buf.class(), model.class);
        }
    }

    /// Convergence: after any warmup traffic, a steady workload pulls the
    /// history to its class within `SHRINK_HYSTERESIS` calls, and every
    /// further steady call is a history hit.
    #[test]
    fn steady_workload_converges(
        warmup in proptest::collection::vec(1usize..20_000, 0..30),
        steady in 1usize..20_000,
        tail in 3usize..20,
    ) {
        let shadow = shadow(32 * 1024);
        let top = shadow.native().classes().count - 1;
        for &size in &warmup {
            shadow.record("proto", "method", size);
        }
        for _ in 0..tail {
            shadow.record("proto", "method", steady);
        }
        let expect = class_for(steady).min(top);
        prop_assert_eq!(
            shadow.recorded_class("proto", "method"),
            Some(expect),
            "steady size {} must converge to its class after {} records",
            steady,
            tail
        );
        // Converged means converged: the record no longer moves, and the
        // pool serves right-sized buffers first try.
        let (hits_before, _, _, _) = shadow.stats().snapshot();
        shadow.record("proto", "method", steady);
        prop_assert_eq!(shadow.recorded_class("proto", "method"), Some(expect));
        let (hits_after, _, _, _) = shadow.stats().snapshot();
        prop_assert_eq!(hits_after, hits_before + 1);
    }

    /// No oscillation: a workload alternating between two size classes
    /// parks at the larger class after at most one shrink, instead of
    /// bouncing between adjacent classes forever. (Without hysteresis,
    /// every single call here would rewrite the record.)
    #[test]
    fn alternating_workload_never_oscillates(
        small in 1usize..4_000,
        rounds in 2usize..25,
    ) {
        let shadow = shadow(64 * 1024);
        let top = shadow.native().classes().count - 1;
        // 16x the small size is always >= 4 classes up, and still within
        // the 64K ladder — the two sizes can never share a class.
        let large = small * 16;
        let expect = class_for(large).min(top);
        let mut changes = 0u32;
        let mut last = None;
        for _ in 0..rounds {
            for size in [small, large] {
                shadow.record("proto", "method", size);
                let now = shadow.recorded_class("proto", "method");
                if last.is_some() && now != last {
                    changes += 1;
                }
                last = now;
            }
        }
        prop_assert_eq!(last, Some(expect), "alternation parks at the larger class");
        prop_assert!(
            changes <= 1,
            "record moved {} times over {} rounds — oscillation",
            changes,
            rounds
        );
        let (_, _, shrinks, _) = shadow.stats().snapshot();
        prop_assert_eq!(shrinks, 0, "the shrink path must never fire under alternation");
    }

    /// Growing a buffer repeatedly preserves the prefix that was in use.
    #[test]
    fn repeated_grow_preserves_prefix(data in proptest::collection::vec(any::<u8>(), 1..4000)) {
        let shadow = ShadowPool::new(
            NativePool::new(SizeClasses::up_to(64 * 1024), HeapMem::new),
            true,
        );
        let mut buf = shadow.acquire("p", "m");
        let mut written = 0usize;
        for chunk in data.chunks(97) {
            while written + chunk.len() > buf.capacity() {
                buf = shadow.grow(buf, written);
            }
            buf.mem_mut().put(written, chunk);
            written += chunk.len();
        }
        let mut out = vec![0u8; written];
        buf.mem().get(0, &mut out);
        prop_assert_eq!(out, data);
    }
}
