//! Backing memory for the pool.
//!
//! [`PoolMem`] abstracts over *where* a pooled buffer lives: registered
//! RDMA memory ([`simnet::MemoryRegion`], the production configuration) or
//! plain heap memory ([`HeapMem`], used by tests and by the ablation that
//! quantifies pre-registration). The RPCoIB streams only need byte access
//! and (for the RDMA path) the region itself.

use simnet::{MemoryRegion, RdmaDevice};

/// Byte-addressable pooled memory.
pub trait PoolMem: Send + 'static {
    /// Usable capacity in bytes.
    fn capacity(&self) -> usize;
    /// Copy `data` into the buffer at `offset`. Panics on overflow (pool
    /// invariants guarantee callers stay in bounds).
    fn put(&mut self, offset: usize, data: &[u8]);
    /// Copy bytes out of the buffer.
    fn get(&self, offset: usize, out: &mut [u8]);
    /// Structured read access without copying.
    fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R;
}

/// Plain heap-backed pool memory.
#[derive(Debug)]
pub struct HeapMem(Box<[u8]>);

impl HeapMem {
    /// Allocate `len` zeroed bytes.
    pub fn new(len: usize) -> HeapMem {
        HeapMem(vec![0u8; len].into_boxed_slice())
    }
}

impl PoolMem for HeapMem {
    fn capacity(&self) -> usize {
        self.0.len()
    }
    fn put(&mut self, offset: usize, data: &[u8]) {
        self.0[offset..offset + data.len()].copy_from_slice(data);
    }
    fn get(&self, offset: usize, out: &mut [u8]) {
        out.copy_from_slice(&self.0[offset..offset + out.len()]);
    }
    fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.0)
    }
}

impl PoolMem for MemoryRegion {
    fn capacity(&self) -> usize {
        self.len()
    }
    fn put(&mut self, offset: usize, data: &[u8]) {
        self.write_at(offset, data).expect("pool buffer bounds");
    }
    fn get(&self, offset: usize, out: &mut [u8]) {
        self.read_at(offset, out).expect("pool buffer bounds");
    }
    fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        MemoryRegion::with(self, f)
    }
}

/// Factory that backs a pool with memory registered on a given HCA —
/// registration happens here, at pool-fill time, which is exactly the
/// pre-registration the paper credits for removing per-call overhead.
#[derive(Clone)]
pub struct RdmaMemFactory {
    device: RdmaDevice,
}

impl RdmaMemFactory {
    pub fn new(device: RdmaDevice) -> Self {
        RdmaMemFactory { device }
    }

    /// Register a fresh region of `len` bytes.
    pub fn allocate(&self, len: usize) -> MemoryRegion {
        self.device.register(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, Fabric};

    #[test]
    fn heap_mem_put_get() {
        let mut m = HeapMem::new(64);
        assert_eq!(m.capacity(), 64);
        m.put(10, b"abc");
        let mut out = [0u8; 3];
        m.get(10, &mut out);
        assert_eq!(&out, b"abc");
        m.with(|bytes| assert_eq!(&bytes[10..13], b"abc"));
    }

    #[test]
    fn memory_region_implements_pool_mem() {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let node = fabric.add_node();
        let dev = RdmaDevice::open(&fabric, node).unwrap();
        let factory = RdmaMemFactory::new(dev);
        let mut mr = factory.allocate(256);
        assert_eq!(PoolMem::capacity(&mr), 256);
        mr.put(0, b"registered");
        let mut out = [0u8; 10];
        mr.get(0, &mut out);
        assert_eq!(&out, b"registered");
    }

    #[test]
    #[should_panic]
    fn heap_mem_bounds_panic() {
        let mut m = HeapMem::new(8);
        m.put(6, b"abc");
    }
}
