//! Size-class arithmetic.
//!
//! Classes are powers of two starting at 128 bytes — the ladder shown on
//! the y-axis of the paper's Figure 3 (128 B, 256 B, 512 B, 1 KB, 2 KB,
//! 4 KB, …). A request maps to the smallest class that fits it.

/// Smallest buffer class, bytes.
pub const MIN_CLASS_BYTES: usize = 128;

/// Default largest buffer class, bytes (16 MiB ⇒ 18 classes).
pub const DEFAULT_MAX_CLASS_BYTES: usize = 16 * 1024 * 1024;

/// The class ladder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClasses {
    /// Number of classes; class `i` holds buffers of `MIN << i` bytes.
    pub count: usize,
}

impl SizeClasses {
    /// Ladder from 128 B up to (at least) `max_bytes`.
    pub fn up_to(max_bytes: usize) -> SizeClasses {
        SizeClasses {
            count: class_for(max_bytes) + 1,
        }
    }

    /// Capacity of class `idx`.
    pub fn capacity(&self, idx: usize) -> usize {
        assert!(
            idx < self.count,
            "class {idx} out of range ({} classes)",
            self.count
        );
        class_capacity(idx)
    }

    /// Largest capacity in the ladder.
    pub fn max_capacity(&self) -> usize {
        class_capacity(self.count - 1)
    }

    /// The class a request of `size` bytes maps to, or `None` if it exceeds
    /// the ladder (callers fall back to a one-off allocation).
    pub fn class_of(&self, size: usize) -> Option<usize> {
        let idx = class_for(size);
        (idx < self.count).then_some(idx)
    }
}

impl Default for SizeClasses {
    fn default() -> Self {
        SizeClasses::up_to(DEFAULT_MAX_CLASS_BYTES)
    }
}

/// Index of the smallest class holding `size` bytes (unbounded ladder).
pub fn class_for(size: usize) -> usize {
    let size = size.max(1);
    let needed = size.div_ceil(MIN_CLASS_BYTES).next_power_of_two();
    needed.trailing_zeros() as usize
}

/// Capacity in bytes of class `idx`.
pub fn class_capacity(idx: usize) -> usize {
    MIN_CLASS_BYTES << idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries() {
        assert_eq!(class_for(0), 0);
        assert_eq!(class_for(1), 0);
        assert_eq!(class_for(128), 0);
        assert_eq!(class_for(129), 1);
        assert_eq!(class_for(256), 1);
        assert_eq!(class_for(257), 2);
        assert_eq!(class_for(1024), 3);
        assert_eq!(class_for(4096), 5);
    }

    #[test]
    fn capacity_is_inverse_of_class() {
        for idx in 0..20 {
            let cap = class_capacity(idx);
            assert_eq!(class_for(cap), idx);
            assert_eq!(class_for(cap + 1), idx + 1);
        }
    }

    #[test]
    fn ladder_configuration() {
        let ladder = SizeClasses::default();
        assert_eq!(ladder.max_capacity(), DEFAULT_MAX_CLASS_BYTES);
        assert_eq!(ladder.class_of(130), Some(1));
        assert_eq!(
            ladder.class_of(DEFAULT_MAX_CLASS_BYTES),
            Some(ladder.count - 1)
        );
        assert_eq!(ladder.class_of(DEFAULT_MAX_CLASS_BYTES + 1), None);
        let small = SizeClasses::up_to(1024);
        assert_eq!(small.count, 4); // 128, 256, 512, 1024
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn capacity_of_missing_class_panics() {
        SizeClasses::up_to(256).capacity(9);
    }
}
