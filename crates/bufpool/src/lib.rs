//! # bufpool — the history-based two-level buffer pool of RPCoIB
//!
//! Section III-C of the paper: stock Hadoop RPC allocates a fresh buffer
//! per call and cannot know the serialized size up front, so it pays
//! repeated reallocation-and-copy (Algorithm 1). RPCoIB replaces this with
//! a **two-level pool**:
//!
//! * the **native pool** ([`NativePool`]) owns pre-allocated,
//!   pre-registered RDMA-capable buffers arranged into powers-of-two size
//!   classes (128 B, 256 B, 512 B, 1 KB, … — the classes of the paper's
//!   Figure 3), so the per-call cost of acquiring RDMA-ready memory is a
//!   freelist pop instead of an allocation plus an HCA registration;
//! * the **shadow pool** ([`ShadowPool`]) lives in the managed layer and
//!   keys a *size history* by `<protocol, method>`. Because of the
//!   **message size locality** phenomenon (consecutive calls of the same
//!   kind have near-identical sizes), handing out a buffer of the
//!   historically appropriate class almost always avoids any adjustment;
//!   when the guess is wrong the caller re-acquires at double the class and
//!   the history is corrected, and over-sized records are shrunk back.
//!
//! The pool is generic over its backing memory ([`PoolMem`]) so the same
//! logic can run over registered [`simnet::MemoryRegion`]s (production) or
//! plain heap buffers ([`HeapMem`], for tests and for quantifying the
//! benefit of pre-registration in the ablation benchmarks).
//!
//! ```
//! use bufpool::{HeapMem, NativePool, ShadowPool, SizeClasses};
//!
//! let pool = ShadowPool::new(
//!     NativePool::new(SizeClasses::up_to(64 * 1024), HeapMem::new),
//!     true, // use the <protocol, method> size history
//! );
//!
//! // Cold call: smallest class.
//! let buf = pool.acquire("DatanodeProtocol", "blockReceived");
//! assert_eq!(buf.capacity(), 128);
//! drop(buf);
//!
//! // The call turned out to need ~430 bytes (the paper's example);
//! // record it and the next acquisition is right-sized immediately.
//! pool.record("DatanodeProtocol", "blockReceived", 430);
//! let buf = pool.acquire("DatanodeProtocol", "blockReceived");
//! assert_eq!(buf.capacity(), 512);
//! ```

pub mod classes;
pub mod mem;
pub mod native;
pub mod shadow;

pub use classes::{class_capacity, class_for, SizeClasses};
pub use mem::{HeapMem, PoolMem, RdmaMemFactory};
pub use native::{NativePool, PoolStats, PooledBuf};
pub use shadow::{ShadowPool, ShadowStats, SHRINK_HYSTERESIS};
