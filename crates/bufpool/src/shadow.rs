//! The shadow pool: level one of the paper's buffer management.
//!
//! The shadow pool sits in the managed layer, where the call's metadata is
//! cheap to inspect. It indexes a *latest appropriate size class* per
//! `<protocol, method>` and serves acquisitions at that class. The output
//! stream reports the final serialized size back via [`ShadowPool::record`];
//! the record grows when a call outgrew its buffer and shrinks when the
//! buffer was over-provisioned — so, thanks to message size locality, the
//! *next* call of the same kind almost always gets a right-sized buffer on
//! the first try.
//!
//! Growth applies immediately (an undersized prediction costs a doubling
//! re-acquire *on the call path*, the exact cost Section III-C removes),
//! but shrinking waits for [`SHRINK_HYSTERESIS`] consecutive smaller
//! observations: an over-provisioned buffer only wastes capacity, and
//! shrinking on a single small call would make a workload that alternates
//! between two sizes bounce between classes forever — every call a
//! mispredict in one direction or the other. With hysteresis the record
//! parks at the larger class and stays there.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::classes::class_for;
use crate::mem::PoolMem;
use crate::native::{NativePool, PooledBuf};

/// Counters describing history effectiveness (ablation A1 reads these).
#[derive(Debug, Default)]
pub struct ShadowStats {
    /// Acquisitions whose recorded class matched the final size class.
    pub history_hits: AtomicU64,
    /// Acquisitions where the call outgrew the predicted buffer.
    pub grows: AtomicU64,
    /// Records shrunk because the buffer was over-provisioned.
    pub shrinks: AtomicU64,
    /// Acquisitions with no history (first call of a kind).
    pub cold: AtomicU64,
}

impl ShadowStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.history_hits.load(Ordering::Relaxed),
            self.grows.load(Ordering::Relaxed),
            self.shrinks.load(Ordering::Relaxed),
            self.cold.load(Ordering::Relaxed),
        )
    }
}

/// Consecutive over-provisioned observations before the history shrinks.
pub const SHRINK_HYSTERESIS: u32 = 2;

/// One `<protocol, method>` history slot.
struct HistoryEntry {
    /// The class acquisitions of this kind are served at.
    class: usize,
    /// Consecutive records that landed below `class`. Reset by any record
    /// at (or grown past) `class`; shrink fires when it reaches
    /// [`SHRINK_HYSTERESIS`].
    overshoots: u32,
}

struct ShadowInner<M: PoolMem> {
    native: NativePool<M>,
    /// protocol -> method -> recorded size-class history.
    history: Mutex<HashMap<String, HashMap<String, HistoryEntry>>>,
    use_history: bool,
    stats: ShadowStats,
}

/// History-based front of the two-level pool.
pub struct ShadowPool<M: PoolMem> {
    inner: Arc<ShadowInner<M>>,
}

impl<M: PoolMem> Clone for ShadowPool<M> {
    fn clone(&self) -> Self {
        ShadowPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: PoolMem> ShadowPool<M> {
    /// Wrap a native pool. With `use_history = false` every acquisition
    /// starts at the smallest class (the ablation configuration that
    /// forces doubling re-acquires on every non-tiny call).
    pub fn new(native: NativePool<M>, use_history: bool) -> ShadowPool<M> {
        ShadowPool {
            inner: Arc::new(ShadowInner {
                native,
                history: Mutex::new(HashMap::new()),
                use_history,
                stats: ShadowStats::default(),
            }),
        }
    }

    /// The native pool underneath.
    pub fn native(&self) -> &NativePool<M> {
        &self.inner.native
    }

    /// Acquire a buffer for a call of kind `<protocol, method>` at the
    /// historically recorded class (smallest class when cold).
    pub fn acquire(&self, protocol: &str, method: &str) -> PooledBuf<M> {
        let class = if self.inner.use_history {
            let history = self.inner.history.lock();
            history
                .get(protocol)
                .and_then(|methods| methods.get(method))
                .map(|entry| entry.class)
        } else {
            None
        };
        let class = match class {
            Some(c) => c,
            None => {
                self.inner.stats.cold.fetch_add(1, Ordering::Relaxed);
                0
            }
        };
        self.inner.native.acquire_class(class)
    }

    /// Acquire ignoring history at an explicit size (server receive path,
    /// where the frame length is already known from the header).
    pub fn acquire_size(&self, size: usize) -> PooledBuf<M> {
        self.inner.native.acquire_size(size)
    }

    /// Exchange `buf` for one of double the capacity, preserving the first
    /// `used` bytes — the "re-get by doubling" step of Section III-C.
    pub fn grow(&self, buf: PooledBuf<M>, used: usize) -> PooledBuf<M> {
        self.inner.stats.grows.fetch_add(1, Ordering::Relaxed);
        let ladder = self.inner.native.classes();
        let mut bigger = match buf.class() {
            Some(idx) if idx + 1 < ladder.count => self.inner.native.acquire_class(idx + 1),
            _ => self.inner.native.acquire_size(buf.capacity() * 2),
        };
        debug_assert!(bigger.capacity() >= used);
        buf.mem().with(|src| bigger.mem_mut().put(0, &src[..used]));
        bigger
    }

    /// Report the final serialized size of a call so the history converges:
    /// grow immediately on undershoot, shrink only after
    /// [`SHRINK_HYSTERESIS`] consecutive overshoots (see the module doc).
    pub fn record(&self, protocol: &str, method: &str, used: usize) {
        if !self.inner.use_history {
            return;
        }
        let ladder = self.inner.native.classes();
        let class = class_for(used).min(ladder.count - 1);
        let mut history = self.inner.history.lock();
        // Steady state is a double lookup hit: `entry(to_owned())` would
        // clone the protocol key on every record of every call.
        if !history.contains_key(protocol) {
            history.insert(protocol.to_owned(), HashMap::new());
        }
        let methods = history.get_mut(protocol).expect("just ensured");
        match methods.get_mut(method) {
            Some(entry) => match class.cmp(&entry.class) {
                std::cmp::Ordering::Equal => {
                    self.inner
                        .stats
                        .history_hits
                        .fetch_add(1, Ordering::Relaxed);
                    entry.overshoots = 0;
                }
                std::cmp::Ordering::Greater => {
                    entry.class = class;
                    entry.overshoots = 0;
                }
                std::cmp::Ordering::Less => {
                    entry.overshoots += 1;
                    if entry.overshoots >= SHRINK_HYSTERESIS {
                        entry.class = class;
                        entry.overshoots = 0;
                        self.inner.stats.shrinks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            },
            None => {
                methods.insert(
                    method.to_owned(),
                    HistoryEntry {
                        class,
                        overshoots: 0,
                    },
                );
            }
        }
    }

    /// The class currently recorded for a call kind.
    pub fn recorded_class(&self, protocol: &str, method: &str) -> Option<usize> {
        self.inner
            .history
            .lock()
            .get(protocol)
            .and_then(|m| m.get(method))
            .map(|entry| entry.class)
    }

    /// History effectiveness counters.
    pub fn stats(&self) -> &ShadowStats {
        &self.inner.stats
    }
}

impl<M: PoolMem> std::fmt::Debug for ShadowPool<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowPool")
            .field("use_history", &self.inner.use_history)
            .field("protocols", &self.inner.history.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::SizeClasses;
    use crate::mem::HeapMem;

    fn pool(use_history: bool) -> ShadowPool<HeapMem> {
        ShadowPool::new(
            NativePool::new(SizeClasses::up_to(8192), HeapMem::new),
            use_history,
        )
    }

    #[test]
    fn cold_acquire_is_smallest_class() {
        let p = pool(true);
        let b = p.acquire("DatanodeProtocol", "blockReceived");
        assert_eq!(b.class(), Some(0));
        let (_, _, _, cold) = p.stats().snapshot();
        assert_eq!(cold, 1);
    }

    #[test]
    fn history_converges_after_one_call() {
        let p = pool(true);
        // blockReceived calls are ~430 bytes (paper §III-C) -> class 2 (512B).
        let b = p.acquire("DatanodeProtocol", "blockReceived");
        assert_eq!(b.capacity(), 128);
        drop(b);
        p.record("DatanodeProtocol", "blockReceived", 430);
        let b = p.acquire("DatanodeProtocol", "blockReceived");
        assert_eq!(b.capacity(), 512, "history must predict the 512B class");
        drop(b);
        p.record("DatanodeProtocol", "blockReceived", 425);
        let (hits, _, _, _) = p.stats().snapshot();
        assert_eq!(hits, 1, "same class again counts as a history hit");
    }

    #[test]
    fn history_shrinks_only_after_consecutive_overshoots() {
        let p = pool(true);
        p.record("p", "m", 4000); // class 5 (4096)
        assert_eq!(p.recorded_class("p", "m"), Some(5));
        p.record("p", "m", 100); // class 0: first overshoot — hold
        assert_eq!(p.recorded_class("p", "m"), Some(5));
        let (_, _, shrinks, _) = p.stats().snapshot();
        assert_eq!(shrinks, 0, "one small call must not shrink the record");
        p.record("p", "m", 100); // second consecutive — now shrink
        assert_eq!(p.recorded_class("p", "m"), Some(0));
        let (_, _, shrinks, _) = p.stats().snapshot();
        assert_eq!(shrinks, 1);
    }

    #[test]
    fn intervening_hit_resets_the_shrink_countdown() {
        let p = pool(true);
        p.record("p", "m", 4000); // class 5
        p.record("p", "m", 100); // overshoot 1
        p.record("p", "m", 4000); // hit: countdown resets
        p.record("p", "m", 100); // overshoot 1 again, not 2
        assert_eq!(p.recorded_class("p", "m"), Some(5));
        let (_, _, shrinks, _) = p.stats().snapshot();
        assert_eq!(shrinks, 0);
    }

    #[test]
    fn alternating_sizes_park_at_the_larger_class() {
        let p = pool(true);
        for _ in 0..20 {
            p.record("p", "m", 300); // class 2 (512)
            p.record("p", "m", 3000); // class 5 (4096)
        }
        assert_eq!(
            p.recorded_class("p", "m"),
            Some(5),
            "strict alternation must not oscillate"
        );
        let (_, _, shrinks, _) = p.stats().snapshot();
        assert_eq!(shrinks, 0, "no shrink ever fires under alternation");
    }

    #[test]
    fn grow_preserves_content_and_doubles() {
        let p = pool(true);
        let mut b = p.acquire("p", "m");
        b.mem_mut().put(0, b"keep me around");
        let b2 = p.grow(b, 14);
        assert_eq!(b2.capacity(), 256);
        let mut out = [0u8; 14];
        b2.mem().get(0, &mut out);
        assert_eq!(&out, b"keep me around");
        let (_, grows, _, _) = p.stats().snapshot();
        assert_eq!(grows, 1);
    }

    #[test]
    fn grow_beyond_ladder_goes_oversize() {
        let p = pool(true);
        let b = p.acquire_size(8192);
        assert_eq!(b.class(), Some(6));
        let b2 = p.grow(b, 10);
        assert_eq!(b2.class(), None, "past the ladder: one-off allocation");
        assert!(b2.capacity() >= 16384);
    }

    #[test]
    fn disabled_history_always_serves_smallest() {
        let p = pool(false);
        p.record("p", "m", 5000);
        assert_eq!(p.recorded_class("p", "m"), None);
        let b = p.acquire("p", "m");
        assert_eq!(b.class(), Some(0));
    }

    #[test]
    fn distinct_methods_have_distinct_history() {
        let p = pool(true);
        p.record("TaskUmbilicalProtocol", "ping", 100);
        p.record("TaskUmbilicalProtocol", "statusUpdate", 2000);
        assert_eq!(p.recorded_class("TaskUmbilicalProtocol", "ping"), Some(0));
        assert_eq!(
            p.recorded_class("TaskUmbilicalProtocol", "statusUpdate"),
            Some(4)
        );
        assert_eq!(p.recorded_class("OtherProtocol", "ping"), None);
    }
}
