//! The native pool: level two of the paper's buffer management.
//!
//! Buffers are pre-allocated (and, with an RDMA factory, pre-registered)
//! per size class; acquisition is a freelist pop and release is a push.
//! Requests larger than the ladder fall back to a one-off allocation that
//! is *not* pooled — mirroring how slab-style allocators (TCMalloc, UCR)
//! treat jumbo objects, which the paper cites as prior art for this layout.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::classes::SizeClasses;
use crate::mem::PoolMem;

/// Counters describing pool behaviour (used by the ablation benches).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Acquisitions served from a freelist.
    pub hits: AtomicU64,
    /// Acquisitions that had to call the factory.
    pub misses: AtomicU64,
    /// Buffers returned to a freelist.
    pub returns: AtomicU64,
    /// One-off allocations beyond the class ladder.
    pub oversize: AtomicU64,
    /// Jumbo buffers evicted by the retention policy (not re-shelved).
    pub retired: AtomicU64,
    /// Batched deregistration sweeps performed over retired buffers.
    pub dereg_batches: AtomicU64,
}

impl PoolStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.returns.load(Ordering::Relaxed),
            self.oversize.load(Ordering::Relaxed),
        )
    }

    /// (retired, dereg_batches) of the jumbo retention policy.
    pub fn retention_snapshot(&self) -> (u64, u64) {
        (
            self.retired.load(Ordering::Relaxed),
            self.dereg_batches.load(Ordering::Relaxed),
        )
    }
}

/// Bounded idle retention for jumbo classes: how many idle buffers a
/// class above `boundary` may keep shelved, and how many evictees
/// accumulate before they are dropped (deregistered) in one sweep.
#[derive(Debug, Clone, Copy)]
struct Retention {
    boundary: usize,
    keep: usize,
    batch: usize,
}

struct PoolInner<M: PoolMem> {
    classes: SizeClasses,
    shelves: Vec<Mutex<Vec<M>>>,
    factory: Box<dyn Fn(usize) -> M + Send + Sync>,
    stats: PoolStats,
    /// `None` (default) = unbounded retention in every class.
    retention: Mutex<Option<Retention>>,
    /// Evicted jumbo buffers awaiting the batched deregistration sweep.
    retire: Mutex<Vec<M>>,
}

impl<M: PoolMem> PoolInner<M> {
    /// Return a buffer to its shelf, or retire it when the jumbo
    /// retention cap says the shelf is full enough. Retired buffers are
    /// parked and dropped (for RDMA memory: deregistered) `batch` at a
    /// time, so eviction cost is paid in rare sweeps, never per call.
    fn release(&self, class: usize, mem: M) {
        let policy = *self.retention.lock();
        if let Some(r) = policy {
            if self.classes.capacity(class) > r.boundary {
                let mut shelf = self.shelves[class].lock();
                if shelf.len() >= r.keep {
                    drop(shelf);
                    self.stats.retired.fetch_add(1, Ordering::Relaxed);
                    let full_batch = {
                        let mut retire = self.retire.lock();
                        retire.push(mem);
                        (retire.len() >= r.batch).then(|| std::mem::take(&mut *retire))
                    };
                    if let Some(batch) = full_batch {
                        self.stats.dereg_batches.fetch_add(1, Ordering::Relaxed);
                        drop(batch);
                    }
                    return;
                }
                self.stats.returns.fetch_add(1, Ordering::Relaxed);
                shelf.push(mem);
                return;
            }
        }
        self.stats.returns.fetch_add(1, Ordering::Relaxed);
        self.shelves[class].lock().push(mem);
    }
}

/// A size-classed pool of reusable buffers.
pub struct NativePool<M: PoolMem> {
    inner: Arc<PoolInner<M>>,
}

impl<M: PoolMem> Clone for NativePool<M> {
    fn clone(&self) -> Self {
        NativePool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: PoolMem> NativePool<M> {
    /// Create a pool over the given class ladder. `factory` produces a
    /// buffer of (at least) the requested capacity; for RDMA pools it
    /// performs the HCA registration.
    pub fn new(
        classes: SizeClasses,
        factory: impl Fn(usize) -> M + Send + Sync + 'static,
    ) -> NativePool<M> {
        let shelves = (0..classes.count).map(|_| Mutex::new(Vec::new())).collect();
        NativePool {
            inner: Arc::new(PoolInner {
                classes,
                shelves,
                factory: Box::new(factory),
                stats: PoolStats::default(),
                retention: Mutex::new(None),
                retire: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Bound idle retention for jumbo classes (capacity > `boundary`):
    /// keep at most `keep` idle buffers shelved per such class, and drop
    /// evicted buffers in sweeps of `batch` — for an RDMA-backed pool
    /// that drop *is* the deregistration, so steady-state large traffic
    /// re-uses cached registrations while an idle burst's surplus is
    /// released in a few batched sweeps instead of one dereg per buffer.
    /// Classes at or below `boundary` stay unbounded (they are small and
    /// prefilled). The default (no call) retains everything, the
    /// historical behaviour.
    pub fn set_jumbo_retention(&self, boundary: usize, keep: usize, batch: usize) {
        *self.inner.retention.lock() = Some(Retention {
            boundary,
            keep,
            batch: batch.max(1),
        });
    }

    /// Retired jumbo buffers still awaiting their deregistration sweep.
    pub fn pending_retire(&self) -> usize {
        self.inner.retire.lock().len()
    }

    /// The class ladder this pool serves.
    pub fn classes(&self) -> SizeClasses {
        self.inner.classes
    }

    /// Pre-allocate `per_class` buffers in every class — this is where an
    /// RDMA-backed pool pays all its registration cost, up front.
    pub fn prefill(&self, per_class: usize) {
        for idx in 0..self.inner.classes.count {
            self.prefill_class(idx, per_class);
        }
    }

    /// Pre-allocate `n` buffers in one class.
    pub fn prefill_class(&self, idx: usize, n: usize) {
        let cap = self.inner.classes.capacity(idx);
        let mut shelf = self.inner.shelves[idx].lock();
        for _ in 0..n {
            shelf.push((self.inner.factory)(cap));
        }
    }

    /// Buffers currently idle in class `idx`.
    pub fn idle_in_class(&self, idx: usize) -> usize {
        self.inner.shelves[idx].lock().len()
    }

    /// Acquire a buffer of class `idx` (freelist pop, or factory call on a
    /// cold shelf).
    pub fn acquire_class(&self, idx: usize) -> PooledBuf<M> {
        let cap = self.inner.classes.capacity(idx);
        let reused = self.inner.shelves[idx].lock().pop();
        let mem = match reused {
            Some(mem) => {
                self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
                mem
            }
            None => {
                self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
                (self.inner.factory)(cap)
            }
        };
        PooledBuf {
            mem: Some(mem),
            class: Some(idx),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Acquire a buffer of at least `size` bytes: via the ladder when it
    /// fits, otherwise a non-pooled one-off allocation.
    pub fn acquire_size(&self, size: usize) -> PooledBuf<M> {
        match self.inner.classes.class_of(size) {
            Some(idx) => self.acquire_class(idx),
            None => {
                self.inner.stats.oversize.fetch_add(1, Ordering::Relaxed);
                PooledBuf {
                    mem: Some((self.inner.factory)(size)),
                    class: None,
                    pool: Arc::clone(&self.inner),
                }
            }
        }
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &PoolStats {
        &self.inner.stats
    }
}

impl<M: PoolMem> std::fmt::Debug for NativePool<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativePool")
            .field("classes", &self.inner.classes.count)
            .finish()
    }
}

/// A buffer checked out of a [`NativePool`]; returns itself on drop.
pub struct PooledBuf<M: PoolMem> {
    mem: Option<M>,
    class: Option<usize>,
    pool: Arc<PoolInner<M>>,
}

impl<M: PoolMem> PooledBuf<M> {
    /// The backing memory.
    pub fn mem(&self) -> &M {
        self.mem
            .as_ref()
            .expect("pooled buffer accessed after drop")
    }

    /// Mutable access to the backing memory.
    pub fn mem_mut(&mut self) -> &mut M {
        self.mem
            .as_mut()
            .expect("pooled buffer accessed after drop")
    }

    /// Capacity of the checked-out buffer.
    pub fn capacity(&self) -> usize {
        self.mem().capacity()
    }

    /// Which class this buffer came from (`None` for oversize one-offs).
    pub fn class(&self) -> Option<usize> {
        self.class
    }
}

impl<M: PoolMem> Drop for PooledBuf<M> {
    fn drop(&mut self) {
        if let (Some(mem), Some(class)) = (self.mem.take(), self.class) {
            self.pool.release(class, mem);
        }
        // Oversize buffers simply deallocate.
    }
}

impl<M: PoolMem> std::fmt::Debug for PooledBuf<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("class", &self.class)
            .field("capacity", &self.mem.as_ref().map(|m| m.capacity()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::class_capacity;
    use crate::mem::HeapMem;

    fn heap_pool() -> NativePool<HeapMem> {
        NativePool::new(SizeClasses::up_to(4096), HeapMem::new)
    }

    #[test]
    fn acquire_gets_class_capacity() {
        let pool = heap_pool();
        let buf = pool.acquire_size(200);
        assert_eq!(buf.class(), Some(1));
        assert_eq!(buf.capacity(), 256);
    }

    #[test]
    fn release_and_reuse() {
        let pool = heap_pool();
        {
            let _buf = pool.acquire_class(2);
        } // returned on drop
        assert_eq!(pool.idle_in_class(2), 1);
        let _again = pool.acquire_class(2);
        assert_eq!(pool.idle_in_class(2), 0);
        let (hits, misses, returns, _) = pool.stats().snapshot();
        assert_eq!((hits, misses, returns), (1, 1, 1));
    }

    #[test]
    fn prefill_makes_first_acquire_a_hit() {
        let pool = heap_pool();
        pool.prefill(2);
        for idx in 0..pool.classes().count {
            assert_eq!(pool.idle_in_class(idx), 2);
        }
        let _b = pool.acquire_class(0);
        let (hits, misses, _, _) = pool.stats().snapshot();
        assert_eq!((hits, misses), (1, 0));
    }

    #[test]
    fn oversize_requests_are_one_off() {
        let pool = heap_pool();
        let huge = pool.acquire_size(100_000);
        assert_eq!(huge.class(), None);
        assert!(huge.capacity() >= 100_000);
        drop(huge);
        // Not returned to any shelf.
        for idx in 0..pool.classes().count {
            assert_eq!(pool.idle_in_class(idx), 0);
        }
        let (_, _, _, oversize) = pool.stats().snapshot();
        assert_eq!(oversize, 1);
    }

    #[test]
    fn buffers_keep_contents_across_pool_trips() {
        let pool = heap_pool();
        {
            let mut b = pool.acquire_class(0);
            b.mem_mut().put(0, b"sticky");
        }
        let b = pool.acquire_class(0);
        let mut out = [0u8; 6];
        b.mem().get(0, &mut out);
        // Pool reuse does not zero memory (like real registered buffers).
        assert_eq!(&out, b"sticky");
    }

    #[test]
    fn concurrent_acquire_release() {
        let pool = heap_pool();
        pool.prefill(4);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let mut b = pool.acquire_size(1 + (i * 37) % 4000);
                        b.mem_mut().put(0, &[i as u8]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (hits, misses, returns, _) = pool.stats().snapshot();
        assert_eq!(hits + misses, 8 * 200);
        assert_eq!(returns, 8 * 200);
    }

    #[test]
    fn class_capacities_are_powers_of_two_from_128() {
        for idx in 0..6 {
            assert_eq!(class_capacity(idx), 128 << idx);
        }
    }
}
