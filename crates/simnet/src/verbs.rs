//! RDMA verbs emulation.
//!
//! This module provides the verbs-shaped API the RPCoIB transport is written
//! against: open a device on a node, register memory regions, create queue
//! pairs, exchange endpoints out of band, then communicate with two-sided
//! send/recv or one-sided RDMA write (with optional immediate data, which —
//! as on real hardware — consumes a posted receive WQE at the responder).
//!
//! Cost model: posting pays the verbs overhead (WQE + doorbell, no kernel
//! stack), wire time is charged against the sender's egress link clock, and
//! delivery is gated on the receiver's ingress clock one `base_latency`
//! later. The byte movement itself is performed by CPU `memcpy` in the
//! simulator where real hardware would DMA; that cost is sub-microsecond at
//! the sizes involved and is *not* charged as protocol overhead.
//!
//! Memory regions are identified fabric-wide by an rkey-like id; the fabric
//! holds weak references, so dropping all handles to a region implicitly
//! deregisters it and subsequent remote accesses fail with
//! [`VerbsError::BadRemoteKey`].

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::fabric::{Fabric, NodeId, WakeSlot};
use crate::time::{spin_ns, spin_until};
use crate::VerbsError;

/// A queue pair's fabric-side entry: its completion inbox plus the wake
/// slot its owner may arm with [`QueuePair::set_recv_interest`]. Senders
/// fire the slot right after posting a completion, so an event-driven
/// receiver learns of pending work without polling [`QueuePair::recv_pending`].
#[derive(Clone)]
pub(crate) struct QpSlot {
    pub(crate) tx: Sender<QpMessage>,
    pub(crate) wake: WakeSlot,
}

/// How often blocked polls re-check for node failure.
const FAILURE_POLL: Duration = Duration::from_millis(10);

/// A verbs context on one simulated node (device + protection domain).
#[derive(Clone)]
pub struct RdmaDevice {
    fabric: Fabric,
    node: NodeId,
}

impl RdmaDevice {
    /// Open the HCA on `node`. Fails if the fabric's model is not
    /// RDMA-capable (e.g. trying to run verbs over plain Ethernet).
    pub fn open(fabric: &Fabric, node: NodeId) -> Result<RdmaDevice, VerbsError> {
        if !fabric.model().rdma_capable {
            return Err(VerbsError::NotConnected);
        }
        Ok(RdmaDevice {
            fabric: fabric.clone(),
            node,
        })
    }

    /// The node this device lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The fabric this device is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Register `len` bytes of fresh, zeroed memory with the HCA.
    ///
    /// Pays the model's registration cost — this is the cost RPCoIB's
    /// pre-registered pool amortizes away from the per-call path.
    pub fn register(&self, len: usize) -> MemoryRegion {
        let reg_ns = self.fabric.model().registration_ns(len);
        self.fabric.charge_modeled(self.node, reg_ns);
        spin_ns(reg_ns);
        self.fabric
            .stats()
            .registrations
            .fetch_add(1, Ordering::Relaxed);
        let id = self.fabric.fresh_id();
        let inner = Arc::new(MrInner {
            id,
            node: self.node,
            buf: Mutex::new(vec![0u8; len].into_boxed_slice()),
        });
        self.fabric
            .inner
            .mrs
            .lock()
            .insert(id, Arc::downgrade(&inner));
        MemoryRegion {
            fabric: self.fabric.clone(),
            inner,
        }
    }

    /// Create a queue pair (with its completion channel) on this device.
    pub fn create_qp(&self) -> QueuePair {
        let id = self.fabric.fresh_id();
        let (tx, rx) = unbounded();
        let wake = WakeSlot::new();
        self.fabric.inner.qps.lock().insert(
            id,
            QpSlot {
                tx,
                wake: wake.clone(),
            },
        );
        QueuePair {
            fabric: self.fabric.clone(),
            node: self.node,
            id,
            inbox: rx,
            recv_wake: wake,
            remote: Mutex::new(None),
            recv_queue: Mutex::new(VecDeque::new()),
        }
    }
}

pub(crate) struct MrInner {
    pub(crate) id: u64,
    pub(crate) node: NodeId,
    pub(crate) buf: Mutex<Box<[u8]>>,
}

/// A registered memory region. Clones share the same memory; the region is
/// deregistered when the last handle drops.
#[derive(Clone)]
pub struct MemoryRegion {
    fabric: Fabric,
    inner: Arc<MrInner>,
}

impl MemoryRegion {
    /// Registered length in bytes.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().len()
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local CPU write into the region.
    pub fn write_at(&self, offset: usize, data: &[u8]) -> Result<(), VerbsError> {
        let mut buf = self.inner.buf.lock();
        bounds_check(offset, data.len(), buf.len())?;
        buf[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Local CPU read out of the region.
    pub fn read_at(&self, offset: usize, out: &mut [u8]) -> Result<(), VerbsError> {
        let buf = self.inner.buf.lock();
        bounds_check(offset, out.len(), buf.len())?;
        out.copy_from_slice(&buf[offset..offset + out.len()]);
        Ok(())
    }

    /// Zero-copy access to the underlying bytes.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.inner.buf.lock())
    }

    /// Zero-copy mutable access to the underlying bytes — this is what lets
    /// RPCoIB serialize *directly* into registered memory.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.inner.buf.lock())
    }

    /// The key a remote peer needs to RDMA-write into this region.
    pub fn remote_key(&self) -> RemoteKey {
        RemoteKey {
            node: self.inner.node,
            mr_id: self.inner.id,
        }
    }
}

impl Drop for MemoryRegion {
    fn drop(&mut self) {
        // Last handle (this one plus the fabric's weak ref): deregister.
        if Arc::strong_count(&self.inner) == 1 {
            self.fabric.inner.mrs.lock().remove(&self.inner.id);
        }
    }
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MemoryRegion(id={}, node={}, len={})",
            self.inner.id,
            self.inner.node,
            self.len()
        )
    }
}

fn bounds_check(offset: usize, len: usize, region: usize) -> Result<(), VerbsError> {
    if offset.checked_add(len).is_none_or(|end| end > region) {
        Err(VerbsError::OutOfBounds {
            offset,
            len,
            region,
        })
    } else {
        Ok(())
    }
}

/// Fabric-wide handle to a remote memory region (node + rkey). Fits in 12
/// bytes for out-of-band exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteKey {
    pub node: NodeId,
    pub mr_id: u64,
}

impl RemoteKey {
    pub fn to_bytes(self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[..4].copy_from_slice(&self.node.0.to_be_bytes());
        b[4..].copy_from_slice(&self.mr_id.to_be_bytes());
        b
    }

    pub fn from_bytes(b: [u8; 12]) -> RemoteKey {
        RemoteKey {
            node: NodeId(u32::from_be_bytes(b[..4].try_into().unwrap())),
            mr_id: u64::from_be_bytes(b[4..].try_into().unwrap()),
        }
    }
}

/// Connection info for a queue pair, exchanged out of band (the paper
/// bootstraps this exchange over the RPC server's socket address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpEndpoint {
    pub node: NodeId,
    pub qp_id: u64,
}

impl QpEndpoint {
    pub fn to_bytes(self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[..4].copy_from_slice(&self.node.0.to_be_bytes());
        b[4..].copy_from_slice(&self.qp_id.to_be_bytes());
        b
    }

    pub fn from_bytes(b: [u8; 12]) -> QpEndpoint {
        QpEndpoint {
            node: NodeId(u32::from_be_bytes(b[..4].try_into().unwrap())),
            qp_id: u64::from_be_bytes(b[4..].try_into().unwrap()),
        }
    }
}

pub(crate) enum QpMessage {
    Send {
        arrive_start: Instant,
        wire: Duration,
        data: Bytes,
        imm: u32,
    },
    WriteImm {
        arrive_start: Instant,
        wire: Duration,
        len: usize,
        imm: u32,
    },
}

/// What a polled receive completion describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// A two-sided send landed in the posted buffer.
    Recv,
    /// A one-sided RDMA write with immediate completed at the responder;
    /// the payload is already in the region the writer targeted, only the
    /// immediate value is delivered here.
    RecvRdmaWithImm,
}

/// A receive-side work completion.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    pub kind: CompletionKind,
    /// The `wr_id` given to the consumed `post_recv`.
    pub wr_id: u64,
    /// Bytes received (for `Recv`) or written remotely (for `RecvRdmaWithImm`).
    pub len: usize,
    /// Immediate value carried by the message.
    pub imm: u32,
}

/// A reliable-connected queue pair.
pub struct QueuePair {
    fabric: Fabric,
    node: NodeId,
    id: u64,
    inbox: Receiver<QpMessage>,
    /// This QP's own wake slot (the same one registered in the fabric's
    /// `qps` map); armed by [`QueuePair::set_recv_interest`].
    recv_wake: WakeSlot,
    remote: Mutex<Option<QpEndpoint>>,
    recv_queue: Mutex<VecDeque<(u64, MemoryRegion)>>,
}

impl QueuePair {
    /// This QP's endpoint, to be shipped to the peer out of band.
    pub fn endpoint(&self) -> QpEndpoint {
        QpEndpoint {
            node: self.node,
            qp_id: self.id,
        }
    }

    /// Transition to connected: all sends now target `remote`.
    pub fn connect(&self, remote: QpEndpoint) {
        *self.remote.lock() = Some(remote);
    }

    /// Whether `connect` has been called.
    pub fn is_connected(&self) -> bool {
        self.remote.lock().is_some()
    }

    /// Post a receive buffer. Consumed in FIFO order by incoming sends and
    /// RDMA-writes-with-immediate.
    pub fn post_recv(&self, wr_id: u64, mr: MemoryRegion) {
        self.recv_queue.lock().push_back((wr_id, mr));
    }

    /// Number of currently posted receive buffers.
    pub fn posted_recvs(&self) -> usize {
        self.recv_queue.lock().len()
    }

    /// Arm this queue pair's readiness hook: it fires (charge-free, on the
    /// sender's thread) each time a peer posts a completion into this QP's
    /// inbox — the event-driven alternative to polling
    /// [`QueuePair::recv_pending`].
    pub fn set_recv_interest(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.recv_wake.set(hook);
    }

    fn peer_inbox(&self, remote: QpEndpoint) -> Result<QpSlot, VerbsError> {
        if self.fabric.is_dead(remote.node) || self.fabric.is_partitioned(self.node, remote.node) {
            return Err(VerbsError::PeerDown);
        }
        self.fabric
            .inner
            .qps
            .lock()
            .get(&remote.qp_id)
            .cloned()
            .ok_or(VerbsError::PeerDown)
    }

    fn charge_send(&self, remote: NodeId, len: usize) -> (Instant, Duration) {
        let stack = self.fabric.model().stack_ns(len);
        self.charge_flow(remote, stack, len)
    }

    /// Charge one egress flow: `stack_ns` of host/verbs overhead, wire
    /// serialization of `wire_bytes`, one propagation latency, and one
    /// fault draw. `charge_send` is the single-message case; a vectored
    /// write chain passes the summed per-segment stack cost with the
    /// chain's total byte count.
    fn charge_flow(&self, remote: NodeId, stack_ns: u64, wire_bytes: usize) -> (Instant, Duration) {
        let model = *self.fabric.model();
        spin_ns(stack_ns);
        let wire = Duration::from_nanos(model.wire_ns(wire_bytes));
        let egress_end = match self.fabric.links(self.node) {
            Some(links) => links.egress.reserve_from(Instant::now(), wire),
            None => Instant::now() + wire,
        };
        spin_until(egress_end);
        let fault = self.fabric.fault_delay(self.node, remote);
        // Ledger: sender-side one-way costs (verbs overhead, wire
        // serialization, propagation, injected fault delay).
        self.fabric.charge_modeled(
            self.node,
            stack_ns + wire.as_nanos() as u64 + model.base_latency_ns + fault.as_nanos() as u64,
        );
        let arrive_start = egress_end - wire + Duration::from_nanos(model.base_latency_ns) + fault;
        (arrive_start, wire)
    }

    /// Two-sided send of `mr[offset..offset+len]` with an immediate value.
    /// Completes (locally) when the bytes have left the NIC.
    pub fn post_send(
        &self,
        mr: &MemoryRegion,
        offset: usize,
        len: usize,
        imm: u32,
    ) -> Result<(), VerbsError> {
        let remote = self.remote.lock().ok_or(VerbsError::NotConnected)?;
        if self.fabric.is_dead(self.node) {
            return Err(VerbsError::PeerDown);
        }
        let inbox = self.peer_inbox(remote)?;
        // "DMA" out of registered memory — the HCA's work, so the staging
        // allocation is excluded from application alloc accounting.
        let data = {
            let buf = mr.inner.buf.lock();
            bounds_check(offset, len, buf.len())?;
            crate::hw::hw_scope(|| Bytes::copy_from_slice(&buf[offset..offset + len]))
        };
        let (arrive_start, wire) = self.charge_send(remote.node, len);
        // Injected loss: the post "completed" at the sender but the message
        // never arrives — the receiver only notices via its poll timeout.
        if self.fabric.fault_drops(self.node, remote.node) {
            return Ok(());
        }
        inbox
            .tx
            .send(QpMessage::Send {
                arrive_start,
                wire,
                data,
                imm,
            })
            .map_err(|_| VerbsError::PeerDown)?;
        // Completion posted: wake the receiver if it armed a hook. An
        // injected drop returned above without sending, so — like the
        // polling model — a lost message produces no readiness signal.
        inbox.wake.fire();
        let stats = self.fabric.stats();
        stats.messages.fetch_add(1, Ordering::Relaxed);
        stats.bytes.fetch_add(len as u64, Ordering::Relaxed);
        Ok(())
    }

    /// One-sided RDMA write: place `mr[offset..offset+len]` into the remote
    /// region at `remote_offset`. With `imm`, the responder observes a
    /// completion (consuming one posted receive WQE, as on real hardware);
    /// without it the write is silent.
    pub fn rdma_write(
        &self,
        mr: &MemoryRegion,
        offset: usize,
        len: usize,
        rkey: RemoteKey,
        remote_offset: usize,
        imm: Option<u32>,
    ) -> Result<(), VerbsError> {
        let remote = self.remote.lock().ok_or(VerbsError::NotConnected)?;
        if self.fabric.is_dead(self.node)
            || self.fabric.is_dead(rkey.node)
            || self.fabric.is_partitioned(self.node, rkey.node)
        {
            return Err(VerbsError::PeerDown);
        }
        let target = self
            .fabric
            .inner
            .mrs
            .lock()
            .get(&rkey.mr_id)
            .and_then(Weak::upgrade)
            .ok_or(VerbsError::BadRemoteKey)?;

        let (arrive_start, wire) = {
            // Stage the payload, charge the wire.
            let src = mr.inner.buf.lock();
            bounds_check(offset, len, src.len())?;
            let (arrive_start, wire) = {
                // Charge before copying into the remote region so the
                // remote never observes bytes "before" they arrived.
                drop(src);
                self.charge_send(rkey.node, len)
            };
            // Injected loss: the write is charged at the sender but never
            // lands remotely, and no completion is delivered.
            if self.fabric.fault_drops(self.node, rkey.node) {
                return Ok(());
            }
            let src = mr.inner.buf.lock();
            let mut dst = target.buf.lock();
            bounds_check(remote_offset, len, dst.len())?;
            dst[remote_offset..remote_offset + len].copy_from_slice(&src[offset..offset + len]);
            (arrive_start, wire)
        };

        let stats = self.fabric.stats();
        stats.rdma_writes.fetch_add(1, Ordering::Relaxed);
        stats.bytes.fetch_add(len as u64, Ordering::Relaxed);

        if let Some(imm) = imm {
            let inbox = self.peer_inbox(remote)?;
            inbox
                .tx
                .send(QpMessage::WriteImm {
                    arrive_start,
                    wire,
                    len,
                    imm,
                })
                .map_err(|_| VerbsError::PeerDown)?;
            inbox.wake.fire();
        } else {
            // A silent write has no completion for `poll_recv` to account,
            // but the bytes still serialize through the target's ingress
            // link: reserve the window and charge the target's ledger here,
            // mirroring what `poll_recv` does for announced messages. No
            // receiver thread is involved — that is the point of one-sided.
            if let Some(links) = self.fabric.links(rkey.node) {
                let _ = links.ingress.reserve_from(arrive_start, wire);
            }
            self.fabric
                .charge_modeled(rkey.node, wire.as_nanos() as u64);
        }
        Ok(())
    }

    /// A chain of one-sided writes posted back-to-back and rung with one
    /// doorbell — the gather path's scatter list. Segments are
    /// `(mr, offset, len, remote_offset)`. The chain is charged as ONE
    /// flow: per-segment verbs/stack overhead (each work request is
    /// posted and its source touched), wire serialization of the total
    /// byte count, and a single propagation latency and fault draw —
    /// back-to-back writes on one queue pair pipeline on the wire; they
    /// do not propagate k times. With `imm`, one completion announces
    /// the whole chain after its last byte; without it the chain is
    /// silent and the target's ingress is charged here. An injected
    /// drop loses the entire chain: charged at the sender, nothing
    /// lands, no completion.
    /// `segs` is consumed twice (validation, then placement), so it is a
    /// cloneable iterator rather than a slice — callers with preexisting
    /// segment lists pass `list.iter().copied()`, and hot paths can
    /// describe the chain computationally without materializing it.
    pub fn rdma_write_vectored<'a, I>(
        &self,
        segs: I,
        rkey: RemoteKey,
        imm: Option<u32>,
    ) -> Result<(), VerbsError>
    where
        I: IntoIterator<Item = (&'a MemoryRegion, usize, usize, usize)> + Clone,
    {
        let remote = self.remote.lock().ok_or(VerbsError::NotConnected)?;
        if self.fabric.is_dead(self.node)
            || self.fabric.is_dead(rkey.node)
            || self.fabric.is_partitioned(self.node, rkey.node)
        {
            return Err(VerbsError::PeerDown);
        }
        let target = self
            .fabric
            .inner
            .mrs
            .lock()
            .get(&rkey.mr_id)
            .and_then(Weak::upgrade)
            .ok_or(VerbsError::BadRemoteKey)?;

        // Validate every segment against both ends before any cost is
        // charged or any byte lands: a bad chain is rejected whole.
        let mut total = 0usize;
        let mut stack = 0u64;
        let mut nsegs = 0u64;
        {
            let model = self.fabric.model();
            let dst_len = target.buf.lock().len();
            for (mr, offset, len, remote_offset) in segs.clone() {
                bounds_check(offset, len, mr.inner.buf.lock().len())?;
                bounds_check(remote_offset, len, dst_len)?;
                total += len;
                stack += model.stack_ns(len);
                nsegs += 1;
            }
        }

        let (arrive_start, wire) = self.charge_flow(rkey.node, stack, total);
        if self.fabric.fault_drops(self.node, rkey.node) {
            return Ok(());
        }
        {
            let mut dst = target.buf.lock();
            for (mr, offset, len, remote_offset) in segs {
                let src = mr.inner.buf.lock();
                dst[remote_offset..remote_offset + len].copy_from_slice(&src[offset..offset + len]);
            }
        }

        let stats = self.fabric.stats();
        stats.rdma_writes.fetch_add(nsegs, Ordering::Relaxed);
        stats.bytes.fetch_add(total as u64, Ordering::Relaxed);

        match imm {
            Some(imm) => {
                let inbox = self.peer_inbox(remote)?;
                inbox
                    .tx
                    .send(QpMessage::WriteImm {
                        arrive_start,
                        wire,
                        len: total,
                        imm,
                    })
                    .map_err(|_| VerbsError::PeerDown)?;
                inbox.wake.fire();
            }
            None => {
                // Mirror the silent single-write path: the bytes still
                // serialize through the target's ingress link.
                if let Some(links) = self.fabric.links(rkey.node) {
                    let _ = links.ingress.reserve_from(arrive_start, wire);
                }
                self.fabric
                    .charge_modeled(rkey.node, wire.as_nanos() as u64);
            }
        }
        Ok(())
    }

    /// Whether a completion is waiting in this queue pair's completion
    /// channel right now — a `poll_recv` would return without blocking.
    /// Nothing is consumed or charged; this is the readiness primitive
    /// event-loop receivers poll across many queue pairs. Also reports
    /// ready when either endpoint's node is dead — a connected peer that
    /// died can never send again, so a poller must observe the
    /// `PeerDown` instead of skipping the queue pair forever. (Real
    /// verbs surfaces this as an async QP error event; the wake-slot
    /// model has no out-of-band event channel, so death is exposed as
    /// readiness and discovered by the receiver's liveness probe.)
    pub fn recv_pending(&self) -> bool {
        !self.inbox.is_empty() || self.fabric.is_dead(self.node) || self.remote_dead()
    }

    /// A connected remote endpoint whose node has been marked failed.
    /// Not-yet-connected queue pairs have no peer to be dead.
    fn remote_dead(&self) -> bool {
        match *self.remote.lock() {
            Some(ep) => self.fabric.is_dead(ep.node),
            None => false,
        }
    }

    /// Block until a receive completion is available (or `timeout` passes).
    ///
    /// For `Send` messages the payload is placed into the oldest posted
    /// receive buffer; for RDMA-write-with-immediate only the immediate is
    /// delivered (the data is already in the targeted region).
    pub fn poll_recv(&self, timeout: Duration) -> Result<Completion, VerbsError> {
        let deadline = Instant::now() + timeout;
        let msg = loop {
            if self.fabric.is_dead(self.node) {
                return Err(VerbsError::PeerDown);
            }
            // Completions already delivered before the peer died are
            // still consumable; only an empty channel surfaces the death.
            if self.inbox.is_empty() && self.remote_dead() {
                return Err(VerbsError::PeerDown);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(VerbsError::Timeout);
            }
            match self.inbox.recv_timeout(FAILURE_POLL.min(deadline - now)) {
                Ok(msg) => break msg,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(VerbsError::PeerDown),
            }
        };
        let (arrive_start, wire) = match &msg {
            QpMessage::Send {
                arrive_start, wire, ..
            } => (*arrive_start, *wire),
            QpMessage::WriteImm {
                arrive_start, wire, ..
            } => (*arrive_start, *wire),
        };
        let ingress_end = match self.fabric.links(self.node) {
            Some(links) => links.ingress.reserve_from(arrive_start, wire),
            None => arrive_start + wire,
        };
        // Ledger: receiver-side ingress serialization of the message.
        self.fabric
            .charge_modeled(self.node, wire.as_nanos() as u64);
        spin_until(ingress_end);

        match msg {
            QpMessage::Send { data, imm, .. } => {
                let (wr_id, mr) = self
                    .recv_queue
                    .lock()
                    .pop_front()
                    .ok_or(VerbsError::ReceiverNotReady)?;
                let mut buf = mr.inner.buf.lock();
                if buf.len() < data.len() {
                    return Err(VerbsError::RecvBufferTooSmall {
                        needed: data.len(),
                        posted: buf.len(),
                    });
                }
                buf[..data.len()].copy_from_slice(&data);
                drop(buf);
                Ok(Completion {
                    kind: CompletionKind::Recv,
                    wr_id,
                    len: data.len(),
                    imm,
                })
            }
            QpMessage::WriteImm { len, imm, .. } => {
                let (wr_id, _mr) = self
                    .recv_queue
                    .lock()
                    .pop_front()
                    .ok_or(VerbsError::ReceiverNotReady)?;
                Ok(Completion {
                    kind: CompletionKind::RecvRdmaWithImm,
                    wr_id,
                    len,
                    imm,
                })
            }
        }
    }
}

impl Drop for QueuePair {
    fn drop(&mut self) {
        self.fabric.inner.qps.lock().remove(&self.id);
    }
}

impl std::fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueuePair(id={}, node={})", self.id, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IB_QDR_VERBS, IPOIB_QDR};

    fn connected_pair(fabric: &Fabric) -> (QueuePair, QueuePair, RdmaDevice, RdmaDevice) {
        let a = fabric.add_node();
        let b = fabric.add_node();
        let dev_a = RdmaDevice::open(fabric, a).unwrap();
        let dev_b = RdmaDevice::open(fabric, b).unwrap();
        let qa = dev_a.create_qp();
        let qb = dev_b.create_qp();
        qa.connect(qb.endpoint());
        qb.connect(qa.endpoint());
        (qa, qb, dev_a, dev_b)
    }

    #[test]
    fn verbs_requires_rdma_capable_model() {
        let fabric = Fabric::new(IPOIB_QDR);
        let n = fabric.add_node();
        assert!(RdmaDevice::open(&fabric, n).is_err());
    }

    #[test]
    fn send_recv_roundtrip() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(1024);
        let dst = dev_b.register(1024);
        src.write_at(0, b"rdma says hi").unwrap();
        qb.post_recv(7, dst.clone());
        qa.post_send(&src, 0, 12, 0xfeed).unwrap();
        let c = qb.poll_recv(Duration::from_secs(1)).unwrap();
        assert_eq!(c.kind, CompletionKind::Recv);
        assert_eq!(c.wr_id, 7);
        assert_eq!(c.len, 12);
        assert_eq!(c.imm, 0xfeed);
        let mut out = [0u8; 12];
        dst.read_at(0, &mut out).unwrap();
        assert_eq!(&out, b"rdma says hi");
    }

    #[test]
    fn send_without_posted_recv_is_rnr() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, _dev_b) = connected_pair(&fabric);
        let src = dev_a.register(64);
        qa.post_send(&src, 0, 8, 0).unwrap();
        assert_eq!(
            qb.poll_recv(Duration::from_secs(1)).unwrap_err(),
            VerbsError::ReceiverNotReady
        );
    }

    #[test]
    fn send_to_unconnected_qp_fails() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let n = fabric.add_node();
        let dev = RdmaDevice::open(&fabric, n).unwrap();
        let qp = dev.create_qp();
        let mr = dev.register(16);
        assert_eq!(
            qp.post_send(&mr, 0, 4, 0).unwrap_err(),
            VerbsError::NotConnected
        );
    }

    #[test]
    fn rdma_write_places_bytes_remotely() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(4096);
        let dst = dev_b.register(4096);
        let payload: Vec<u8> = (0..=255).cycle().take(4000).map(|b: u8| b).collect();
        src.write_at(0, &payload).unwrap();
        // Imm consumes a posted recv.
        qb.post_recv(42, dst.clone());
        qa.rdma_write(&src, 0, 4000, dst.remote_key(), 96, Some(0xabcd))
            .unwrap();
        let c = qb.poll_recv(Duration::from_secs(1)).unwrap();
        assert_eq!(c.kind, CompletionKind::RecvRdmaWithImm);
        assert_eq!(c.wr_id, 42);
        assert_eq!(c.len, 4000);
        assert_eq!(c.imm, 0xabcd);
        let mut out = vec![0u8; 4000];
        dst.read_at(96, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn silent_rdma_write_delivers_no_completion() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(64);
        let dst = dev_b.register(64);
        src.write_at(0, b"quiet").unwrap();
        qa.rdma_write(&src, 0, 5, dst.remote_key(), 0, None)
            .unwrap();
        assert_eq!(
            qb.poll_recv(Duration::from_millis(40)).unwrap_err(),
            VerbsError::Timeout
        );
        let mut out = [0u8; 5];
        dst.read_at(0, &mut out).unwrap();
        assert_eq!(&out, b"quiet");
    }

    #[test]
    fn silent_rdma_write_charges_target_ingress() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, _qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(8192);
        let dst = dev_b.register(8192);
        let before = fabric.modeled_ns(dev_b.node());
        qa.rdma_write(&src, 0, 8000, dst.remote_key(), 0, None)
            .unwrap();
        let charged = fabric.modeled_ns(dev_b.node()) - before;
        assert_eq!(
            charged,
            IB_QDR_VERBS.wire_ns(8000),
            "silent write must charge the target's wire serialization"
        );
    }

    #[test]
    fn rdma_write_to_dropped_region_is_bad_rkey() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, _qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(64);
        let dst = dev_b.register(64);
        let rkey = dst.remote_key();
        drop(dst);
        assert_eq!(
            qa.rdma_write(&src, 0, 8, rkey, 0, None).unwrap_err(),
            VerbsError::BadRemoteKey
        );
    }

    #[test]
    fn bounds_are_enforced() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let n = fabric.add_node();
        let dev = RdmaDevice::open(&fabric, n).unwrap();
        let mr = dev.register(32);
        assert!(matches!(
            mr.write_at(30, &[0; 4]),
            Err(VerbsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mr.read_at(33, &mut [0; 1]),
            Err(VerbsError::OutOfBounds { .. })
        ));
        assert!(mr.write_at(28, &[0; 4]).is_ok());
    }

    #[test]
    fn recv_buffer_too_small_is_reported() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(256);
        let tiny = dev_b.register(16);
        qb.post_recv(1, tiny);
        qa.post_send(&src, 0, 128, 0).unwrap();
        assert!(matches!(
            qb.poll_recv(Duration::from_secs(1)).unwrap_err(),
            VerbsError::RecvBufferTooSmall {
                needed: 128,
                posted: 16
            }
        ));
    }

    #[test]
    fn killed_node_fails_verbs_ops() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(64);
        let dst = dev_b.register(64);
        qb.post_recv(1, dst);
        fabric.kill_node(dev_b.node());
        assert_eq!(
            qa.post_send(&src, 0, 4, 0).unwrap_err(),
            VerbsError::PeerDown
        );
        assert_eq!(
            qb.poll_recv(Duration::from_millis(50)).unwrap_err(),
            VerbsError::PeerDown
        );
        fabric.revive_node(dev_b.node());
    }

    #[test]
    fn endpoint_and_rkey_byte_roundtrip() {
        let ep = QpEndpoint {
            node: NodeId(0xdead),
            qp_id: 0x1122334455667788,
        };
        assert_eq!(QpEndpoint::from_bytes(ep.to_bytes()), ep);
        let rk = RemoteKey {
            node: NodeId(7),
            mr_id: 99,
        };
        assert_eq!(RemoteKey::from_bytes(rk.to_bytes()), rk);
    }

    #[test]
    fn verbs_latency_is_microseconds_not_tens() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let (qa, qb, dev_a, dev_b) = connected_pair(&fabric);
        let src = dev_a.register(64);
        let dst = dev_b.register(64);
        qb.post_recv(1, dst);
        let start = Instant::now();
        qa.post_send(&src, 0, 8, 0).unwrap();
        qb.poll_recv(Duration::from_secs(1)).unwrap();
        let oneway = start.elapsed();
        // Model says ~1.7us one-way + 0.6us post; allow slack for the
        // channel hop, but it must be far below socket-stack territory.
        assert!(
            oneway < Duration::from_micros(200),
            "verbs too slow: {oneway:?}"
        );
    }

    #[test]
    fn registration_counts_in_stats() {
        let fabric = Fabric::new(IB_QDR_VERBS);
        let n = fabric.add_node();
        let dev = RdmaDevice::open(&fabric, n).unwrap();
        let _a = dev.register(4096);
        let _b = dev.register(4096);
        let (_, _, _, regs) = fabric.stats().snapshot();
        assert_eq!(regs, 2);
    }
}
