//! Fault injection: per-link impairments and accept/handshake failures.
//!
//! A healthy fabric only exercises the fast paths; the RPC engine's retry,
//! deadline, and reconnect machinery needs links that misbehave *on
//! purpose*. This module defines the impairment spec a test attaches to a
//! link ([`FaultSpec`]) and the deterministic random source every
//! probabilistic decision draws from, so a seeded run replays exactly.
//!
//! Semantics per substrate:
//!
//! * **Streams** (`SimStream`): a dropped write fails with `BrokenPipe`,
//!   the way a TCP sender eventually surfaces a reset once retransmits are
//!   exhausted — a byte stream cannot silently lose a middle segment.
//! * **Verbs** (`QueuePair`): a dropped message is lost silently — the
//!   post completes but nothing ever arrives, so the receiver only notices
//!   via its own poll timeout (the "completion never came" failure mode).
//! * Both substrates add `extra_delay` plus a uniform `[0, jitter]` sample
//!   to each message's arrival time.
//!
//! Whole-link and whole-node failures are separate, non-probabilistic
//! switches: [`crate::Fabric::partition`] (link cut) and
//! [`crate::Fabric::kill_node`]. Listener-side failures are injected with
//! [`crate::Fabric::fail_next_connects`] (connect refused before the
//! handshake) and [`crate::Fabric::fail_next_accepts`] (connection dropped
//! by the acceptor mid-handshake).

use std::time::Duration;

/// Impairments applied to all traffic crossing one node pair (both
/// directions). Attach with [`crate::Fabric::set_link_fault`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Fixed additional one-way latency per message.
    pub extra_delay: Duration,
    /// Upper bound of a uniform random additional latency per message.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a message (stream write / verbs post)
    /// is dropped.
    pub drop_rate: f64,
}

impl FaultSpec {
    /// A slow link: fixed extra delay, no jitter, no loss.
    pub fn delay(extra: Duration) -> Self {
        FaultSpec {
            extra_delay: extra,
            ..Default::default()
        }
    }

    /// A lossy link dropping messages with probability `rate`.
    pub fn lossy(rate: f64) -> Self {
        FaultSpec {
            drop_rate: rate,
            ..Default::default()
        }
    }

    /// A black-hole link: every message is dropped.
    pub fn drop_all() -> Self {
        FaultSpec::lossy(1.0)
    }

    /// Add uniform random jitter in `[0, jitter]` per message.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Add a drop probability to this spec.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Whether this spec perturbs timing at all.
    pub fn delays(&self) -> bool {
        !self.extra_delay.is_zero() || !self.jitter.is_zero()
    }
}

/// xorshift64* step: updates `state` in place, returns a sample in
/// `[0, 1)`. Deterministic given the seed, dependency-free, and good
/// enough for drop coins and jitter — this is not cryptography.
pub(crate) fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    // Top 53 bits -> uniform double in [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_unit_is_deterministic_and_in_range() {
        let mut a = 0x1234_5678_9abc_def0u64;
        let mut b = 0x1234_5678_9abc_def0u64;
        for _ in 0..1000 {
            let x = next_unit(&mut a);
            assert_eq!(x, next_unit(&mut b), "same seed must replay");
            assert!((0.0..1.0).contains(&x));
        }
        assert_ne!(a, 0, "state must never collapse to zero");
    }

    #[test]
    fn spec_builders_compose() {
        let spec = FaultSpec::delay(Duration::from_millis(2))
            .with_jitter(Duration::from_millis(1))
            .with_drop_rate(0.5);
        assert_eq!(spec.extra_delay, Duration::from_millis(2));
        assert_eq!(spec.jitter, Duration::from_millis(1));
        assert_eq!(spec.drop_rate, 0.5);
        assert!(spec.delays());
        assert!(!FaultSpec::drop_all().delays());
    }
}
