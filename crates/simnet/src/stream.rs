//! Socket emulation: connection-oriented byte streams over the fabric.
//!
//! [`SimStream`] mimics the behaviour of a TCP socket as seen by the Hadoop
//! RPC baseline:
//!
//! * every `write` performs a **real staging copy** of the payload (the
//!   user-space → kernel socket-buffer copy the paper charges the default
//!   design for),
//! * every `write` pays the model's per-operation stack overhead and the
//!   message's wire time against the sender node's egress link clock,
//! * delivery happens one `base_latency` later, gated by the receiver
//!   node's ingress link clock (so many flows into one node contend),
//! * every `read` copies out of the staged segment (kernel → user copy).
//!
//! Streams are full-duplex and sharable across threads (`Read`/`Write` are
//! implemented for `&SimStream`), matching how Hadoop's `Connection` thread
//! and caller threads share one socket.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::fabric::{Fabric, NodeId, SimAddr, WakeSlot};
use crate::time::spin_until;

/// How often blocked reads/accepts re-check for node failure.
const FAILURE_POLL: Duration = Duration::from_millis(10);

/// Large writes are cut into wire segments of this size, each with its
/// own delivery window — like TCP segmentation. Without this, a reader
/// would absorb the whole message's wire time on its *first* byte and
/// then copy the rest "for free", which distorts receive-time accounting
/// (Figure 1 measures exactly that breakdown).
const WIRE_SEGMENT: usize = 16 * 1024;

/// A chunk of bytes in flight, stamped with its delivery window.
pub(crate) struct Segment {
    /// Instant at which the first byte reaches the receiver's NIC.
    arrive_start: Instant,
    /// Wire serialization time of this segment.
    wire: Duration,
    data: Bytes,
}

/// A connection handed to a listener by a connecting peer. Each direction
/// carries a [`WakeSlot`]: `read_wake` is the accepted stream's own
/// readiness slot (fired by the connector's writes and EOF), `peer_wake`
/// is the connector's slot (fired by the accepted stream's writes and
/// EOF).
pub(crate) struct PendingConn {
    peer_addr: SimAddr,
    to_peer: Sender<Segment>,
    from_peer: Receiver<Segment>,
    read_wake: WakeSlot,
    peer_wake: WakeSlot,
}

struct RxState {
    rx: Receiver<Segment>,
    /// Bytes from a previously delivered segment not yet read out.
    leftover: VecDeque<Bytes>,
    /// A segment pulled off the channel by [`SimStream::readable`] but not
    /// yet consumed by a read. Ingress/ledger charging happens only at
    /// consumption time, so peeking never perturbs the modeled clock.
    peeked: Option<Segment>,
    /// Set once the channel reports `Disconnected`: the stream is at EOF
    /// and stays readable forever (reads return `Ok(0)`).
    eof: bool,
}

struct StreamInner {
    fabric: Fabric,
    local: SimAddr,
    peer: SimAddr,
    /// `None` after an explicit shutdown of the write half.
    tx: Mutex<Option<Sender<Segment>>>,
    rx: Mutex<RxState>,
    read_timeout: Mutex<Option<Duration>>,
    /// This end's readiness slot, armed via [`SimStream::set_read_interest`]
    /// and fired by the peer's writes and EOF.
    read_wake: WakeSlot,
    /// The peer's readiness slot; fired after every local write, on
    /// [`SimStream::shutdown_write`], and when this end drops (EOF).
    peer_wake: WakeSlot,
}

impl Drop for StreamInner {
    fn drop(&mut self) {
        // Dropping this end drops its `Sender`, which the peer observes as
        // EOF — deliver the readiness edge for it.
        self.peer_wake.fire();
    }
}

/// A simulated full-duplex byte stream.
#[derive(Clone)]
pub struct SimStream {
    inner: Arc<StreamInner>,
}

impl SimStream {
    /// Connect from `local_node` to a listener at `remote`. Pays one round
    /// trip of handshake latency, like TCP's SYN/SYN-ACK.
    pub fn connect(fabric: &Fabric, local_node: NodeId, remote: SimAddr) -> io::Result<SimStream> {
        if fabric.is_dead(local_node) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "local node is down",
            ));
        }
        if fabric.is_dead(remote.node) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "remote node is down",
            ));
        }
        if fabric.is_partitioned(local_node, remote.node) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "network partition",
            ));
        }
        let accept_tx = fabric
            .inner
            .listeners
            .lock()
            .get(&remote)
            .cloned()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("nothing bound at {remote}"),
                )
            })?;
        if fabric.take_connect_failure(remote) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("injected connect failure to {remote}"),
            ));
        }

        let model = *fabric.model();
        // Handshake: one round trip plus a stack operation on each side.
        let handshake_ns = 2 * model.base_latency_ns + 2 * model.stack_overhead_ns;
        fabric.charge_modeled(local_node, handshake_ns);
        crate::time::spin_ns(handshake_ns);

        let local = SimAddr::new(local_node, ephemeral_port(fabric));
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        // One wake slot per direction, shared with the accepted end.
        let connector_wake = WakeSlot::new();
        let acceptor_wake = WakeSlot::new();
        accept_tx
            .send(PendingConn {
                peer_addr: local,
                to_peer: s2c_tx,
                from_peer: c2s_rx,
                read_wake: acceptor_wake.clone(),
                peer_wake: connector_wake.clone(),
            })
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener closed"))?;

        Ok(SimStream {
            inner: Arc::new(StreamInner {
                fabric: fabric.clone(),
                local,
                peer: remote,
                tx: Mutex::new(Some(c2s_tx)),
                rx: Mutex::new(RxState {
                    rx: s2c_rx,
                    leftover: VecDeque::new(),
                    peeked: None,
                    eof: false,
                }),
                read_timeout: Mutex::new(None),
                read_wake: connector_wake,
                peer_wake: acceptor_wake,
            }),
        })
    }

    /// The local (node, port) of this end of the stream.
    pub fn local_addr(&self) -> SimAddr {
        self.inner.local
    }

    /// The remote (node, port) this stream is connected to.
    pub fn peer_addr(&self) -> SimAddr {
        self.inner.peer
    }

    /// Set or clear the timeout applied to blocking reads.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) {
        *self.inner.read_timeout.lock() = timeout;
    }

    /// Close the write half; the peer will observe EOF after draining.
    pub fn shutdown_write(&self) {
        self.inner.tx.lock().take();
        // EOF is a readiness edge: a blocked event-driven peer must learn
        // its next read would return `Ok(0)`.
        self.inner.peer_wake.fire();
    }

    /// Arm this stream's readiness hook: it fires (charge-free, on the
    /// writer's thread) whenever the peer makes new input observable —
    /// bytes written or EOF (write-half shutdown or stream drop). The
    /// level-triggered [`SimStream::readable`] stays authoritative; the
    /// hook is the edge notification that makes polling it unnecessary.
    pub fn set_read_interest(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.inner.read_wake.set(hook);
    }

    /// Bytes received from the wire and buffered for reading (delivered
    /// segments not yet consumed, including one staged by
    /// [`SimStream::readable`]). The per-connection memory-accounting
    /// figure the server's metrics snapshot reports.
    pub fn buffered_bytes(&self) -> usize {
        let rx = self.inner.rx.lock();
        rx.leftover.iter().map(Bytes::len).sum::<usize>()
            + rx.peeked.as_ref().map_or(0, |seg| seg.data.len())
    }

    /// Whether a read would make progress right now without blocking:
    /// buffered bytes, an in-flight segment, or EOF (all senders gone —
    /// a read would return `Ok(0)` immediately). Nothing is charged to
    /// the modeled-time ledger; a segment surfaced here is stashed and
    /// consumed — and charged — by the next read. This is the `select()`
    /// readiness primitive event-loop readers poll.
    pub fn readable(&self) -> bool {
        let mut rx = self.inner.rx.lock();
        if !rx.leftover.is_empty() || rx.peeked.is_some() || rx.eof {
            return true;
        }
        match rx.rx.try_recv() {
            Ok(seg) => {
                rx.peeked = Some(seg);
                true
            }
            Err(crossbeam::channel::TryRecvError::Empty) => false,
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                rx.eof = true;
                true
            }
        }
    }

    fn write_impl(&self, buf: &[u8]) -> io::Result<usize> {
        self.write_gather(&[buf])
    }

    /// Gathering write: transmit the concatenation of `bufs` exactly as if
    /// it were one contiguous `write` — same stack charge, same 16 KB wire
    /// segmentation (segments span slice boundaries), same single message
    /// count — but with **no user-space concatenation copy**. This is the
    /// simulated `writev`: callers hand `[len prefix][payload]` as two
    /// slices instead of staging them into one buffer first.
    pub fn write_gather(&self, bufs: &[&[u8]]) -> io::Result<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(0);
        }
        let inner = &self.inner;
        let fabric = &inner.fabric;
        if fabric.is_dead(inner.local.node) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "local node is down",
            ));
        }
        if fabric.is_dead(inner.peer.node) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer node is down",
            ));
        }
        if fabric.is_partitioned(inner.local.node, inner.peer.node) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "network partition",
            ));
        }
        // Injected loss: a reliable stream cannot lose a middle segment, so
        // a drop surfaces as the reset TCP would deliver once retransmits
        // run out.
        if fabric.fault_drops(inner.local.node, inner.peer.node) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected packet loss",
            ));
        }
        let fault_delay = fabric.fault_delay(inner.local.node, inner.peer.node);
        let model = *fabric.model();

        // Protocol stack processing on the sender (one syscall's worth,
        // plus the per-KB skb cost of the whole buffer). The modeled-time
        // ledger is charged with the sender-side one-way costs here (stack,
        // propagation, injected fault delay); per-segment wire time is
        // charged below as each segment reserves the egress link.
        crate::time::spin_ns(model.stack_ns(total));
        fabric.charge_modeled(
            inner.local.node,
            model.stack_ns(total) + model.base_latency_ns + fault_delay.as_nanos() as u64,
        );

        let tx = inner
            .tx
            .lock()
            .clone()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "write half shut down"))?;

        // Segment like TCP: each wire segment pays its own bandwidth and
        // gets its own delivery window, so a receiver drains a large
        // message at wire pace instead of all at once. Segments are cut
        // from the *concatenation* of the slices, so a gathered write is
        // wire-identical to a contiguous one.
        let (mut idx, mut off, mut sent) = (0usize, 0usize, 0usize);
        while sent < total {
            while off == bufs[idx].len() {
                idx += 1;
                off = 0;
            }
            let chunk_len = (total - sent).min(WIRE_SEGMENT);
            // The staging copy user buffer -> "kernel" segment is real (a
            // socket write always pays it) but models kernel work, hence
            // the hw scope.
            let data = crate::hw::hw_scope(|| {
                if bufs[idx].len() - off >= chunk_len {
                    let d = Bytes::copy_from_slice(&bufs[idx][off..off + chunk_len]);
                    off += chunk_len;
                    d
                } else {
                    let mut gathered = Vec::with_capacity(chunk_len);
                    while gathered.len() < chunk_len {
                        if off == bufs[idx].len() {
                            idx += 1;
                            off = 0;
                            continue;
                        }
                        let take = (bufs[idx].len() - off).min(chunk_len - gathered.len());
                        gathered.extend_from_slice(&bufs[idx][off..off + take]);
                        off += take;
                    }
                    Bytes::from(gathered)
                }
            });
            let wire = Duration::from_nanos(model.wire_ns(chunk_len));
            let egress_end = match fabric.links(inner.local.node) {
                Some(links) => links.egress.reserve_from(Instant::now(), wire),
                None => Instant::now() + wire,
            };
            fabric.charge_modeled(inner.local.node, wire.as_nanos() as u64);
            spin_until(egress_end);
            let arrive_start =
                egress_end - wire + Duration::from_nanos(model.base_latency_ns) + fault_delay;
            tx.send(Segment {
                arrive_start,
                wire,
                data,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
            sent += chunk_len;
        }
        // Readiness edge for an event-driven peer. Fired once per message
        // (not per segment), after every segment is on the channel, and
        // charge-free — notification is bookkeeping, not wire traffic.
        inner.peer_wake.fire();
        let stats = fabric.stats();
        stats.messages.fetch_add(1, Ordering::Relaxed);
        stats.bytes.fetch_add(total as u64, Ordering::Relaxed);
        Ok(total)
    }

    fn read_impl(&self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let inner = &self.inner;
        let mut rx = inner.rx.lock();

        // Serve buffered bytes first (kernel -> user copy).
        if let Some(front) = rx.leftover.front_mut() {
            let n = front.len().min(buf.len());
            buf[..n].copy_from_slice(&front[..n]);
            let _ = front.split_to(n);
            if front.is_empty() {
                rx.leftover.pop_front();
            }
            return Ok(n);
        }

        let deadline = inner.read_timeout.lock().map(|t| Instant::now() + t);
        let seg = if let Some(seg) = rx.peeked.take() {
            // A segment staged by `readable()`: consume it before touching
            // the channel so delivery order is preserved. Its ingress and
            // ledger charges happen below, exactly as for a fresh recv.
            seg
        } else if rx.eof {
            return Ok(0);
        } else {
            loop {
                if inner.fabric.is_dead(inner.local.node) {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "local node is down",
                    ));
                }
                let wait = match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(io::Error::new(io::ErrorKind::TimedOut, "read timeout"));
                        }
                        FAILURE_POLL.min(d - now)
                    }
                    None => FAILURE_POLL,
                };
                match rx.rx.recv_timeout(wait) {
                    Ok(seg) => break seg,
                    Err(RecvTimeoutError::Timeout) => {
                        if inner.fabric.is_dead(inner.peer.node) {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionReset,
                                "peer node is down",
                            ));
                        }
                    }
                    // All senders gone: orderly EOF.
                    Err(RecvTimeoutError::Disconnected) => {
                        rx.eof = true;
                        return Ok(0);
                    }
                }
            }
        };

        // Wait for the bytes to finish arriving, gated by our ingress link.
        // The receiver's ledger is charged the ingress serialization time of
        // each fresh segment (leftover re-reads cost nothing, as above).
        let ingress_end = match inner.fabric.links(inner.local.node) {
            Some(links) => links.ingress.reserve_from(seg.arrive_start, seg.wire),
            None => seg.arrive_start + seg.wire,
        };
        inner
            .fabric
            .charge_modeled(inner.local.node, seg.wire.as_nanos() as u64);
        spin_until(ingress_end);

        let mut data = seg.data;
        let n = data.len().min(buf.len());
        buf[..n].copy_from_slice(&data[..n]);
        let rest = data.split_off(n);
        if !rest.is_empty() {
            rx.leftover.push_back(rest);
        }
        Ok(n)
    }

    /// Push `bytes` back onto the read side: the next reads return them
    /// before any not-yet-consumed network data. Used by protocol sniffing
    /// (peek at the first bytes of a connection, then hand the stream to a
    /// parser that expects to see them).
    pub fn unread(&self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.inner
            .rx
            .lock()
            .leftover
            .push_front(Bytes::copy_from_slice(bytes));
    }

    /// Read exactly `buf.len()` bytes or fail (like `Read::read_exact`, but
    /// usable on `&self`).
    pub fn read_exact_at(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read_impl(&mut buf[filled..])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed",
                ));
            }
            filled += n;
        }
        Ok(())
    }
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.read_impl(buf)
    }
}

impl Write for SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_impl(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for &SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.read_impl(buf)
    }
}

impl Write for &SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_impl(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl std::fmt::Debug for SimStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimStream({} -> {})", self.inner.local, self.inner.peer)
    }
}

fn ephemeral_port(fabric: &Fabric) -> u16 {
    49152u16.wrapping_add((fabric.fresh_id() % 16000) as u16)
}

/// A bound, listening endpoint.
#[derive(Debug)]
pub struct SimListener {
    fabric: Fabric,
    addr: SimAddr,
    incoming: Receiver<PendingConn>,
}

impl SimListener {
    /// Bind to `addr`. Fails with `AddrInUse` if something is already bound.
    pub fn bind(fabric: &Fabric, addr: SimAddr) -> io::Result<SimListener> {
        if fabric.is_dead(addr.node) {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "node is down"));
        }
        let (tx, rx) = unbounded();
        let mut listeners = fabric.inner.listeners.lock();
        if listeners.contains_key(&addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{addr} already bound"),
            ));
        }
        listeners.insert(addr, tx);
        drop(listeners);
        Ok(SimListener {
            fabric: fabric.clone(),
            addr,
            incoming: rx,
        })
    }

    /// The address this listener is bound to.
    pub fn local_addr(&self) -> SimAddr {
        self.addr
    }

    /// Block until a peer connects; returns the stream and the peer address.
    pub fn accept(&self) -> io::Result<(SimStream, SimAddr)> {
        loop {
            if self.fabric.is_dead(self.addr.node) {
                return Err(io::Error::new(io::ErrorKind::NotConnected, "node is down"));
            }
            match self.incoming.recv_timeout(FAILURE_POLL) {
                Ok(pending) => {
                    // Injected accept failure: drop the connection on the
                    // floor — the peer's connect already succeeded, so it
                    // discovers the breakage only on its first I/O.
                    if self.fabric.take_accept_failure(self.addr) {
                        continue;
                    }
                    let peer = pending.peer_addr;
                    let stream = SimStream {
                        inner: Arc::new(StreamInner {
                            fabric: self.fabric.clone(),
                            local: self.addr,
                            peer,
                            tx: Mutex::new(Some(pending.to_peer)),
                            rx: Mutex::new(RxState {
                                rx: pending.from_peer,
                                leftover: VecDeque::new(),
                                peeked: None,
                                eof: false,
                            }),
                            read_timeout: Mutex::new(None),
                            read_wake: pending.read_wake,
                            peer_wake: pending.peer_wake,
                        }),
                    };
                    return Ok((stream, peer));
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "listener evicted",
                    ))
                }
            }
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    pub fn try_accept(&self) -> io::Result<Option<(SimStream, SimAddr)>> {
        match self.incoming.try_recv() {
            Ok(pending) => {
                if self.fabric.take_accept_failure(self.addr) {
                    drop(pending);
                    return Ok(None);
                }
                let peer = pending.peer_addr;
                let stream = SimStream {
                    inner: Arc::new(StreamInner {
                        fabric: self.fabric.clone(),
                        local: self.addr,
                        peer,
                        tx: Mutex::new(Some(pending.to_peer)),
                        rx: Mutex::new(RxState {
                            rx: pending.from_peer,
                            leftover: VecDeque::new(),
                            peeked: None,
                            eof: false,
                        }),
                        read_timeout: Mutex::new(None),
                        read_wake: pending.read_wake,
                        peer_wake: pending.peer_wake,
                    }),
                };
                Ok(Some((stream, peer)))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "listener evicted",
            )),
        }
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        self.fabric.inner.listeners.lock().remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GIG_E, IPOIB_QDR};
    use std::thread;

    fn pair(model: crate::NetworkModel) -> (Fabric, SimStream, SimStream) {
        let fabric = Fabric::new(model);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 9000);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
        let (srv_stream, _) = listener.accept().unwrap();
        let cli_stream = h.join().unwrap();
        (fabric, cli_stream, srv_stream)
    }

    #[test]
    fn roundtrip_bytes() {
        let (_f, mut cli, mut srv) = pair(IPOIB_QDR);
        cli.write_all(b"hello fabric").unwrap();
        let mut buf = [0u8; 12];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello fabric");
        // And the other direction.
        srv.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        cli.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn partial_reads_preserve_order() {
        let (_f, mut cli, mut srv) = pair(IPOIB_QDR);
        cli.write_all(&(0u8..100).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 7];
        while out.len() < 100 {
            let n = srv.read(&mut chunk).unwrap();
            out.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(out, (0u8..100).collect::<Vec<_>>());
    }

    #[test]
    fn unread_bytes_come_back_before_network_data() {
        let (_f, mut cli, mut srv) = pair(IPOIB_QDR);
        cli.write_all(b"tail").unwrap();
        let mut sniff = [0u8; 2];
        srv.read_exact(&mut sniff).unwrap();
        assert_eq!(&sniff, b"ta");
        srv.unread(&sniff);
        let mut buf = [0u8; 4];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tail");
    }

    #[test]
    fn eof_on_peer_drop() {
        let (_f, cli, mut srv) = pair(IPOIB_QDR);
        drop(cli);
        let mut buf = [0u8; 8];
        assert_eq!(srv.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn shutdown_write_gives_peer_eof_but_keeps_reading() {
        let (_f, cli, mut srv) = pair(IPOIB_QDR);
        cli.write_impl(b"last words").unwrap();
        cli.shutdown_write();
        let mut buf = [0u8; 10];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"last words");
        assert_eq!(srv.read(&mut buf).unwrap(), 0, "EOF after shutdown");
        // Reverse direction still works.
        srv.write_impl(b"reply").unwrap();
        let mut buf = [0u8; 5];
        (&cli).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"reply");
    }

    #[test]
    fn connect_to_unbound_address_is_refused() {
        let fabric = Fabric::new(IPOIB_QDR);
        let n = fabric.add_node();
        let err = SimStream::connect(&fabric, n, SimAddr::new(NodeId(42), 1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn double_bind_is_addr_in_use() {
        let fabric = Fabric::new(IPOIB_QDR);
        let n = fabric.add_node();
        let addr = SimAddr::new(n, 80);
        let _l1 = SimListener::bind(&fabric, addr).unwrap();
        let err = SimListener::bind(&fabric, addr).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
    }

    #[test]
    fn rebind_after_drop() {
        let fabric = Fabric::new(IPOIB_QDR);
        let n = fabric.add_node();
        let addr = SimAddr::new(n, 80);
        drop(SimListener::bind(&fabric, addr).unwrap());
        SimListener::bind(&fabric, addr).unwrap();
    }

    #[test]
    fn killed_peer_fails_writes() {
        let (f, cli, _srv) = pair(IPOIB_QDR);
        f.kill_node(cli.peer_addr().node);
        let err = cli.write_impl(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn killed_peer_fails_blocked_reads() {
        let (f, mut cli, _srv) = pair(IPOIB_QDR);
        let node = cli.peer_addr().node;
        let h = thread::spawn(move || {
            let mut buf = [0u8; 1];
            cli.read(&mut buf)
        });
        thread::sleep(Duration::from_millis(30));
        f.kill_node(node);
        let res = h.join().unwrap();
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn read_timeout_fires() {
        let (_f, cli, _srv) = pair(IPOIB_QDR);
        cli.set_read_timeout(Some(Duration::from_millis(25)));
        let mut buf = [0u8; 1];
        let start = Instant::now();
        let err = (&cli).read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn latency_is_charged_per_fabric() {
        // 1GigE model has ~35us one-way latency; a 1-byte ping-pong should
        // therefore take at least 2 * (latency + stack) = ~86us.
        let (_f, mut cli, mut srv) = pair(GIG_E);
        let h = thread::spawn(move || {
            let mut b = [0u8; 1];
            srv.read_exact(&mut b).unwrap();
            srv.write_all(&b).unwrap();
        });
        let start = Instant::now();
        cli.write_all(&[7]).unwrap();
        let mut b = [0u8; 1];
        cli.read_exact(&mut b).unwrap();
        let rtt = start.elapsed();
        h.join().unwrap();
        assert_eq!(b[0], 7);
        assert!(rtt >= Duration::from_micros(80), "rtt too small: {rtt:?}");
    }

    #[test]
    fn bandwidth_is_charged_for_large_messages() {
        // 1 MB over ~117 MB/s is ~8.5ms of wire time each way.
        let (_f, mut cli, mut srv) = pair(GIG_E);
        let payload = vec![0xabu8; 1 << 20];
        let h = thread::spawn(move || {
            let mut buf = vec![0u8; 1 << 20];
            srv.read_exact(&mut buf).unwrap();
            buf
        });
        let start = Instant::now();
        cli.write_all(&payload).unwrap();
        let got = h.join().unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got, payload);
        assert!(
            elapsed >= Duration::from_millis(7),
            "too fast for 1GigE: {elapsed:?}"
        );
    }

    #[test]
    fn readable_reflects_pending_data_and_eof() {
        let (f, cli, mut srv) = pair(IPOIB_QDR);
        assert!(!srv.readable(), "idle stream must not be readable");
        cli.write_impl(b"ping").unwrap();
        // The segment is on the channel immediately (delivery gating
        // happens at read time), so readiness flips without blocking.
        assert!(srv.readable());
        // Peeking must not charge the receiver's modeled ledger; the
        // charge lands when the bytes are actually consumed.
        let before = f.modeled_ns(srv.local_addr().node);
        assert!(srv.readable());
        assert_eq!(f.modeled_ns(srv.local_addr().node), before);
        let mut buf = [0u8; 4];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert!(
            f.modeled_ns(srv.local_addr().node) > before,
            "consuming the peeked segment must charge ingress wire time"
        );
        assert!(!srv.readable(), "drained stream must not be readable");
        // EOF counts as readable: a read would return Ok(0) immediately.
        drop(cli);
        assert!(srv.readable());
        assert_eq!(srv.read(&mut buf).unwrap(), 0);
        assert!(srv.readable(), "EOF readiness is sticky");
    }

    #[test]
    fn peeked_segment_preserves_order_and_partial_reads() {
        let (_f, cli, mut srv) = pair(IPOIB_QDR);
        cli.write_impl(b"first").unwrap();
        assert!(srv.readable());
        cli.write_impl(b"second").unwrap();
        let mut out = vec![0u8; 11];
        srv.read_exact(&mut out).unwrap();
        assert_eq!(&out, b"firstsecond");
    }

    #[test]
    fn gathered_write_is_wire_identical_to_contiguous() {
        // Same payload, once contiguous and once as a gathered write cut at
        // awkward offsets (including an empty slice and a cut straddling
        // the 16KB wire-segment boundary): both must charge the sender's
        // modeled ledger identically, count one message, and deliver the
        // same bytes.
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i * 7) as u8).collect();

        let (f1, cli1, mut srv1) = pair(IPOIB_QDR);
        let (f2, cli2, mut srv2) = pair(IPOIB_QDR);
        let before1 = f1.modeled_ns(cli1.local_addr().node);
        let before2 = f2.modeled_ns(cli2.local_addr().node);

        cli1.write_impl(&payload).unwrap();
        cli2.write_gather(&[
            &payload[..4],
            &[],
            &payload[4..WIRE_SEGMENT + 100],
            &payload[WIRE_SEGMENT + 100..],
        ])
        .unwrap();

        let charged1 = f1.modeled_ns(cli1.local_addr().node) - before1;
        let charged2 = f2.modeled_ns(cli2.local_addr().node) - before2;
        assert_eq!(charged1, charged2, "gather must charge like contiguous");

        let (mut got1, mut got2) = (vec![0u8; payload.len()], vec![0u8; payload.len()]);
        srv1.read_exact(&mut got1).unwrap();
        srv2.read_exact(&mut got2).unwrap();
        assert_eq!(got1, payload);
        assert_eq!(got2, payload);

        let (msgs1, bytes1, _, _) = f1.stats().snapshot();
        let (msgs2, bytes2, _, _) = f2.stats().snapshot();
        assert_eq!(msgs1, msgs2, "one message either way");
        assert_eq!(bytes1, bytes2);
    }

    #[test]
    fn read_interest_fires_on_data_eof_and_drop() {
        use std::sync::atomic::AtomicUsize;

        let (f, cli, srv) = pair(IPOIB_QDR);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        srv.set_read_interest(Arc::new(move || {
            f2.fetch_add(1, Ordering::SeqCst);
        }));

        // Data edge: one fire per message, regardless of segment count,
        // and the notification itself charges no modeled time.
        let before = f.modeled_ns(srv.local_addr().node);
        cli.write_impl(&[0u8; 40_000]).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "one wake per message");
        assert_eq!(
            f.modeled_ns(srv.local_addr().node),
            before,
            "wake delivery is charge-free"
        );
        assert!(srv.readable());

        // EOF edges: shutdown_write fires, and dropping the peer (which
        // closes the channel) fires again. Double EOF fires are harmless —
        // the reader re-checks `readable()` on every wake.
        cli.shutdown_write();
        assert_eq!(fired.load(Ordering::SeqCst), 2, "shutdown fires wake");
        drop(cli);
        assert_eq!(fired.load(Ordering::SeqCst), 3, "drop fires wake");

        // Connector side is symmetric: the accepted stream's writes wake it.
        let (_, cli2, srv2) = pair(IPOIB_QDR);
        let fired2 = Arc::new(AtomicUsize::new(0));
        let f3 = fired2.clone();
        cli2.set_read_interest(Arc::new(move || {
            f3.fetch_add(1, Ordering::SeqCst);
        }));
        srv2.write_impl(b"hi").unwrap();
        assert_eq!(fired2.load(Ordering::SeqCst), 1);
        assert_eq!(cli2.buffered_bytes(), 0, "nothing consumed or peeked yet");
        assert!(cli2.readable());
        assert_eq!(cli2.buffered_bytes(), 2, "peeked segment is accounted");
    }

    #[test]
    fn fabric_stats_count_traffic() {
        let (f, cli, mut srv) = pair(IPOIB_QDR);
        cli.write_impl(&[0u8; 256]).unwrap();
        let mut buf = [0u8; 256];
        srv.read_exact(&mut buf).unwrap();
        let (msgs, bytes, _, _) = f.stats().snapshot();
        assert!(msgs >= 1);
        assert!(bytes >= 256);
    }
}
