//! # simnet — an in-process fabric simulator
//!
//! This crate is the hardware substitute for the ICPP'13 RPCoIB reproduction.
//! The paper evaluates on QDR InfiniBand HCAs, IPoIB, 10GigE iWARP NICs and
//! 1GigE; none of those are available here, so `simnet` provides the two
//! transport substrates the paper's software stack needs, with calibrated
//! delay injection in place of real wires:
//!
//! * [`stream`] — socket-like byte streams ([`SimListener`] / [`SimStream`])
//!   whose write path performs a real staging copy (emulating the kernel
//!   socket buffer) and charges a per-operation protocol-stack overhead, a
//!   per-message one-way latency, and size/bandwidth wire time.
//! * [`verbs`] — an RDMA-verbs-style API ([`RdmaDevice`], [`MemoryRegion`],
//!   [`QueuePair`], completion polling) with two-sided send/recv and
//!   one-sided RDMA write (optionally with immediate data), charged at the
//!   much lower native-IB cost and with **no** protocol-stack copies.
//!
//! All costs come from a [`NetworkModel`]; presets for the paper's four
//! fabrics are in [`model`]. Simulated cluster nodes are logical
//! ([`NodeId`]): each node gets its own egress/ingress link clocks so that
//! flows sharing a NIC contend for bandwidth the way real flows do.
//!
//! Delays are injected as precise busy-waits ([`time::spin_until`]) because
//! OS sleep is far too coarse at the microsecond scale the paper measures.
//!
//! The simulator also supports failure injection so the upper layers
//! (HDFS pipeline recovery, RPC retry/reconnect paths) can be tested:
//! whole-node and whole-link failures ([`Fabric::kill_node`],
//! [`Fabric::partition`]), per-link delay/jitter/loss impairments
//! ([`Fabric::set_link_fault`] with a [`FaultSpec`]), and listener-side
//! connect refusals and mid-handshake drops
//! ([`Fabric::fail_next_connects`], [`Fabric::fail_next_accepts`]); see
//! [`faults`] for the semantics on each substrate.
//!
//! ```
//! use simnet::{model, Fabric, RdmaDevice};
//! use std::time::Duration;
//!
//! let fabric = Fabric::new(model::IB_QDR_VERBS);
//! let (a, b) = (fabric.add_node(), fabric.add_node());
//! let dev_a = RdmaDevice::open(&fabric, a).unwrap();
//! let dev_b = RdmaDevice::open(&fabric, b).unwrap();
//!
//! // Connect a queue pair, pre-post a receive, send.
//! let qa = dev_a.create_qp();
//! let qb = dev_b.create_qp();
//! qa.connect(qb.endpoint());
//! qb.connect(qa.endpoint());
//! let src = dev_a.register(128);
//! let dst = dev_b.register(128);
//! src.write_at(0, b"over the wire").unwrap();
//! qb.post_recv(1, dst.clone());
//! qa.post_send(&src, 0, 13, 0).unwrap();
//!
//! let completion = qb.poll_recv(Duration::from_secs(1)).unwrap();
//! let mut got = vec![0u8; completion.len];
//! dst.read_at(0, &mut got).unwrap();
//! assert_eq!(got, b"over the wire");
//! ```

pub mod fabric;
pub mod faults;
pub mod hw;
pub mod model;
pub mod stream;
pub mod time;
pub mod topology;
pub mod verbs;

pub use fabric::{Fabric, FabricStats, NodeId, SimAddr, WakeSlot};
pub use faults::FaultSpec;
pub use hw::{hw_scope, in_hw_scope};
pub use model::NetworkModel;
pub use stream::{SimListener, SimStream};
pub use time::{fast_forward, set_fast_forward};
pub use topology::{Cluster, Host};
pub use verbs::{
    Completion, CompletionKind, MemoryRegion, QpEndpoint, QueuePair, RdmaDevice, RemoteKey,
};

/// Errors surfaced by the simulated fabric.
///
/// Socket-side APIs use `std::io::Error` (so they can implement
/// `Read`/`Write`); verbs-side APIs use this enum, mirroring how real verbs
/// report errors through work-completion status rather than errno.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// The peer queue pair (or its node) is gone.
    PeerDown,
    /// `post_send` on a queue pair that was never connected.
    NotConnected,
    /// The receiver had no posted receive buffer (receiver-not-ready).
    ReceiverNotReady,
    /// A posted receive buffer was too small for the incoming message.
    RecvBufferTooSmall { needed: usize, posted: usize },
    /// Access outside the bounds of a registered memory region.
    OutOfBounds {
        offset: usize,
        len: usize,
        region: usize,
    },
    /// The referenced remote memory region does not exist (bad rkey).
    BadRemoteKey,
    /// Polled past the configured timeout with no completion.
    Timeout,
}

impl std::fmt::Display for VerbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerbsError::PeerDown => write!(f, "peer queue pair or node is down"),
            VerbsError::NotConnected => write!(f, "queue pair not connected"),
            VerbsError::ReceiverNotReady => write!(f, "no posted receive buffer (RNR)"),
            VerbsError::RecvBufferTooSmall { needed, posted } => {
                write!(
                    f,
                    "posted recv buffer too small: need {needed}, have {posted}"
                )
            }
            VerbsError::OutOfBounds {
                offset,
                len,
                region,
            } => {
                write!(
                    f,
                    "MR access out of bounds: [{offset}, +{len}) in region of {region}"
                )
            }
            VerbsError::BadRemoteKey => write!(f, "unknown remote memory region (bad rkey)"),
            VerbsError::Timeout => write!(f, "verbs poll timeout"),
        }
    }
}

impl std::error::Error for VerbsError {}
