//! Hardware-work scoping for allocation accounting.
//!
//! Some heap allocations inside simnet *model hardware or kernel work*:
//! the user→kernel staging copy a socket write performs, the DMA staging
//! a verbs `post_send` performs. On real hardware those bytes land in a
//! kernel socket buffer or the HCA's DMA engine — they are not
//! application heap traffic, and an allocation-regression harness that
//! counts application allocations must not attribute them to the RPC hot
//! path. Code modeling such work wraps itself in [`hw_scope`]; the test
//! harness's global allocator checks [`in_hw_scope`] and skips counting.
//!
//! The scope is thread-local and re-entrant, and compiles to a single
//! TLS counter — negligible next to the spin-waits these paths already
//! perform.

use std::cell::Cell;

thread_local! {
    static HW_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True while the current thread is inside a [`hw_scope`] call — i.e.
/// any allocation happening now models kernel/NIC work, not application
/// heap traffic.
pub fn in_hw_scope() -> bool {
    HW_DEPTH.with(|d| d.get()) > 0
}

/// Run `f` with the current thread marked as doing modeled hardware
/// work. Re-entrant.
pub fn hw_scope<R>(f: impl FnOnce() -> R) -> R {
    HW_DEPTH.with(|d| d.set(d.get() + 1));
    let out = f();
    HW_DEPTH.with(|d| d.set(d.get() - 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_is_reentrant_and_thread_local() {
        assert!(!in_hw_scope());
        hw_scope(|| {
            assert!(in_hw_scope());
            hw_scope(|| assert!(in_hw_scope()));
            assert!(in_hw_scope());
            std::thread::spawn(|| assert!(!in_hw_scope()))
                .join()
                .unwrap();
        });
        assert!(!in_hw_scope());
    }
}
