//! Precise delay injection.
//!
//! The paper's microbenchmarks live in the 30–100 µs range; `thread::sleep`
//! on Linux routinely overshoots by 50+ µs, which would drown the effects we
//! are trying to reproduce. We therefore busy-wait on [`Instant`] for short
//! delays and fall back to a sleep-then-spin strategy for long ones so the
//! job-scale benchmarks do not burn whole cores while "transferring" large
//! blocks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// When set, modeled delays are *accounted but not waited*: `spin_until`,
/// `spin_sleep`, and `spin_ns` return immediately. The per-node modeled-time
/// ledger (`Fabric::modeled_ns`) is charged at the same call sites either
/// way, so latency figures derived from the ledger are unchanged — only the
/// wall-clock realism disappears. Benchmarks use this to run large sweeps in
/// CI without burning minutes of busy-wait.
static FAST_FORWARD: AtomicBool = AtomicBool::new(false);

/// Enable or disable fast-forward mode (process-wide). See [`FAST_FORWARD`].
pub fn set_fast_forward(enabled: bool) {
    FAST_FORWARD.store(enabled, Ordering::Release);
}

/// Whether modeled delays are currently being skipped.
pub fn fast_forward() -> bool {
    FAST_FORWARD.load(Ordering::Acquire)
}

/// Above this threshold we coarse-sleep most of the delay before spinning
/// out the remainder. 200 µs keeps the spin portion (and thus CPU waste)
/// bounded while staying precise.
const SLEEP_THRESHOLD: Duration = Duration::from_micros(200);

/// Margin left for the final spin when coarse-sleeping.
const SLEEP_SLACK: Duration = Duration::from_micros(150);

/// Above this remaining time, waiting threads yield between time checks
/// instead of pure-spinning. This matters when the simulation is CPU-
/// oversubscribed (many simulated nodes on few cores): yielding lets the
/// peer threads that would make the deadline meaningful actually run.
/// The threshold trades precision against scheduling behaviour: below
/// it, waits pure-spin (tight, but holds the core); above it, waits
/// yield between checks (frees the core, but under a long run queue one
/// yield can cost milliseconds). 10 µs keeps verbs-scale waits tight
/// while socket-stack-scale waits cede the core.
const YIELD_THRESHOLD: Duration = Duration::from_micros(10);

/// Busy-wait until the given deadline with sub-microsecond precision.
///
/// Returns immediately if the deadline has already passed.
pub fn spin_until(deadline: Instant) {
    if fast_forward() {
        return;
    }
    let now = Instant::now();
    if now >= deadline {
        return;
    }
    let remaining = deadline - now;
    if remaining > SLEEP_THRESHOLD {
        // Sleep off the bulk, leaving slack for the OS to overshoot into.
        std::thread::sleep(remaining - SLEEP_SLACK);
    }
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        if deadline - now > YIELD_THRESHOLD {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Busy-wait for the given duration. See [`spin_until`].
pub fn spin_sleep(dur: Duration) {
    if dur.is_zero() {
        return;
    }
    spin_until(Instant::now() + dur);
}

/// Busy-wait for `ns` nanoseconds.
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    spin_sleep(Duration::from_nanos(ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_sleep_is_at_least_requested() {
        for &us in &[1u64, 10, 50, 300] {
            let dur = Duration::from_micros(us);
            let start = Instant::now();
            spin_sleep(dur);
            assert!(Instant::now() - start >= dur, "undershot {us}us");
        }
    }

    #[test]
    fn spin_sleep_is_reasonably_tight_for_short_delays() {
        // Warm up.
        spin_sleep(Duration::from_micros(5));
        let dur = Duration::from_micros(50);
        let start = Instant::now();
        spin_sleep(dur);
        let elapsed = Instant::now() - start;
        // Allow generous scheduling noise, but the point of spinning is to
        // stay within the same order of magnitude.
        assert!(elapsed < dur * 20, "overshot: {elapsed:?}");
    }

    #[test]
    fn zero_and_past_deadlines_return_immediately() {
        spin_sleep(Duration::ZERO);
        spin_ns(0);
        spin_until(Instant::now() - Duration::from_millis(1));
    }
}
