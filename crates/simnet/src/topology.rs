//! Dual-rail cluster topology.
//!
//! The paper's testbed hosts carry two NICs: an Ethernet adapter (1GigE or
//! 10GigE) and a QDR InfiniBand HCA (used either natively via verbs or as
//! IPoIB). Its evaluation mixes transports *per component* — e.g. Figure 7
//! runs HDFS data over RDMA while RPC stays on 1GigE. [`Cluster`] models
//! that: every [`Host`] owns one node on an "eth" fabric (whatever TCP
//! model the experiment selects) and one on a native-IB fabric.

use crate::fabric::{Fabric, NodeId, SimAddr};
use crate::model::{NetworkModel, IB_QDR_VERBS};

/// Index of a host in a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Host(pub usize);

impl std::fmt::Display for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

struct HostNics {
    eth: NodeId,
    ib: NodeId,
}

/// A set of simulated hosts, each with an Ethernet NIC and an IB HCA.
pub struct Cluster {
    eth: Fabric,
    ib: Fabric,
    hosts: Vec<HostNics>,
}

impl Cluster {
    /// Build a cluster of `n` hosts whose Ethernet rail runs `eth_model`
    /// (1GigE / 10GigE / IPoIB) and whose IB rail is native QDR verbs.
    pub fn new(eth_model: NetworkModel, n: usize) -> Cluster {
        let mut cluster = Cluster {
            eth: Fabric::new(eth_model),
            ib: Fabric::new(IB_QDR_VERBS),
            hosts: Vec::new(),
        };
        for _ in 0..n {
            cluster.add_host();
        }
        cluster
    }

    /// Add one host (both NICs) and return its index.
    pub fn add_host(&mut self) -> Host {
        let nics = HostNics {
            eth: self.eth.add_node(),
            ib: self.ib.add_node(),
        };
        self.hosts.push(nics);
        Host(self.hosts.len() - 1)
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// All hosts, in index order.
    pub fn hosts(&self) -> impl Iterator<Item = Host> + '_ {
        (0..self.hosts.len()).map(Host)
    }

    /// The Ethernet-rail fabric.
    pub fn eth(&self) -> &Fabric {
        &self.eth
    }

    /// The InfiniBand-rail fabric.
    pub fn ib(&self) -> &Fabric {
        &self.ib
    }

    /// The host's node id on the Ethernet rail.
    pub fn eth_node(&self, host: Host) -> NodeId {
        self.hosts[host.0].eth
    }

    /// The host's node id on the IB rail.
    pub fn ib_node(&self, host: Host) -> NodeId {
        self.hosts[host.0].ib
    }

    /// Address `(host, port)` on the Ethernet rail.
    pub fn eth_addr(&self, host: Host, port: u16) -> SimAddr {
        SimAddr::new(self.eth_node(host), port)
    }

    /// Address `(host, port)` on the IB rail.
    pub fn ib_addr(&self, host: Host, port: u16) -> SimAddr {
        SimAddr::new(self.ib_node(host), port)
    }

    /// Fail a host: both NICs go dark.
    pub fn kill_host(&self, host: Host) {
        self.eth.kill_node(self.eth_node(host));
        self.ib.kill_node(self.ib_node(host));
    }

    /// Revive a previously killed host.
    pub fn revive_host(&self, host: Host) {
        self.eth.revive_node(self.eth_node(host));
        self.ib.revive_node(self.ib_node(host));
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("hosts", &self.hosts.len())
            .field("eth_model", &self.eth.model().name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IPOIB_QDR;

    #[test]
    fn hosts_have_one_node_per_rail() {
        let cluster = Cluster::new(IPOIB_QDR, 3);
        assert_eq!(cluster.len(), 3);
        let h = Host(1);
        assert_ne!(cluster.eth_addr(h, 80), cluster.eth_addr(Host(2), 80));
        assert!(!cluster.eth().model().rdma_capable);
        assert!(cluster.ib().model().rdma_capable);
    }

    #[test]
    fn kill_host_affects_both_rails() {
        let mut cluster = Cluster::new(IPOIB_QDR, 1);
        let h = cluster.add_host();
        cluster.kill_host(h);
        assert!(cluster.eth().is_dead(cluster.eth_node(h)));
        assert!(cluster.ib().is_dead(cluster.ib_node(h)));
        cluster.revive_host(h);
        assert!(!cluster.ib().is_dead(cluster.ib_node(h)));
    }
}
