//! Network models for the four fabrics of the paper's testbed.
//!
//! Cluster A/B in the paper: MT26428 QDR ConnectX HCAs (32 Gbps signalling,
//! ~26 Gbps effective), NetEffect NE020 10GigE iWARP cards, plus onboard
//! 1GigE. Hadoop runs over TCP on 1GigE/10GigE/IPoIB, and RPCoIB runs over
//! native verbs on the same QDR HCA.
//!
//! Constants below are calibrated so the *baseline* microbenchmark curves
//! land in the neighbourhood of the paper's Figure 5 (default RPC 1-byte
//! ping-pong ≈ 70–80 µs over IPoIB/10GigE; RPCoIB ≈ half of that), while the
//! software costs on top (allocation, copies, thread handoffs) are real.
//! Absolute agreement with the 2013 testbed is explicitly not the goal —
//! EXPERIMENTS.md records shape comparisons.

/// Cost model for one simulated fabric + protocol stack combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Human-readable name used in benchmark output ("IPoIB (32Gbps)", ...).
    pub name: &'static str,
    /// One-way propagation + NIC + driver latency per message, nanoseconds.
    pub base_latency_ns: u64,
    /// Usable wire bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Per-operation protocol-stack overhead charged on each send
    /// (system-call + TCP/IP processing emulation), nanoseconds.
    /// Zero for verbs: the HCA is driven from user space.
    pub stack_overhead_ns: u64,
    /// Additional per-KB software cost on the send path (checksumming,
    /// skb handling), nanoseconds per 1024 bytes.
    pub per_kb_stack_ns: u64,
    /// Whether this model describes a verbs-capable path (no kernel copies,
    /// RDMA allowed). Socket streams refuse to run on verbs models and vice
    /// versa, to catch configuration mistakes early.
    pub rdma_capable: bool,
    /// One-time cost of registering memory with the HCA, nanoseconds per
    /// page (4 KiB) plus [`Self::reg_base_ns`]. Only meaningful for verbs.
    pub reg_ns_per_page: u64,
    /// Base cost of a memory registration, nanoseconds.
    pub reg_base_ns: u64,
}

impl NetworkModel {
    /// Wire serialization time for a message of `len` bytes, nanoseconds.
    #[inline]
    pub fn wire_ns(&self, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        (len as u128 * 1_000_000_000u128 / self.bandwidth_bps as u128) as u64
    }

    /// Sender-side protocol stack cost for a message of `len` bytes.
    #[inline]
    pub fn stack_ns(&self, len: usize) -> u64 {
        self.stack_overhead_ns + self.per_kb_stack_ns * (len as u64).div_ceil(1024)
    }

    /// Cost of registering a buffer of `len` bytes with the HCA.
    #[inline]
    pub fn registration_ns(&self, len: usize) -> u64 {
        self.reg_base_ns + self.reg_ns_per_page * (len as u64).div_ceil(4096)
    }
}

/// Gigabit Ethernet with the kernel TCP/IP stack — the "slow network" where
/// the paper's bottlenecks are invisible because the wire dominates.
pub const GIG_E: NetworkModel = NetworkModel {
    name: "1GigE",
    base_latency_ns: 35_000,
    bandwidth_bps: 117_000_000, // ~0.94 Gbps effective
    stack_overhead_ns: 8_000,
    per_kb_stack_ns: 400,
    rdma_capable: false,
    reg_ns_per_page: 0,
    reg_base_ns: 0,
};

/// 10-Gigabit Ethernet (NetEffect NE020) with the kernel TCP stack.
pub const TEN_GIG_E: NetworkModel = NetworkModel {
    name: "10GigE",
    base_latency_ns: 16_000,
    bandwidth_bps: 1_170_000_000, // ~9.4 Gbps effective
    stack_overhead_ns: 8_000,
    per_kb_stack_ns: 350,
    rdma_capable: false,
    reg_ns_per_page: 0,
    reg_base_ns: 0,
};

/// TCP/IP emulation over the QDR HCA (IPoIB, 32 Gbps signalling). Lower
/// latency and higher bandwidth than 10GigE, but the same kernel stack costs
/// — exactly the regime where the paper shows buffer management dominating.
pub const IPOIB_QDR: NetworkModel = NetworkModel {
    name: "IPoIB (32Gbps)",
    base_latency_ns: 14_000,
    bandwidth_bps: 2_400_000_000, // IPoIB reaches well below wire speed
    stack_overhead_ns: 8_000,
    per_kb_stack_ns: 300,
    rdma_capable: false,
    reg_ns_per_page: 0,
    reg_base_ns: 0,
};

/// Native verbs over the QDR HCA: user-space driven, no kernel copies,
/// microsecond-scale latency, near-wire bandwidth.
pub const IB_QDR_VERBS: NetworkModel = NetworkModel {
    name: "IB-QDR verbs (32Gbps)",
    base_latency_ns: 1_700,
    bandwidth_bps: 3_200_000_000, // ~26 Gbps effective QDR data rate
    stack_overhead_ns: 600,       // WQE posting + doorbell
    per_kb_stack_ns: 300,         // PCIe/DMA per-byte cost at the HCA
    rdma_capable: true,
    reg_ns_per_page: 2_000,
    reg_base_ns: 30_000,
};

/// All four paper fabrics, for sweep harnesses.
pub const ALL_MODELS: [NetworkModel; 4] = [GIG_E, TEN_GIG_E, IPOIB_QDR, IB_QDR_VERBS];

#[cfg(test)]
#[allow(clippy::assertions_on_constants, clippy::const_is_empty)]
mod tests {
    // The assertions below are consts on purpose: they pin the calibrated
    // model relationships so an edit to one preset cannot silently break
    // the fabric-class ordering the benchmarks depend on.
    use super::*;

    #[test]
    fn wire_time_scales_with_size_and_bandwidth() {
        assert_eq!(GIG_E.wire_ns(0), 0);
        // 117 MB/s => ~8.5ns per byte.
        let one_kb = GIG_E.wire_ns(1024);
        assert!((8_000..10_000).contains(&one_kb), "{one_kb}");
        // 10x bandwidth => ~10x less wire time.
        assert!(TEN_GIG_E.wire_ns(1024) * 9 < one_kb);
        // Monotone in size.
        assert!(IPOIB_QDR.wire_ns(4096) > IPOIB_QDR.wire_ns(1024));
    }

    #[test]
    fn verbs_is_the_only_rdma_capable_model() {
        assert!(IB_QDR_VERBS.rdma_capable);
        assert!(!GIG_E.rdma_capable && !TEN_GIG_E.rdma_capable && !IPOIB_QDR.rdma_capable);
    }

    #[test]
    fn stack_cost_is_per_operation_plus_per_kb() {
        let m = IPOIB_QDR;
        assert_eq!(m.stack_ns(1), m.stack_overhead_ns + m.per_kb_stack_ns);
        assert_eq!(
            m.stack_ns(2048),
            m.stack_overhead_ns + 2 * m.per_kb_stack_ns
        );
        // Verbs pays per-KB DMA cost but far less than the kernel stacks.
        assert!(IB_QDR_VERBS.per_kb_stack_ns < GIG_E.per_kb_stack_ns * 4);
        assert_eq!(
            IB_QDR_VERBS.stack_ns(2048),
            IB_QDR_VERBS.stack_overhead_ns + 2 * IB_QDR_VERBS.per_kb_stack_ns
        );
    }

    #[test]
    fn registration_cost_scales_with_pages() {
        let one_page = IB_QDR_VERBS.registration_ns(4096);
        let four_pages = IB_QDR_VERBS.registration_ns(4 * 4096);
        assert_eq!(four_pages - one_page, 3 * IB_QDR_VERBS.reg_ns_per_page);
        assert_eq!(GIG_E.registration_ns(1 << 20), 0);
    }

    #[test]
    fn latency_ordering_matches_fabric_classes() {
        assert!(IB_QDR_VERBS.base_latency_ns < IPOIB_QDR.base_latency_ns);
        assert!(IPOIB_QDR.base_latency_ns <= TEN_GIG_E.base_latency_ns);
        assert!(TEN_GIG_E.base_latency_ns < GIG_E.base_latency_ns);
    }
}
