//! The fabric: a registry of simulated nodes, their NIC link clocks, bound
//! listeners, and verbs objects (queue pairs, memory regions).
//!
//! A [`Fabric`] is cheap to clone (it is an `Arc` handle); every daemon of a
//! simulated cluster holds one. Nodes are purely logical — creating one
//! allocates a pair of link clocks that model its NIC's egress and ingress
//! bandwidth, so that concurrent flows through the same node contend the way
//! they would on real hardware.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};

use crate::model::NetworkModel;
use crate::stream::PendingConn;
use crate::verbs::{MrInner, QpMessage};

/// Identifier of a simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A (node, port) pair — the simulated equivalent of a socket address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimAddr {
    pub node: NodeId,
    pub port: u16,
}

impl SimAddr {
    pub const fn new(node: NodeId, port: u16) -> Self {
        SimAddr { node, port }
    }
}

impl std::fmt::Display for SimAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// A NIC direction's bandwidth clock. Transfers reserve contiguous windows
/// of link time; overlapping transfers queue behind each other, which is how
/// shared-NIC contention emerges without a global scheduler.
pub(crate) struct LinkClock {
    next_free: Mutex<Instant>,
}

impl LinkClock {
    fn new() -> Self {
        LinkClock { next_free: Mutex::new(Instant::now()) }
    }

    /// Reserve `dur` of link time starting no earlier than `earliest`.
    /// Returns the instant at which the reserved window ends.
    pub(crate) fn reserve_from(&self, earliest: Instant, dur: Duration) -> Instant {
        let mut next = self.next_free.lock();
        let start = if *next > earliest { *next } else { earliest };
        let end = start + dur;
        *next = end;
        end
    }
}

/// Per-node NIC state.
pub(crate) struct NodeLinks {
    pub(crate) egress: LinkClock,
    pub(crate) ingress: LinkClock,
}

/// Aggregate transfer counters, exposed for benchmark sanity checks.
#[derive(Debug, Default)]
pub struct FabricStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    pub rdma_writes: AtomicU64,
    pub registrations: AtomicU64,
}

impl FabricStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.rdma_writes.load(Ordering::Relaxed),
            self.registrations.load(Ordering::Relaxed),
        )
    }
}

pub(crate) struct FabricInner {
    pub(crate) model: NetworkModel,
    pub(crate) nodes: RwLock<HashMap<NodeId, Arc<NodeLinks>>>,
    pub(crate) dead: RwLock<HashSet<NodeId>>,
    /// Normalized (min, max) node pairs that cannot reach each other.
    pub(crate) partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    pub(crate) listeners: Mutex<HashMap<SimAddr, Sender<PendingConn>>>,
    pub(crate) qps: Mutex<HashMap<u64, Sender<QpMessage>>>,
    pub(crate) mrs: Mutex<HashMap<u64, Weak<MrInner>>>,
    next_node: AtomicU32,
    pub(crate) next_id: AtomicU64,
    pub(crate) stats: FabricStats,
}

/// Handle to a simulated fabric. Clones share the same underlying network.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Arc<FabricInner>,
}

impl Fabric {
    /// Create a fabric governed by the given cost model.
    pub fn new(model: NetworkModel) -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                model,
                nodes: RwLock::new(HashMap::new()),
                dead: RwLock::new(HashSet::new()),
                partitions: RwLock::new(HashSet::new()),
                listeners: Mutex::new(HashMap::new()),
                qps: Mutex::new(HashMap::new()),
                mrs: Mutex::new(HashMap::new()),
                next_node: AtomicU32::new(0),
                next_id: AtomicU64::new(1),
                stats: FabricStats::default(),
            }),
        }
    }

    /// The cost model this fabric runs under.
    pub fn model(&self) -> &NetworkModel {
        &self.inner.model
    }

    /// Allocate a new simulated node (with its own NIC link clocks).
    pub fn add_node(&self) -> NodeId {
        let id = NodeId(self.inner.next_node.fetch_add(1, Ordering::Relaxed));
        self.inner.nodes.write().insert(
            id,
            Arc::new(NodeLinks { egress: LinkClock::new(), ingress: LinkClock::new() }),
        );
        id
    }

    /// Allocate `n` nodes at once; convenience for cluster setup.
    pub fn add_nodes(&self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    pub(crate) fn links(&self, node: NodeId) -> Option<Arc<NodeLinks>> {
        self.inner.nodes.read().get(&node).cloned()
    }

    /// Mark a node as failed: its listeners stop accepting, in-flight and
    /// future transfers to or from it fail.
    pub fn kill_node(&self, node: NodeId) {
        self.inner.dead.write().insert(node);
        // Evict the dead node's listeners so connects fail fast.
        self.inner.listeners.lock().retain(|addr, _| addr.node != node);
    }

    /// Bring a previously killed node back (it must re-bind its listeners).
    pub fn revive_node(&self, node: NodeId) {
        self.inner.dead.write().remove(&node);
    }

    /// Whether the node is currently marked failed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.inner.dead.read().contains(&node)
    }

    /// Cut the link between two nodes (both directions). Established
    /// streams and queue pairs between them fail, as do new connects.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.inner.partitions.write().insert(pair_key(a, b));
    }

    /// Restore the link between two nodes.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.inner.partitions.write().remove(&pair_key(a, b));
    }

    /// Whether traffic between `a` and `b` is currently cut.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.inner.partitions.read().contains(&pair_key(a, b))
    }

    /// Whether `a` can currently reach `b` (both alive, link intact).
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        !self.is_dead(a) && !self.is_dead(b) && !self.is_partitioned(a, b)
    }

    /// Aggregate transfer counters.
    pub fn stats(&self) -> &FabricStats {
        &self.inner.stats
    }

    pub(crate) fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("model", &self.inner.model.name)
            .field("nodes", &self.inner.nodes.read().len())
            .finish()
    }
}

fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b { (a, b) } else { (b, a) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IPOIB_QDR;

    #[test]
    fn nodes_get_distinct_ids() {
        let f = Fabric::new(IPOIB_QDR);
        let a = f.add_node();
        let b = f.add_node();
        assert_ne!(a, b);
        assert!(f.links(a).is_some());
        assert!(f.links(NodeId(999)).is_none());
    }

    #[test]
    fn kill_and_revive() {
        let f = Fabric::new(IPOIB_QDR);
        let n = f.add_node();
        assert!(!f.is_dead(n));
        f.kill_node(n);
        assert!(f.is_dead(n));
        f.revive_node(n);
        assert!(!f.is_dead(n));
    }

    #[test]
    fn link_clock_serializes_overlapping_reservations() {
        let clock = LinkClock::new();
        let t0 = Instant::now();
        let d = Duration::from_millis(10);
        let end1 = clock.reserve_from(t0, d);
        let end2 = clock.reserve_from(t0, d);
        assert_eq!(end1, t0 + d);
        assert_eq!(end2, t0 + 2 * d, "second transfer must queue behind the first");
        // A reservation starting later than the clock's frontier begins at
        // its own earliest time.
        let late = t0 + Duration::from_secs(1);
        let end3 = clock.reserve_from(late, d);
        assert_eq!(end3, late + d);
    }

    #[test]
    fn partitions_are_symmetric_and_healable() {
        let f = Fabric::new(IPOIB_QDR);
        let a = f.add_node();
        let b = f.add_node();
        let c = f.add_node();
        assert!(f.reachable(a, b));
        f.partition(b, a); // either order
        assert!(f.is_partitioned(a, b));
        assert!(f.is_partitioned(b, a));
        assert!(!f.reachable(a, b));
        assert!(f.reachable(a, c), "unrelated links unaffected");
        f.heal(a, b);
        assert!(f.reachable(a, b));
    }

    #[test]
    fn clones_share_state() {
        let f = Fabric::new(IPOIB_QDR);
        let g = f.clone();
        let n = f.add_node();
        assert!(g.links(n).is_some());
    }
}
