//! The fabric: a registry of simulated nodes, their NIC link clocks, bound
//! listeners, and verbs objects (queue pairs, memory regions).
//!
//! A [`Fabric`] is cheap to clone (it is an `Arc` handle); every daemon of a
//! simulated cluster holds one. Nodes are purely logical — creating one
//! allocates a pair of link clocks that model its NIC's egress and ingress
//! bandwidth, so that concurrent flows through the same node contend the way
//! they would on real hardware.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};

use crate::faults::{next_unit, FaultSpec};
use crate::model::NetworkModel;
use crate::stream::PendingConn;
use crate::verbs::{MrInner, QpSlot};

/// An epoll-style readiness hook, shared between the producer and the
/// consumer of one delivery channel (a stream direction, a queue pair's
/// completion inbox). The consumer registers interest with [`WakeSlot::set`];
/// the producer calls [`WakeSlot::fire`] after making new input observable
/// (bytes sent, EOF, a completion posted). Firing is **charge-free**: it
/// never touches the modeled-time ledger, so readiness notification costs
/// nothing in simulated time — exactly the property that makes an idle
/// connection free for an event-driven receiver.
///
/// The hook runs on the producer's thread, outside the slot's own lock, so
/// it must be cheap and must not call back into the transport (the intended
/// use is "push a token onto a ready queue and notify").
/// The registered readiness callback: cheap, `Send + Sync`, shared with
/// every producer that can make the endpoint readable.
type WakeHook = Arc<dyn Fn() + Send + Sync>;

#[derive(Clone, Default)]
pub struct WakeSlot {
    hook: Arc<Mutex<Option<WakeHook>>>,
}

impl WakeSlot {
    pub fn new() -> Self {
        WakeSlot::default()
    }

    /// Register (or replace) the readiness hook.
    pub fn set(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.hook.lock() = Some(hook);
    }

    /// Drop the registered hook, if any.
    pub fn clear(&self) {
        self.hook.lock().take();
    }

    /// Invoke the registered hook, if any. The hook `Arc` is cloned out of
    /// the lock and called outside it, so a hook may itself call
    /// [`WakeSlot::set`]/[`WakeSlot::clear`] without deadlocking.
    pub fn fire(&self) {
        let hook = self.hook.lock().clone();
        if let Some(hook) = hook {
            hook();
        }
    }
}

impl std::fmt::Debug for WakeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WakeSlot(set={})", self.hook.lock().is_some())
    }
}

/// Identifier of a simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A (node, port) pair — the simulated equivalent of a socket address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimAddr {
    pub node: NodeId,
    pub port: u16,
}

impl SimAddr {
    pub const fn new(node: NodeId, port: u16) -> Self {
        SimAddr { node, port }
    }
}

impl std::fmt::Display for SimAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// A NIC direction's bandwidth clock. Transfers reserve contiguous windows
/// of link time; overlapping transfers queue behind each other, which is how
/// shared-NIC contention emerges without a global scheduler.
pub(crate) struct LinkClock {
    next_free: Mutex<Instant>,
}

impl LinkClock {
    fn new() -> Self {
        LinkClock {
            next_free: Mutex::new(Instant::now()),
        }
    }

    /// Reserve `dur` of link time starting no earlier than `earliest`.
    /// Returns the instant at which the reserved window ends.
    pub(crate) fn reserve_from(&self, earliest: Instant, dur: Duration) -> Instant {
        let mut next = self.next_free.lock();
        let start = if *next > earliest { *next } else { earliest };
        let end = start + dur;
        *next = end;
        end
    }
}

/// Per-node NIC state.
pub(crate) struct NodeLinks {
    pub(crate) egress: LinkClock,
    pub(crate) ingress: LinkClock,
    /// Modeled nanoseconds charged to this node by the cost model (stack
    /// traversals, wire occupancy, propagation, registration, injected
    /// fault delay). Unlike wall-clock measurements these are a pure
    /// function of the traffic and the fault-RNG seed, so benchmark
    /// artifacts built from them replay byte-identically.
    pub(crate) modeled_ns: AtomicU64,
}

/// Aggregate transfer counters, exposed for benchmark sanity checks.
#[derive(Debug, Default)]
pub struct FabricStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    pub rdma_writes: AtomicU64,
    pub registrations: AtomicU64,
    /// Total modeled nanoseconds charged across all nodes. See
    /// [`Fabric::modeled_ns`].
    pub modeled_ns: AtomicU64,
}

impl FabricStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.rdma_writes.load(Ordering::Relaxed),
            self.registrations.load(Ordering::Relaxed),
        )
    }
}

pub(crate) struct FabricInner {
    pub(crate) model: NetworkModel,
    pub(crate) nodes: RwLock<HashMap<NodeId, Arc<NodeLinks>>>,
    pub(crate) dead: RwLock<HashSet<NodeId>>,
    /// Normalized (min, max) node pairs that cannot reach each other.
    pub(crate) partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    /// Impairments per normalized node pair. `faults_active` mirrors
    /// whether this map is non-empty so the data path can skip the lock.
    pub(crate) link_faults: RwLock<HashMap<(NodeId, NodeId), FaultSpec>>,
    pub(crate) faults_active: AtomicBool,
    /// Remaining injected connect refusals per listening address.
    pub(crate) connect_failures: Mutex<HashMap<SimAddr, u32>>,
    /// Remaining injected accept drops per listening address.
    pub(crate) accept_failures: Mutex<HashMap<SimAddr, u32>>,
    /// State of the deterministic fault RNG (drop coins, jitter samples).
    pub(crate) fault_rng: Mutex<u64>,
    pub(crate) listeners: Mutex<HashMap<SimAddr, Sender<PendingConn>>>,
    /// Each queue pair's completion inbox plus the wake slot its receiver
    /// may have armed; senders fire the slot after posting a completion.
    pub(crate) qps: Mutex<HashMap<u64, QpSlot>>,
    pub(crate) mrs: Mutex<HashMap<u64, Weak<MrInner>>>,
    next_node: AtomicU32,
    pub(crate) next_id: AtomicU64,
    pub(crate) stats: FabricStats,
}

/// Handle to a simulated fabric. Clones share the same underlying network.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Arc<FabricInner>,
}

impl Fabric {
    /// Create a fabric governed by the given cost model.
    pub fn new(model: NetworkModel) -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                model,
                nodes: RwLock::new(HashMap::new()),
                dead: RwLock::new(HashSet::new()),
                partitions: RwLock::new(HashSet::new()),
                link_faults: RwLock::new(HashMap::new()),
                faults_active: AtomicBool::new(false),
                connect_failures: Mutex::new(HashMap::new()),
                accept_failures: Mutex::new(HashMap::new()),
                fault_rng: Mutex::new(0x9e37_79b9_7f4a_7c15),
                listeners: Mutex::new(HashMap::new()),
                qps: Mutex::new(HashMap::new()),
                mrs: Mutex::new(HashMap::new()),
                next_node: AtomicU32::new(0),
                next_id: AtomicU64::new(1),
                stats: FabricStats::default(),
            }),
        }
    }

    /// The cost model this fabric runs under.
    pub fn model(&self) -> &NetworkModel {
        &self.inner.model
    }

    /// Allocate a new simulated node (with its own NIC link clocks).
    pub fn add_node(&self) -> NodeId {
        let id = NodeId(self.inner.next_node.fetch_add(1, Ordering::Relaxed));
        self.inner.nodes.write().insert(
            id,
            Arc::new(NodeLinks {
                egress: LinkClock::new(),
                ingress: LinkClock::new(),
                modeled_ns: AtomicU64::new(0),
            }),
        );
        id
    }

    /// Allocate `n` nodes at once; convenience for cluster setup.
    pub fn add_nodes(&self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    pub(crate) fn links(&self, node: NodeId) -> Option<Arc<NodeLinks>> {
        self.inner.nodes.read().get(&node).cloned()
    }

    /// Mark a node as failed: its listeners stop accepting, in-flight and
    /// future transfers to or from it fail.
    pub fn kill_node(&self, node: NodeId) {
        self.inner.dead.write().insert(node);
        // Evict the dead node's listeners so connects fail fast.
        self.inner
            .listeners
            .lock()
            .retain(|addr, _| addr.node != node);
    }

    /// Bring a previously killed node back (it must re-bind its listeners).
    pub fn revive_node(&self, node: NodeId) {
        self.inner.dead.write().remove(&node);
    }

    /// Whether the node is currently marked failed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.inner.dead.read().contains(&node)
    }

    /// Cut the link between two nodes (both directions). Established
    /// streams and queue pairs between them fail, as do new connects.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.inner.partitions.write().insert(pair_key(a, b));
    }

    /// Restore the link between two nodes.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.inner.partitions.write().remove(&pair_key(a, b));
    }

    /// Whether traffic between `a` and `b` is currently cut.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.inner.partitions.read().contains(&pair_key(a, b))
    }

    /// Whether `a` can currently reach `b` (both alive, link intact).
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        !self.is_dead(a) && !self.is_dead(b) && !self.is_partitioned(a, b)
    }

    /// Attach an impairment spec (extra delay, jitter, drop rate) to the
    /// link between `a` and `b`, both directions. Replaces any previous
    /// spec on that pair.
    pub fn set_link_fault(&self, a: NodeId, b: NodeId, spec: FaultSpec) {
        self.inner.link_faults.write().insert(pair_key(a, b), spec);
        self.inner.faults_active.store(true, Ordering::Release);
    }

    /// Remove the impairment spec on the `a`–`b` link, if any.
    pub fn clear_link_fault(&self, a: NodeId, b: NodeId) {
        let mut faults = self.inner.link_faults.write();
        faults.remove(&pair_key(a, b));
        self.inner
            .faults_active
            .store(!faults.is_empty(), Ordering::Release);
    }

    /// The impairment spec currently attached to the `a`–`b` link.
    pub fn link_fault(&self, a: NodeId, b: NodeId) -> Option<FaultSpec> {
        if !self.inner.faults_active.load(Ordering::Acquire) {
            return None;
        }
        self.inner.link_faults.read().get(&pair_key(a, b)).copied()
    }

    /// Seed the deterministic RNG behind drop coins and jitter samples, so
    /// a probabilistic fault schedule replays exactly. Seed 0 is remapped
    /// (xorshift state must be non-zero).
    pub fn set_fault_seed(&self, seed: u64) {
        *self.inner.fault_rng.lock() = if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        };
    }

    /// Refuse the next `n` connection attempts to `addr` (the connector
    /// sees `ConnectionRefused` before any handshake traffic flows).
    /// Cumulative with previously injected refusals.
    pub fn fail_next_connects(&self, addr: SimAddr, n: u32) {
        *self.inner.connect_failures.lock().entry(addr).or_insert(0) += n;
    }

    /// Drop the next `n` connections accepted at `addr` *after* the
    /// connector's handshake succeeds — the peer only discovers the
    /// failure when its first I/O on the new connection dies, which is
    /// exactly the mid-handshake window RDMA endpoint exchanges sit in.
    /// Cumulative with previously injected drops.
    pub fn fail_next_accepts(&self, addr: SimAddr, n: u32) {
        *self.inner.accept_failures.lock().entry(addr).or_insert(0) += n;
    }

    /// Injected connect refusals not yet consumed for `addr`.
    pub fn pending_connect_failures(&self, addr: SimAddr) -> u32 {
        self.inner
            .connect_failures
            .lock()
            .get(&addr)
            .copied()
            .unwrap_or(0)
    }

    /// Injected accept drops not yet consumed for `addr`.
    pub fn pending_accept_failures(&self, addr: SimAddr) -> u32 {
        self.inner
            .accept_failures
            .lock()
            .get(&addr)
            .copied()
            .unwrap_or(0)
    }

    /// Consume one injected connect refusal for `addr`, if any remain.
    pub(crate) fn take_connect_failure(&self, addr: SimAddr) -> bool {
        take_failure(&mut self.inner.connect_failures.lock(), addr)
    }

    /// Consume one injected accept drop for `addr`, if any remain.
    pub(crate) fn take_accept_failure(&self, addr: SimAddr) -> bool {
        take_failure(&mut self.inner.accept_failures.lock(), addr)
    }

    /// Whether a message crossing the `a`–`b` link right now is dropped.
    pub(crate) fn fault_drops(&self, a: NodeId, b: NodeId) -> bool {
        match self.link_fault(a, b) {
            Some(f) if f.drop_rate > 0.0 => {
                next_unit(&mut self.inner.fault_rng.lock()) < f.drop_rate
            }
            _ => false,
        }
    }

    /// Sampled extra one-way latency for a message on the `a`–`b` link.
    pub(crate) fn fault_delay(&self, a: NodeId, b: NodeId) -> Duration {
        match self.link_fault(a, b) {
            Some(f) if f.delays() => {
                let jitter = if f.jitter.is_zero() {
                    Duration::ZERO
                } else {
                    f.jitter
                        .mul_f64(next_unit(&mut self.inner.fault_rng.lock()))
                };
                f.extra_delay + jitter
            }
            _ => Duration::ZERO,
        }
    }

    /// Aggregate transfer counters.
    pub fn stats(&self) -> &FabricStats {
        &self.inner.stats
    }

    /// Charge `ns` of modeled time against `node`'s ledger. Called from
    /// every site that injects a cost-model delay (stream writes/reads,
    /// verbs sends/receives, registration, connect setup) with the
    /// *intended* duration, right where the real delay is spun out.
    pub(crate) fn charge_modeled(&self, node: NodeId, ns: u64) {
        if ns == 0 {
            return;
        }
        if let Some(links) = self.links(node) {
            links.modeled_ns.fetch_add(ns, Ordering::Relaxed);
        }
        self.inner.stats.modeled_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Charge `ns` of modeled *host-side* time against `node`'s ledger.
    /// The fabric charges network costs itself; upper layers use this to
    /// account software costs their cost models own (e.g. the RPC
    /// engine's legacy metadata-churn charge), so figure harnesses that
    /// read ledger deltas see them alongside the network time.
    pub fn charge_host_ns(&self, node: NodeId, ns: u64) {
        self.charge_modeled(node, ns);
    }

    /// Modeled nanoseconds charged to `node` so far. Deterministic for a
    /// given traffic pattern and fault seed: the ledger accumulates the
    /// durations the cost model *intended*, not the wall time the busy-wait
    /// implementation happened to burn. The bench harness reads deltas of
    /// this ledger so its `BENCH_*.json` artifacts replay byte-identically.
    pub fn modeled_ns(&self, node: NodeId) -> u64 {
        self.links(node)
            .map(|l| l.modeled_ns.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total modeled nanoseconds charged across all nodes.
    pub fn modeled_total_ns(&self) -> u64 {
        self.inner.stats.modeled_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("model", &self.inner.model.name)
            .field("nodes", &self.inner.nodes.read().len())
            .finish()
    }
}

fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn take_failure(map: &mut HashMap<SimAddr, u32>, addr: SimAddr) -> bool {
    match map.get_mut(&addr) {
        Some(n) if *n > 0 => {
            *n -= 1;
            if *n == 0 {
                map.remove(&addr);
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IPOIB_QDR;

    #[test]
    fn nodes_get_distinct_ids() {
        let f = Fabric::new(IPOIB_QDR);
        let a = f.add_node();
        let b = f.add_node();
        assert_ne!(a, b);
        assert!(f.links(a).is_some());
        assert!(f.links(NodeId(999)).is_none());
    }

    #[test]
    fn kill_and_revive() {
        let f = Fabric::new(IPOIB_QDR);
        let n = f.add_node();
        assert!(!f.is_dead(n));
        f.kill_node(n);
        assert!(f.is_dead(n));
        f.revive_node(n);
        assert!(!f.is_dead(n));
    }

    #[test]
    fn link_clock_serializes_overlapping_reservations() {
        let clock = LinkClock::new();
        let t0 = Instant::now();
        let d = Duration::from_millis(10);
        let end1 = clock.reserve_from(t0, d);
        let end2 = clock.reserve_from(t0, d);
        assert_eq!(end1, t0 + d);
        assert_eq!(
            end2,
            t0 + 2 * d,
            "second transfer must queue behind the first"
        );
        // A reservation starting later than the clock's frontier begins at
        // its own earliest time.
        let late = t0 + Duration::from_secs(1);
        let end3 = clock.reserve_from(late, d);
        assert_eq!(end3, late + d);
    }

    #[test]
    fn partitions_are_symmetric_and_healable() {
        let f = Fabric::new(IPOIB_QDR);
        let a = f.add_node();
        let b = f.add_node();
        let c = f.add_node();
        assert!(f.reachable(a, b));
        f.partition(b, a); // either order
        assert!(f.is_partitioned(a, b));
        assert!(f.is_partitioned(b, a));
        assert!(!f.reachable(a, b));
        assert!(f.reachable(a, c), "unrelated links unaffected");
        f.heal(a, b);
        assert!(f.reachable(a, b));
    }

    #[test]
    fn link_faults_are_symmetric_and_clearable() {
        let f = Fabric::new(IPOIB_QDR);
        let a = f.add_node();
        let b = f.add_node();
        let c = f.add_node();
        assert!(f.link_fault(a, b).is_none());
        f.set_link_fault(b, a, FaultSpec::delay(Duration::from_millis(3)));
        assert_eq!(
            f.link_fault(a, b).unwrap().extra_delay,
            Duration::from_millis(3)
        );
        assert!(f.link_fault(a, c).is_none(), "unrelated links unaffected");
        assert!(f.fault_delay(a, b) >= Duration::from_millis(3));
        assert_eq!(f.fault_delay(a, c), Duration::ZERO);
        f.clear_link_fault(a, b);
        assert!(f.link_fault(a, b).is_none());
        assert!(!f.inner.faults_active.load(Ordering::Acquire));
    }

    #[test]
    fn drop_coin_respects_rate_extremes() {
        let f = Fabric::new(IPOIB_QDR);
        let a = f.add_node();
        let b = f.add_node();
        f.set_link_fault(a, b, FaultSpec::drop_all());
        assert!((0..100).all(|_| f.fault_drops(a, b)));
        f.set_link_fault(a, b, FaultSpec::lossy(0.0));
        assert!((0..100).all(|_| !f.fault_drops(a, b)));
    }

    #[test]
    fn injected_failures_are_counted_down() {
        let f = Fabric::new(IPOIB_QDR);
        let addr = SimAddr::new(f.add_node(), 80);
        f.fail_next_accepts(addr, 2);
        f.fail_next_accepts(addr, 1);
        assert_eq!(f.pending_accept_failures(addr), 3);
        assert!(f.take_accept_failure(addr));
        assert!(f.take_accept_failure(addr));
        assert!(f.take_accept_failure(addr));
        assert!(
            !f.take_accept_failure(addr),
            "injected budget must be finite"
        );
        f.fail_next_connects(addr, 1);
        assert!(f.take_connect_failure(addr));
        assert!(!f.take_connect_failure(addr));
    }

    #[test]
    fn clones_share_state() {
        let f = Fabric::new(IPOIB_QDR);
        let g = f.clone();
        let n = f.add_node();
        assert!(g.links(n).is_some());
    }
}
