//! Property tests: the simulated fabric must behave like a reliable,
//! ordered byte pipe regardless of how writes and reads are chunked.

use std::io::{Read, Write};
use std::thread;

use proptest::prelude::*;
use simnet::{model, Fabric, SimAddr, SimListener, SimStream};

/// Use a free model (zero-delay-ish is not available; 10GigE keeps wire
/// delays tiny for the sizes proptest generates).
fn pair() -> (SimStream, SimStream) {
    let fabric = Fabric::new(model::TEN_GIG_E);
    let server = fabric.add_node();
    let client = fabric.add_node();
    let addr = SimAddr::new(server, 9000);
    let listener = SimListener::bind(&fabric, addr).unwrap();
    let f2 = fabric.clone();
    let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
    let (srv, _) = listener.accept().unwrap();
    let cli = h.join().unwrap();
    (cli, srv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary data split into arbitrary write chunks must be read back
    /// intact through arbitrary read chunk sizes.
    #[test]
    fn chunked_writes_arrive_in_order(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        write_chunk in 1usize..512,
        read_chunk in 1usize..512,
    ) {
        let (mut cli, mut srv) = pair();
        let expected = data.clone();
        let writer = thread::spawn(move || {
            for chunk in data.chunks(write_chunk) {
                cli.write_all(chunk).unwrap();
            }
            // Dropping cli closes the write half -> EOF at the server.
        });
        let mut got = Vec::with_capacity(expected.len());
        let mut buf = vec![0u8; read_chunk];
        loop {
            let n = srv.read(&mut buf).unwrap();
            if n == 0 { break; }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        prop_assert_eq!(got, expected);
    }

    /// Both directions of one stream carry independent payloads.
    #[test]
    fn full_duplex_does_not_crosstalk(
        a in proptest::collection::vec(any::<u8>(), 1..1024),
        b in proptest::collection::vec(any::<u8>(), 1..1024),
    ) {
        let (mut cli, mut srv) = pair();
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let mut got = vec![0u8; a2.len()];
            srv.read_exact(&mut got).unwrap();
            srv.write_all(&b2).unwrap();
            got
        });
        cli.write_all(&a).unwrap();
        let mut got_b = vec![0u8; b.len()];
        cli.read_exact(&mut got_b).unwrap();
        let got_a = t.join().unwrap();
        prop_assert_eq!(got_a, a);
        prop_assert_eq!(got_b, b);
    }
}
