//! Fault-injection behavior: per-link impairments, injected connect and
//! accept failures, on both the stream and verbs substrates.

use std::io::{Read, Write};
use std::thread;
use std::time::{Duration, Instant};

use simnet::{model, Fabric, FaultSpec, RdmaDevice, SimAddr, SimListener, SimStream, VerbsError};

fn stream_pair(fabric: &Fabric) -> (SimStream, SimStream) {
    let server = fabric.add_node();
    let client = fabric.add_node();
    let addr = SimAddr::new(server, 9000);
    let listener = SimListener::bind(fabric, addr).unwrap();
    let f2 = fabric.clone();
    let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
    let (srv, _) = listener.accept().unwrap();
    let cli = h.join().unwrap();
    (cli, srv)
}

#[test]
fn link_delay_slows_stream_delivery() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let (cli, mut srv) = stream_pair(&fabric);
    let (a, b) = (cli.local_addr().node, cli.peer_addr().node);

    // Baseline ping is far under a millisecond on this model.
    fabric.set_link_fault(a, b, FaultSpec::delay(Duration::from_millis(5)));
    let start = Instant::now();
    (&cli).write_all(b"x").unwrap();
    let mut buf = [0u8; 1];
    srv.read_exact(&mut buf).unwrap();
    assert!(
        start.elapsed() >= Duration::from_millis(5),
        "injected delay not observed: {:?}",
        start.elapsed()
    );

    // Clearing the fault restores baseline latency.
    fabric.clear_link_fault(a, b);
    let start = Instant::now();
    (&cli).write_all(b"y").unwrap();
    srv.read_exact(&mut buf).unwrap();
    assert!(start.elapsed() < Duration::from_millis(5));
}

#[test]
fn jitter_stays_within_bounds() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    fabric.set_fault_seed(42);
    let (cli, mut srv) = stream_pair(&fabric);
    let (a, b) = (cli.local_addr().node, cli.peer_addr().node);
    fabric.set_link_fault(
        a,
        b,
        FaultSpec::delay(Duration::from_millis(2)).with_jitter(Duration::from_millis(4)),
    );
    let mut buf = [0u8; 1];
    for _ in 0..5 {
        let start = Instant::now();
        (&cli).write_all(b"j").unwrap();
        srv.read_exact(&mut buf).unwrap();
        let rtt = start.elapsed();
        assert!(
            rtt >= Duration::from_millis(2),
            "below delay floor: {rtt:?}"
        );
        assert!(
            rtt < Duration::from_millis(20),
            "beyond delay + jitter: {rtt:?}"
        );
    }
}

#[test]
fn stream_drop_surfaces_as_broken_pipe() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let (cli, _srv) = stream_pair(&fabric);
    let (a, b) = (cli.local_addr().node, cli.peer_addr().node);
    fabric.set_link_fault(a, b, FaultSpec::drop_all());
    let err = (&cli).write_all(b"lost").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
}

#[test]
fn verbs_drop_is_silent_loss() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let a = fabric.add_node();
    let b = fabric.add_node();
    let dev_a = RdmaDevice::open(&fabric, a).unwrap();
    let dev_b = RdmaDevice::open(&fabric, b).unwrap();
    let qa = dev_a.create_qp();
    let qb = dev_b.create_qp();
    qa.connect(qb.endpoint());
    qb.connect(qa.endpoint());
    let src = dev_a.register(64);
    let dst = dev_b.register(64);
    qb.post_recv(1, dst.clone());

    fabric.set_link_fault(a, b, FaultSpec::drop_all());
    // The post itself succeeds — the wire ate the message.
    qa.post_send(&src, 0, 8, 0).unwrap();
    assert_eq!(
        qb.poll_recv(Duration::from_millis(50)).unwrap_err(),
        VerbsError::Timeout
    );
    assert_eq!(
        qb.posted_recvs(),
        1,
        "lost send must not consume the posted recv"
    );

    // RDMA writes are likewise lost without landing remotely.
    src.write_at(0, b"payload!").unwrap();
    qa.rdma_write(&src, 0, 8, dst.remote_key(), 0, Some(9))
        .unwrap();
    let mut out = [0u8; 8];
    dst.read_at(0, &mut out).unwrap();
    assert_eq!(
        out, [0u8; 8],
        "dropped write must not mutate the remote region"
    );

    // Healing the link restores delivery.
    fabric.clear_link_fault(a, b);
    qa.post_send(&src, 0, 8, 5).unwrap();
    let c = qb.poll_recv(Duration::from_secs(1)).unwrap();
    assert_eq!(c.imm, 5);
}

#[test]
fn injected_connect_failures_refuse_then_recover() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server = fabric.add_node();
    let client = fabric.add_node();
    let addr = SimAddr::new(server, 7000);
    let _listener = SimListener::bind(&fabric, addr).unwrap();

    fabric.fail_next_connects(addr, 2);
    for _ in 0..2 {
        let err = SimStream::connect(&fabric, client, addr).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }
    assert_eq!(fabric.pending_connect_failures(addr), 0);
    // Budget exhausted: the next connect goes through.
    SimStream::connect(&fabric, client, addr).unwrap();
}

#[test]
fn injected_accept_failure_drops_connection_mid_handshake() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server = fabric.add_node();
    let client = fabric.add_node();
    let addr = SimAddr::new(server, 7001);
    let listener = SimListener::bind(&fabric, addr).unwrap();

    fabric.fail_next_accepts(addr, 1);
    // The connect itself succeeds — the failure is on the acceptor side.
    let doomed = SimStream::connect(&fabric, client, addr).unwrap();
    assert!(
        listener.try_accept().unwrap().is_none(),
        "first accept is swallowed"
    );
    // The abandoned peer discovers the breakage on its first I/O.
    let err = (&doomed).write_all(b"hello?").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);

    // The next connection is accepted normally.
    let f2 = fabric.clone();
    let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
    let (mut srv, _) = listener.accept().unwrap();
    let cli = h.join().unwrap();
    (&cli).write_all(b"ok").unwrap();
    let mut buf = [0u8; 2];
    srv.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"ok");
}

#[test]
fn seeded_drop_schedule_replays_exactly() {
    let observe = |seed: u64| -> Vec<bool> {
        let fabric = Fabric::new(model::IPOIB_QDR);
        fabric.set_fault_seed(seed);
        let a = fabric.add_node();
        let b = fabric.add_node();
        fabric.set_link_fault(a, b, FaultSpec::lossy(0.5));
        let addr = SimAddr::new(b, 7002);
        let _listener = SimListener::bind(&fabric, addr).unwrap();
        let cli = SimStream::connect(&fabric, a, addr).unwrap();
        (0..32).map(|_| (&cli).write_all(&[0]).is_err()).collect()
    };
    let run1 = observe(7);
    let run2 = observe(7);
    assert_eq!(run1, run2, "same seed must replay the same loss pattern");
    assert!(
        run1.iter().any(|&d| d),
        "p=0.5 over 32 trials should drop something"
    );
    assert!(
        run1.iter().any(|&d| !d),
        "p=0.5 over 32 trials should deliver something"
    );
}
