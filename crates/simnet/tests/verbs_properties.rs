//! Property tests: verbs messaging must deliver bytes exactly, in order,
//! for arbitrary message sizes and batching patterns.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use simnet::{model, CompletionKind, Fabric, RdmaDevice};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A batch of sends of arbitrary sizes arrives intact and in order
    /// through a pre-posted receive ring.
    #[test]
    fn send_recv_preserves_bytes_and_order(
        sizes in proptest::collection::vec(1usize..8192, 1..24),
        seed in any::<u64>(),
    ) {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let a = fabric.add_node();
        let b = fabric.add_node();
        let dev_a = RdmaDevice::open(&fabric, a).unwrap();
        let dev_b = RdmaDevice::open(&fabric, b).unwrap();
        let qa = dev_a.create_qp();
        let qb = Arc::new(dev_b.create_qp());
        qa.connect(qb.endpoint());
        qb.connect(qa.endpoint());

        // Pre-post one right-sized buffer per message.
        let rings: Vec<_> = sizes.iter().map(|s| dev_b.register(*s)).collect();
        for (i, mr) in rings.iter().enumerate() {
            qb.post_recv(i as u64, mr.clone());
        }

        // Deterministic per-message payloads.
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (0..*s).map(|j| (seed ^ (i as u64 * 131) ^ (j as u64)) as u8).collect()
            })
            .collect();
        let src = dev_a.register(8192);
        for (i, payload) in payloads.iter().enumerate() {
            src.write_at(0, payload).unwrap();
            qa.post_send(&src, 0, payload.len(), i as u32).unwrap();
        }

        for (i, payload) in payloads.iter().enumerate() {
            let c = qb.poll_recv(Duration::from_secs(5)).unwrap();
            prop_assert_eq!(c.kind, CompletionKind::Recv);
            prop_assert_eq!(c.wr_id, i as u64, "receive ring consumed out of order");
            prop_assert_eq!(c.imm, i as u32, "messages reordered");
            prop_assert_eq!(c.len, payload.len());
            let mut got = vec![0u8; payload.len()];
            rings[i].read_at(0, &mut got).unwrap();
            prop_assert_eq!(&got, payload);
        }
    }

    /// RDMA writes at arbitrary offsets place exactly the written range.
    #[test]
    fn rdma_write_is_byte_exact(
        len in 1usize..4096,
        local_off in 0usize..128,
        remote_off in 0usize..128,
    ) {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let a = fabric.add_node();
        let b = fabric.add_node();
        let dev_a = RdmaDevice::open(&fabric, a).unwrap();
        let dev_b = RdmaDevice::open(&fabric, b).unwrap();
        let qa = dev_a.create_qp();
        let qb = dev_b.create_qp();
        qa.connect(qb.endpoint());
        qb.connect(qa.endpoint());

        let src = dev_a.register(local_off + len);
        let dst = dev_b.register(remote_off + len + 64);
        // Canary-fill the destination to detect overwrites outside the range.
        dst.with_mut(|buf| buf.fill(0xEE));
        let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
        src.write_at(local_off, &payload).unwrap();
        qa.rdma_write(&src, local_off, len, dst.remote_key(), remote_off, None).unwrap();

        dst.with(|buf| {
            assert!(buf[..remote_off].iter().all(|&b| b == 0xEE), "prefix clobbered");
            assert_eq!(&buf[remote_off..remote_off + len], payload.as_slice());
            assert!(buf[remote_off + len..].iter().all(|&b| b == 0xEE), "suffix clobbered");
        });
    }
}
