//! Property tests for the wire format and the Algorithm-1 buffer.

use proptest::prelude::*;
use wire::buffer::INITIAL_CAPACITY;
use wire::varint::{read_vlong, vlong_size, write_vlong};
use wire::{from_bytes, to_bytes, BytesWritable, DataOutputBuffer, Text, VLongWritable};

proptest! {
    /// u64 fixed-width values (frame-v2 client ids) roundtrip and always
    /// occupy exactly 8 big-endian bytes.
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        use wire::{DataInput, DataOutput};
        let mut buf = Vec::new();
        buf.write_u64(v).unwrap();
        prop_assert_eq!(buf.len(), 8);
        let mut cursor = buf.as_slice();
        prop_assert_eq!(cursor.read_u64().unwrap(), v);
    }

    /// Every i64 survives the Hadoop vint codec, and the size function
    /// agrees with the encoder.
    #[test]
    fn vlong_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        write_vlong(&mut buf, v).unwrap();
        prop_assert_eq!(buf.len(), vlong_size(v));
        prop_assert!(buf.len() <= 9);
        prop_assert_eq!(read_vlong(&mut buf.as_slice()).unwrap(), v);
    }

    /// Encoded vints are prefix-free: decoding consumes exactly the bytes
    /// the encoder produced, so values can be concatenated.
    #[test]
    fn vlong_concatenation(vs in proptest::collection::vec(any::<i64>(), 1..20)) {
        let mut buf = Vec::new();
        for &v in &vs {
            write_vlong(&mut buf, v).unwrap();
        }
        let mut cursor = buf.as_slice();
        for &v in &vs {
            prop_assert_eq!(read_vlong(&mut cursor).unwrap(), v);
        }
        prop_assert!(cursor.is_empty());
    }

    /// Algorithm 1 never loses data and always keeps count <= capacity.
    #[test]
    fn algorithm1_preserves_all_bytes(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 0..50))
    {
        let mut buf = DataOutputBuffer::new();
        let mut expected = Vec::new();
        for chunk in &chunks {
            buf.append(chunk);
            expected.extend_from_slice(chunk);
            prop_assert!(buf.len() <= buf.capacity());
        }
        prop_assert_eq!(buf.data(), expected.as_slice());
        // Growth is geometric-ish: adjustments are bounded by
        // log2(total/32) + 1 when every write fits after one doubling...
        // except jumbo single writes, which adjust at most once each.
        let bound = (expected.len().max(INITIAL_CAPACITY) / INITIAL_CAPACITY)
            .next_power_of_two().trailing_zeros() as u64 + chunks.len() as u64;
        prop_assert!(buf.adjustments() <= bound);
    }

    /// Text and BytesWritable roundtrip arbitrary content.
    #[test]
    fn text_roundtrip(s in "\\PC*") {
        let bytes = to_bytes(&Text(s.clone())).unwrap();
        let back: Text = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.0, s);
    }

    #[test]
    fn bytes_writable_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let bytes = to_bytes(&BytesWritable(data.clone())).unwrap();
        prop_assert_eq!(bytes.len(), 4 + data.len());
        let back: BytesWritable = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.0, data);
    }

    /// Vec<VLongWritable> roundtrips (vint count + elements).
    #[test]
    fn vec_roundtrip(vs in proptest::collection::vec(any::<i64>(), 0..64)) {
        let w: Vec<VLongWritable> = vs.iter().map(|&v| VLongWritable(v)).collect();
        let bytes = to_bytes(&w).unwrap();
        let back: Vec<VLongWritable> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, w);
    }
}
