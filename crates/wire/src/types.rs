//! The `Writable` trait and the standard Hadoop wrapper types.
//!
//! Wire formats match `org.apache.hadoop.io.*`: fixed-width primitives are
//! big-endian, `Text` is vint-length-prefixed UTF-8, `BytesWritable` is a
//! 4-byte length plus raw bytes, and the `V*Writable` wrappers use the
//! Hadoop vint codec.

use std::io;

use crate::io::{DataInput, DataOutput};

/// A value that serializes itself Hadoop-style: `write` emits fields in
/// order, `read_fields` fills a default-constructed instance back in.
pub trait Writable {
    /// Serialize all fields to `out`.
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()>;
    /// Replace `self`'s fields with deserialized values from `input`.
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()>;
}

macro_rules! wrapper_writable {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $write:ident, $read:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        pub struct $name(pub $ty);

        impl Writable for $name {
            fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
                out.$write(self.0)
            }
            fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
                self.0 = input.$read()?;
                Ok(())
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                $name(v)
            }
        }
    };
}

wrapper_writable!(
    /// `org.apache.hadoop.io.IntWritable`: big-endian 4 bytes.
    IntWritable, i32, write_i32, read_i32
);
wrapper_writable!(
    /// `org.apache.hadoop.io.LongWritable`: big-endian 8 bytes.
    LongWritable, i64, write_i64, read_i64
);
wrapper_writable!(
    /// `org.apache.hadoop.io.VIntWritable`: Hadoop vint.
    VIntWritable, i32, write_vint, read_vint
);
wrapper_writable!(
    /// `org.apache.hadoop.io.VLongWritable`: Hadoop vlong.
    VLongWritable, i64, write_vlong, read_vlong
);
wrapper_writable!(
    /// `org.apache.hadoop.io.BooleanWritable`: one byte.
    BooleanWritable, bool, write_bool, read_bool
);
wrapper_writable!(
    /// `org.apache.hadoop.io.FloatWritable`: big-endian IEEE-754.
    FloatWritable, f32, write_f32, read_f32
);
wrapper_writable!(
    /// `org.apache.hadoop.io.DoubleWritable`: big-endian IEEE-754.
    DoubleWritable, f64, write_f64, read_f64
);

/// `org.apache.hadoop.io.ByteWritable`: a single (signed) byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ByteWritable(pub i8);

impl Writable for ByteWritable {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i8(self.0)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.0 = input.read_i8()?;
        Ok(())
    }
}

/// `org.apache.hadoop.io.NullWritable`: zero bytes on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullWritable;

impl Writable for NullWritable {
    fn write(&self, _out: &mut dyn DataOutput) -> io::Result<()> {
        Ok(())
    }
    fn read_fields(&mut self, _input: &mut dyn DataInput) -> io::Result<()> {
        Ok(())
    }
}

/// `org.apache.hadoop.io.Text`: vint byte-length + UTF-8.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Text(pub String);

impl Writable for Text {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_string(&self.0)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.0 = input.read_string()?;
        Ok(())
    }
}

impl From<&str> for Text {
    fn from(s: &str) -> Self {
        Text(s.to_owned())
    }
}

impl From<String> for Text {
    fn from(s: String) -> Self {
        Text(s)
    }
}

/// `org.apache.hadoop.io.BytesWritable`: 4-byte length + raw bytes. This is
/// the payload type the paper's RPC microbenchmark ships back and forth.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesWritable(pub Vec<u8>);

impl Writable for BytesWritable {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_len_bytes(&self.0)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.0 = input.read_len_bytes()?;
        Ok(())
    }
}

impl From<Vec<u8>> for BytesWritable {
    fn from(v: Vec<u8>) -> Self {
        BytesWritable(v)
    }
}

// ---------------------------------------------------------------------------
// Ergonomic impls for plain Rust types, used by the mini-Hadoop protocol
// structs. They reuse the standard Hadoop encodings.
// ---------------------------------------------------------------------------

impl Writable for String {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_string(self)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_string()?;
        Ok(())
    }
}

impl Writable for bool {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_bool(*self)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_bool()?;
        Ok(())
    }
}

impl Writable for i32 {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i32(*self)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_i32()?;
        Ok(())
    }
}

impl Writable for i64 {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i64(*self)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_i64()?;
        Ok(())
    }
}

impl Writable for u64 {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i64(*self as i64)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_i64()? as u64;
        Ok(())
    }
}

impl Writable for u32 {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i32(*self as i32)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_i32()? as u32;
        Ok(())
    }
}

impl Writable for Vec<u8> {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_len_bytes(self)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = input.read_len_bytes()?;
        Ok(())
    }
}

/// Collections serialize as a vint element count followed by the elements.
impl<T: Writable + Default> Writable for Vec<T> {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.len() as i32)?;
        for item in self {
            item.write(out)?;
        }
        Ok(())
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        let n = input.read_vint()?;
        if n < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "negative element count",
            ));
        }
        self.clear();
        self.reserve(n as usize);
        for _ in 0..n {
            let mut item = T::default();
            item.read_fields(input)?;
            self.push(item);
        }
        Ok(())
    }
}

/// Options serialize as a presence byte followed by the value.
impl<T: Writable + Default> Writable for Option<T> {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        match self {
            Some(v) => {
                out.write_bool(true)?;
                v.write(out)
            }
            None => out.write_bool(false),
        }
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        if input.read_bool()? {
            let mut v = T::default();
            v.read_fields(input)?;
            *self = Some(v);
        } else {
            *self = None;
        }
        Ok(())
    }
}

/// Pairs serialize field-by-field (used for key/value records).
impl<A: Writable, B: Writable> Writable for (A, B) {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        self.0.write(out)?;
        self.1.write(out)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.0.read_fields(input)?;
        self.1.read_fields(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn roundtrip<W: Writable + Default + PartialEq + std::fmt::Debug>(v: W) {
        let bytes = to_bytes(&v).unwrap();
        let back: W = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn wrappers_roundtrip() {
        roundtrip(IntWritable(-42));
        roundtrip(LongWritable(i64::MAX));
        roundtrip(VIntWritable(300));
        roundtrip(VLongWritable(-1 << 40));
        roundtrip(BooleanWritable(true));
        roundtrip(ByteWritable(-7));
        roundtrip(FloatWritable(1.5));
        roundtrip(DoubleWritable(-0.25));
        roundtrip(Text::from("metadata"));
        roundtrip(BytesWritable(vec![0, 255, 128]));
        roundtrip(NullWritable);
    }

    #[test]
    fn null_writable_is_zero_bytes() {
        assert!(to_bytes(&NullWritable).unwrap().is_empty());
    }

    #[test]
    fn int_writable_layout_matches_java() {
        assert_eq!(to_bytes(&IntWritable(1)).unwrap(), [0, 0, 0, 1]);
        assert_eq!(
            to_bytes(&IntWritable(-1)).unwrap(),
            [0xff, 0xff, 0xff, 0xff]
        );
    }

    #[test]
    fn bytes_writable_layout() {
        assert_eq!(to_bytes(&BytesWritable(vec![9])).unwrap(), [0, 0, 0, 1, 9]);
    }

    #[test]
    fn vec_of_writables_roundtrips() {
        roundtrip(vec![IntWritable(1), IntWritable(2), IntWritable(3)]);
        roundtrip(Vec::<Text>::new());
        roundtrip(vec![Text::from("a"), Text::from("bb")]);
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Some(LongWritable(5)));
        roundtrip(Option::<LongWritable>::None);
    }

    #[test]
    fn pairs_roundtrip() {
        roundtrip((Text::from("key"), LongWritable(9)));
    }

    #[test]
    fn plain_rust_types_roundtrip() {
        roundtrip(String::from("plain"));
        roundtrip(true);
        roundtrip(-5i32);
        roundtrip(7i64);
        roundtrip(u64::MAX);
        roundtrip(vec![1u8, 2, 3]);
    }

    #[test]
    fn deserializing_garbage_fails_not_panics() {
        // Text with a length longer than the buffer.
        let bad = [0x20u8, b'x'];
        assert!(from_bytes::<Text>(&bad).is_err());
        // Vec with negative count.
        let mut bad = Vec::new();
        crate::varint::write_vint(&mut bad, -3).unwrap();
        assert!(from_bytes::<Vec<IntWritable>>(&bad).is_err());
    }
}
