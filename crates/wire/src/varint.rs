//! Hadoop's variable-length integer codec, bit-for-bit compatible with
//! `org.apache.hadoop.io.WritableUtils.writeVLong` / `readVLong`.
//!
//! Encoding rules (from the Hadoop source):
//!
//! * values in `[-112, 127]` are a single byte;
//! * otherwise the first byte encodes sign and byte-count:
//!   `-113..-120` for positive values of 1..8 payload bytes,
//!   `-121..-128` for (one's-complemented) negative values of 1..8 bytes;
//! * payload bytes follow big-endian, most significant first.

use std::io::{self, Read, Write};

/// Serialized size in bytes of `writeVLong(value)`.
pub fn vlong_size(value: i64) -> usize {
    if (-112..=127).contains(&value) {
        return 1;
    }
    let v = if value < 0 { !value } else { value };
    let data_bytes = (64 - v.leading_zeros() as usize).div_ceil(8).max(1);
    1 + data_bytes
}

/// Write a `long` in Hadoop vint format.
pub fn write_vlong<W: Write + ?Sized>(out: &mut W, value: i64) -> io::Result<()> {
    if (-112..=127).contains(&value) {
        return out.write_all(&[value as u8]);
    }
    let mut len: i32 = if value < 0 { -120 } else { -112 };
    let v = if value < 0 { !value } else { value };
    let mut tmp = v;
    while tmp != 0 {
        tmp >>= 8;
        len -= 1;
    }
    let mut buf = [0u8; 9];
    buf[0] = len as u8;
    let n = if len < -120 {
        (-(len + 120)) as usize
    } else {
        (-(len + 112)) as usize
    };
    for idx in (1..=n).rev() {
        let shift = (idx - 1) * 8;
        buf[n - idx + 1] = ((v >> shift) & 0xff) as u8;
    }
    out.write_all(&buf[..n + 1])
}

/// Write an `int` in Hadoop vint format (same wire format as vlong).
pub fn write_vint<W: Write + ?Sized>(out: &mut W, value: i32) -> io::Result<()> {
    write_vlong(out, value as i64)
}

/// Number of total encoded bytes implied by a leading byte.
pub fn decode_vint_size(first: u8) -> usize {
    let first = first as i8;
    if first >= -112 {
        1
    } else if first < -120 {
        (-119 - first as i32) as usize
    } else {
        (-111 - first as i32) as usize
    }
}

/// Whether a leading byte marks a one's-complemented negative value.
pub fn is_negative_vint(first: u8) -> bool {
    (first as i8) < -120
}

/// Read a `long` in Hadoop vint format.
pub fn read_vlong<R: Read + ?Sized>(input: &mut R) -> io::Result<i64> {
    let mut first = [0u8; 1];
    input.read_exact(&mut first)?;
    let len = decode_vint_size(first[0]);
    if len == 1 {
        return Ok(first[0] as i8 as i64);
    }
    let mut value: i64 = 0;
    let mut byte = [0u8; 1];
    for _ in 0..len - 1 {
        input.read_exact(&mut byte)?;
        value = (value << 8) | byte[0] as i64;
    }
    Ok(if is_negative_vint(first[0]) {
        !value
    } else {
        value
    })
}

/// Read an `int` in Hadoop vint format, failing on overflow.
pub fn read_vint<R: Read + ?Sized>(input: &mut R) -> io::Result<i32> {
    let v = read_vlong(input)?;
    i32::try_from(v).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("vint out of range: {v}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: i64) -> Vec<u8> {
        let mut out = Vec::new();
        write_vlong(&mut out, v).unwrap();
        out
    }

    #[test]
    fn single_byte_range() {
        for v in -112..=127i64 {
            let bytes = enc(v);
            assert_eq!(bytes, vec![v as u8], "value {v}");
            assert_eq!(vlong_size(v), 1);
            assert_eq!(read_vlong(&mut bytes.as_slice()).unwrap(), v);
        }
    }

    /// Known-answer vectors computed from the Hadoop reference algorithm.
    #[test]
    fn known_vectors() {
        assert_eq!(enc(128), vec![0x8f, 0x80]); // -113, 0x80
        assert_eq!(enc(255), vec![0x8f, 0xff]);
        assert_eq!(enc(256), vec![0x8e, 0x01, 0x00]); // -114, 2 bytes
        assert_eq!(enc(-113), vec![0x87, 0x70]); // -121, ~(-113)=112=0x70
        assert_eq!(enc(-256), vec![0x87, 0xff]); // ~(-256)=255 -> one payload byte
    }

    #[test]
    fn negative_encoding_uses_ones_complement() {
        // ~(-129) = 128 -> one payload byte 0x80, prefix -121 = 0x87? No:
        // len starts -120; 128 needs 1 byte -> len=-121 = 0x87.
        assert_eq!(enc(-129), vec![0x87, 0x80]);
        // ~(-257) = 256 -> two payload bytes 0x01 0x00, prefix -122 = 0x86.
        assert_eq!(enc(-257), vec![0x86, 0x01, 0x00]);
    }

    #[test]
    fn extremes_roundtrip() {
        for v in [
            i64::MIN,
            i64::MIN + 1,
            -1_000_000_007,
            -32768,
            -129,
            -128,
            -113,
            -112,
            0,
            127,
            128,
            300,
            65535,
            1 << 31,
            i64::MAX - 1,
            i64::MAX,
        ] {
            let bytes = enc(v);
            assert_eq!(bytes.len(), vlong_size(v), "size mismatch for {v}");
            assert_eq!(
                read_vlong(&mut bytes.as_slice()).unwrap(),
                v,
                "roundtrip {v}"
            );
        }
    }

    #[test]
    fn vint_range_check() {
        let mut out = Vec::new();
        write_vlong(&mut out, i64::from(i32::MAX) + 1).unwrap();
        assert!(read_vint(&mut out.as_slice()).is_err());
        let mut out = Vec::new();
        write_vint(&mut out, i32::MIN).unwrap();
        assert_eq!(read_vint(&mut out.as_slice()).unwrap(), i32::MIN);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = enc(1 << 40);
        for cut in 1..bytes.len() {
            assert!(read_vlong(&mut &bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
