//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! HDFS checksums every 512-byte chunk of block data with CRC-32 and
//! verifies on both the write pipeline and the read path; the mini-HDFS
//! data-transfer protocol does the same per wire chunk.

/// Generate the reflected CRC-32 lookup table at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (IEEE, as produced by zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32: extend `crc` (a previous [`crc32`] result) with
/// more data.
pub fn crc32_extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"split into several pieces for incremental hashing";
        let whole = crc32(data);
        let mut crc = crc32(&data[..10]);
        crc = crc32_extend(crc, &data[10..25]);
        crc = crc32_extend(crc, &data[25..]);
        assert_eq!(crc, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 1024];
        let clean = crc32(&data);
        for position in [0usize, 511, 512, 1023] {
            data[position] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at {position} undetected");
            data[position] ^= 0x01;
        }
        assert_eq!(crc32(&data), clean);
    }
}
