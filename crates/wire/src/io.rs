//! `DataOutput` / `DataInput`: Java-style primitive encodings (big endian)
//! plus Hadoop's vint and length-prefixed UTF-8 strings.
//!
//! Both traits are blanket-implemented for every `std::io::Write` /
//! `std::io::Read`, so the same `Writable` code serializes into a plain
//! `Vec<u8>`, the Algorithm-1 [`crate::DataOutputBuffer`], a socket stream,
//! or the RPCoIB `RdmaOutputStream` — exactly the interface-compatibility
//! trick the paper uses to slide RDMA streams under unmodified RPC code.

use std::io::{self, Read, Write};

use crate::varint;

/// Java `DataOutput` + Hadoop `WritableUtils` write-side operations.
pub trait DataOutput {
    /// Write raw bytes.
    fn write_bytes(&mut self, buf: &[u8]) -> io::Result<()>;

    fn write_u8(&mut self, v: u8) -> io::Result<()> {
        self.write_bytes(&[v])
    }

    fn write_i8(&mut self, v: i8) -> io::Result<()> {
        self.write_u8(v as u8)
    }

    fn write_bool(&mut self, v: bool) -> io::Result<()> {
        self.write_u8(v as u8)
    }

    fn write_i16(&mut self, v: i16) -> io::Result<()> {
        self.write_bytes(&v.to_be_bytes())
    }

    fn write_u16(&mut self, v: u16) -> io::Result<()> {
        self.write_bytes(&v.to_be_bytes())
    }

    fn write_i32(&mut self, v: i32) -> io::Result<()> {
        self.write_bytes(&v.to_be_bytes())
    }

    fn write_i64(&mut self, v: i64) -> io::Result<()> {
        self.write_bytes(&v.to_be_bytes())
    }

    fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_bytes(&v.to_be_bytes())
    }

    fn write_f32(&mut self, v: f32) -> io::Result<()> {
        self.write_bytes(&v.to_bits().to_be_bytes())
    }

    fn write_f64(&mut self, v: f64) -> io::Result<()> {
        self.write_bytes(&v.to_bits().to_be_bytes())
    }

    /// Hadoop `WritableUtils.writeVInt`.
    fn write_vint(&mut self, v: i32) -> io::Result<()> {
        let mut tmp = [0u8; 5];
        let mut cursor = &mut tmp[..];
        varint::write_vint(&mut cursor, v)?;
        let n = 5 - cursor.len();
        self.write_bytes(&tmp[..n])
    }

    /// Hadoop `WritableUtils.writeVLong`.
    fn write_vlong(&mut self, v: i64) -> io::Result<()> {
        let mut tmp = [0u8; 9];
        let mut cursor = &mut tmp[..];
        varint::write_vlong(&mut cursor, v)?;
        let n = 9 - cursor.len();
        self.write_bytes(&tmp[..n])
    }

    /// Hadoop `Text::writeString`: vint byte-length + UTF-8 bytes.
    fn write_string(&mut self, s: &str) -> io::Result<()> {
        self.write_vint(s.len() as i32)?;
        self.write_bytes(s.as_bytes())
    }

    /// `BytesWritable`-style buffer: 4-byte big-endian length + bytes.
    fn write_len_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.write_i32(buf.len() as i32)?;
        self.write_bytes(buf)
    }
}

impl<W: Write + ?Sized> DataOutput for W {
    fn write_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.write_all(buf)
    }
}

/// Java `DataInput` + Hadoop `WritableUtils` read-side operations.
pub trait DataInput {
    /// Fill `buf` completely or fail.
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<()>;

    fn read_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.read_bytes(&mut b)?;
        Ok(b[0])
    }

    fn read_i8(&mut self) -> io::Result<i8> {
        Ok(self.read_u8()? as i8)
    }

    fn read_bool(&mut self) -> io::Result<bool> {
        Ok(self.read_u8()? != 0)
    }

    fn read_i16(&mut self) -> io::Result<i16> {
        let mut b = [0u8; 2];
        self.read_bytes(&mut b)?;
        Ok(i16::from_be_bytes(b))
    }

    fn read_u16(&mut self) -> io::Result<u16> {
        let mut b = [0u8; 2];
        self.read_bytes(&mut b)?;
        Ok(u16::from_be_bytes(b))
    }

    fn read_i32(&mut self) -> io::Result<i32> {
        let mut b = [0u8; 4];
        self.read_bytes(&mut b)?;
        Ok(i32::from_be_bytes(b))
    }

    fn read_i64(&mut self) -> io::Result<i64> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(i64::from_be_bytes(b))
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(u64::from_be_bytes(b))
    }

    fn read_f32(&mut self) -> io::Result<f32> {
        let mut b = [0u8; 4];
        self.read_bytes(&mut b)?;
        Ok(f32::from_bits(u32::from_be_bytes(b)))
    }

    fn read_f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(f64::from_bits(u64::from_be_bytes(b)))
    }

    fn read_vint(&mut self) -> io::Result<i32> {
        let v = self.read_vlong()?;
        i32::try_from(v).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("vint out of range: {v}"),
            )
        })
    }

    fn read_vlong(&mut self) -> io::Result<i64> {
        let first = self.read_u8()?;
        let len = varint::decode_vint_size(first);
        if len == 1 {
            return Ok(first as i8 as i64);
        }
        let mut value: i64 = 0;
        for _ in 0..len - 1 {
            value = (value << 8) | self.read_u8()? as i64;
        }
        Ok(if varint::is_negative_vint(first) {
            !value
        } else {
            value
        })
    }

    /// Hadoop `Text::readString`.
    fn read_string(&mut self) -> io::Result<String> {
        let len = self.read_vint()?;
        if len < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "negative string length",
            ));
        }
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(&mut buf)?;
        String::from_utf8(buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf8: {e}")))
    }

    /// Counterpart of [`DataOutput::write_len_bytes`].
    fn read_len_bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.read_i32()?;
        if len < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "negative buffer length",
            ));
        }
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(&mut buf)?;
        Ok(buf)
    }
}

impl<R: Read + ?Sized> DataInput for R {
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.read_exact(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_big_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.write_i32(0x01020304).unwrap();
        assert_eq!(out, [1, 2, 3, 4], "Java big-endian layout");
        out.write_i64(-2).unwrap();
        out.write_bool(true).unwrap();
        out.write_f64(std::f64::consts::PI).unwrap();
        out.write_u16(0xbeef).unwrap();
        out.write_i8(-5).unwrap();

        let mut input = out.as_slice();
        assert_eq!(input.read_i32().unwrap(), 0x01020304);
        assert_eq!(input.read_i64().unwrap(), -2);
        assert!(input.read_bool().unwrap());
        assert_eq!(input.read_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(input.read_u16().unwrap(), 0xbeef);
        assert_eq!(input.read_i8().unwrap(), -5);
        assert!(input.is_empty());
    }

    #[test]
    fn strings_are_vint_prefixed_utf8() {
        let mut out: Vec<u8> = Vec::new();
        out.write_string("héllo").unwrap();
        // "héllo" is 6 UTF-8 bytes; 6 encodes as a single vint byte.
        assert_eq!(out[0], 6);
        assert_eq!(&out[1..], "héllo".as_bytes());
        let mut input = out.as_slice();
        assert_eq!(input.read_string().unwrap(), "héllo");
    }

    #[test]
    fn empty_string_roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.write_string("").unwrap();
        assert_eq!(out, [0]);
        assert_eq!(out.as_slice().read_string().unwrap(), "");
    }

    #[test]
    fn len_bytes_roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.write_len_bytes(&[9, 8, 7]).unwrap();
        assert_eq!(out, [0, 0, 0, 3, 9, 8, 7]);
        assert_eq!(out.as_slice().read_len_bytes().unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn vint_through_the_trait_matches_module() {
        for v in [-1_000_000i64, -113, 0, 127, 128, 1 << 40] {
            let mut a: Vec<u8> = Vec::new();
            a.write_vlong(v).unwrap();
            let mut b = Vec::new();
            crate::varint::write_vlong(&mut b, v).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.as_slice().read_vlong().unwrap(), v);
        }
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let bytes = [2u8, 0xff, 0xfe];
        assert!(bytes.as_slice().read_string().is_err());
    }
}
