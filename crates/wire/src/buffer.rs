//! The serialization buffers of stock Hadoop RPC.
//!
//! [`DataOutputBuffer`] reproduces `org.apache.hadoop.io.DataOutputBuffer`
//! including the memory-adjustment policy the paper analyzes as
//! **Algorithm 1**: the internal buffer starts at 32 bytes; whenever a write
//! does not fit, a new buffer of `max(2 * old_len, needed)` is allocated and
//! the existing contents are copied over. Both the adjustment count and the
//! volume of bytes copied are recorded — per instance *and* in process-wide
//! counters — because Table I of the paper profiles exactly these.
//!
//! The growth is implemented with a manually managed `Box<[u8]>` rather than
//! `Vec` so the copy really happens the way the Java code does it (and so
//! `Vec`'s amortization tricks don't accidentally hide the behaviour being
//! studied).

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Initial internal buffer size of `DataOutputBuffer` in Hadoop (and in
/// common Java versions' `ByteArrayOutputStream`).
pub const INITIAL_CAPACITY: usize = 32;

/// Process-wide serialization-buffer statistics.
#[derive(Debug, Default)]
pub struct GlobalBufferStats {
    /// Total number of Algorithm-1 buffer reallocations.
    pub adjustments: AtomicU64,
    /// Total bytes moved by those reallocations (old-data copies).
    pub bytes_copied: AtomicU64,
    /// Total buffers allocated (initial allocations + reallocations).
    pub allocations: AtomicU64,
}

static GLOBAL: GlobalBufferStats = GlobalBufferStats {
    adjustments: AtomicU64::new(0),
    bytes_copied: AtomicU64::new(0),
    allocations: AtomicU64::new(0),
};

/// Access the process-wide counters (used by the Table I harness).
pub fn global_stats() -> &'static GlobalBufferStats {
    &GLOBAL
}

/// Snapshot of the global counters, for delta measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub adjustments: u64,
    pub bytes_copied: u64,
    pub allocations: u64,
}

/// Take a snapshot of the global counters.
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot {
        adjustments: GLOBAL.adjustments.load(Ordering::Relaxed),
        bytes_copied: GLOBAL.bytes_copied.load(Ordering::Relaxed),
        allocations: GLOBAL.allocations.load(Ordering::Relaxed),
    }
}

impl StatsSnapshot {
    /// Counter increments since `earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            adjustments: self.adjustments - earlier.adjustments,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
            allocations: self.allocations - earlier.allocations,
        }
    }
}

/// Growable serialization buffer with Hadoop's Algorithm-1 growth policy.
pub struct DataOutputBuffer {
    buf: Box<[u8]>,
    count: usize,
    adjustments: u64,
    bytes_copied: u64,
}

impl DataOutputBuffer {
    /// A buffer with the stock 32-byte initial capacity (the client-side
    /// default the paper profiles).
    pub fn new() -> Self {
        Self::with_capacity(INITIAL_CAPACITY)
    }

    /// A buffer with a chosen initial capacity (Hadoop's server side uses
    /// 10 KB, which the paper discusses as a memory-footprint trade-off).
    pub fn with_capacity(capacity: usize) -> Self {
        GLOBAL.allocations.fetch_add(1, Ordering::Relaxed);
        DataOutputBuffer {
            buf: vec![0u8; capacity.max(1)].into_boxed_slice(),
            count: 0,
            adjustments: 0,
            bytes_copied: 0,
        }
    }

    /// Algorithm 1 from the paper: grow to `max(2 * buf_len, new_count)`,
    /// copying existing data into the fresh allocation.
    fn adjust(&mut self, new_count: usize) {
        let new_len = (self.buf.len() * 2).max(new_count);
        let mut new_buf = vec![0u8; new_len].into_boxed_slice();
        new_buf[..self.count].copy_from_slice(&self.buf[..self.count]);
        self.buf = new_buf;
        self.adjustments += 1;
        self.bytes_copied += self.count as u64;
        GLOBAL.adjustments.fetch_add(1, Ordering::Relaxed);
        GLOBAL
            .bytes_copied
            .fetch_add(self.count as u64, Ordering::Relaxed);
        GLOBAL.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Append bytes, adjusting the buffer if they do not fit.
    pub fn append(&mut self, bytes: &[u8]) {
        let new_count = self.count + bytes.len();
        if new_count > self.buf.len() {
            self.adjust(new_count);
        }
        self.buf[self.count..new_count].copy_from_slice(bytes);
        self.count = new_count;
    }

    /// The serialized bytes so far (`getData()` + `getLength()` in Hadoop).
    pub fn data(&self) -> &[u8] {
        &self.buf[..self.count]
    }

    /// Number of valid bytes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if nothing has been written since creation/reset.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current internal capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Reset the write position, keeping the (possibly grown) buffer —
    /// matching Hadoop's `reset()`.
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// How many Algorithm-1 adjustments this instance has performed —
    /// the paper's "Avg. Mem Adjustment Times" counts these per call.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Bytes of old data copied by this instance's adjustments.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Consume the buffer, returning the serialized bytes without copying
    /// them again (the spare capacity beyond `len()` is released lazily by
    /// `Vec`). Used by send paths that hand a finished frame to a writer
    /// queue and must not pay a defensive copy per call.
    pub fn into_vec(self) -> Vec<u8> {
        let mut v: Vec<u8> = self.buf.into_vec();
        v.truncate(self.count);
        v
    }
}

impl Default for DataOutputBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl Write for DataOutputBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.append(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl std::fmt::Debug for DataOutputBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataOutputBuffer")
            .field("len", &self.count)
            .field("capacity", &self.buf.len())
            .field("adjustments", &self.adjustments)
            .finish()
    }
}

/// Positioned reader over an owned byte buffer — Hadoop's
/// `DataInputBuffer`, used on the deserialization side.
#[derive(Debug, Clone)]
pub struct DataInputBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl DataInputBuffer {
    /// Wrap an owned buffer.
    pub fn new(buf: Vec<u8>) -> Self {
        DataInputBuffer { buf, pos: 0 }
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reset to a new backing buffer (Hadoop's `reset(data, len)`).
    pub fn reset(&mut self, buf: Vec<u8>) {
        self.buf = buf;
        self.pos = 0;
    }
}

impl Read for DataInputBuffer {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = self.remaining().min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DataInput, DataOutput};

    #[test]
    fn starts_at_32_bytes_like_hadoop() {
        let b = DataOutputBuffer::new();
        assert_eq!(b.capacity(), INITIAL_CAPACITY);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn algorithm1_doubles_capacity() {
        let mut b = DataOutputBuffer::new();
        b.append(&[0u8; 32]);
        assert_eq!(b.adjustments(), 0, "exactly full: no adjustment");
        b.append(&[1u8; 1]);
        assert_eq!(b.adjustments(), 1);
        assert_eq!(b.capacity(), 64);
        assert_eq!(b.bytes_copied(), 32, "old data copied once");
    }

    #[test]
    fn algorithm1_jumps_to_needed_when_doubling_is_insufficient() {
        let mut b = DataOutputBuffer::new();
        b.append(&[7u8; 1000]);
        assert_eq!(b.adjustments(), 1);
        assert_eq!(b.capacity(), 1000, "max(2*32, 1000) = 1000");
        assert_eq!(b.data(), &[7u8; 1000][..]);
    }

    #[test]
    fn incremental_small_writes_cause_many_adjustments() {
        // This is the pathology the paper highlights: Writable emits many
        // tiny writes (writeInt, writeBoolean, ...), so reaching a 4 KB
        // payload from 32 bytes costs ~7 doublings, each copying old data.
        let mut b = DataOutputBuffer::new();
        for i in 0..1024 {
            b.write_i32(i).unwrap();
        }
        assert_eq!(b.len(), 4096);
        assert_eq!(b.adjustments(), 7, "32→64→128→256→512→1024→2048→4096");
        // Copied volume is the sum of sizes at each adjustment.
        assert_eq!(b.bytes_copied(), 32 + 64 + 128 + 256 + 512 + 1024 + 2048);
    }

    #[test]
    fn reset_keeps_grown_capacity() {
        let mut b = DataOutputBuffer::new();
        b.append(&[0u8; 100]);
        let cap = b.capacity();
        b.reset();
        assert_eq!(b.len(), 0);
        assert_eq!(b.capacity(), cap);
        b.append(&[1u8; 50]);
        assert_eq!(b.data(), &[1u8; 50][..]);
    }

    #[test]
    fn data_is_preserved_across_adjustments() {
        let mut b = DataOutputBuffer::new();
        let payload: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        for chunk in payload.chunks(3) {
            b.append(chunk);
        }
        assert_eq!(b.data(), payload.as_slice());
    }

    #[test]
    fn global_stats_accumulate() {
        let before = snapshot();
        let mut b = DataOutputBuffer::new();
        b.append(&[0u8; 100]);
        let delta = snapshot().since(&before);
        assert!(delta.adjustments >= 1);
        assert!(delta.allocations >= 2, "initial + regrow");
        assert!(delta.bytes_copied >= 32 || delta.bytes_copied == 0);
    }

    #[test]
    fn input_buffer_reads_and_tracks_position() {
        let mut out = DataOutputBuffer::new();
        out.write_string("abc").unwrap();
        out.write_i64(42).unwrap();
        let mut input = DataInputBuffer::new(out.data().to_vec());
        assert_eq!(input.read_string().unwrap(), "abc");
        assert_eq!(input.read_i64().unwrap(), 42);
        assert_eq!(input.remaining(), 0);
        assert_eq!(input.position(), out.len());
    }

    #[test]
    fn input_buffer_eof_is_clean() {
        let mut input = DataInputBuffer::new(vec![1, 2]);
        assert_eq!(input.read_u16().unwrap(), 0x0102);
        assert!(input.read_u8().is_err());
    }

    #[test]
    fn into_vec_returns_exactly_the_written_bytes() {
        let mut b = DataOutputBuffer::new();
        b.append(&[9u8; 40]); // forces one adjustment, capacity 64
        let v = b.into_vec();
        assert_eq!(v, vec![9u8; 40]);
    }

    #[test]
    fn write_trait_goes_through_algorithm1() {
        use std::io::Write as _;
        let mut b = DataOutputBuffer::new();
        b.write_all(&[0u8; 64]).unwrap();
        assert_eq!(b.adjustments(), 1);
    }
}
