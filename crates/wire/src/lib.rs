//! # wire — Hadoop `Writable` serialization, faithfully reproduced
//!
//! Hadoop RPC (0.20.x, the version the paper studies) serializes every call
//! with the `Writable` mechanism: values write themselves field-by-field
//! into a `DataOutput` using Java's big-endian primitive encodings plus
//! Hadoop's variable-length integer format (`WritableUtils.writeVInt`).
//!
//! This crate reproduces that stack:
//!
//! * [`DataOutput`] / [`DataInput`] — the primitive encoding traits,
//!   blanket-implemented for any `std::io::Write` / `Read`;
//! * [`varint`] — the exact Hadoop vint/vlong codec (one's-complement
//!   negatives, `-112`/`-120` length prefixes);
//! * [`buffer::DataOutputBuffer`] — the serialization buffer whose growth
//!   policy is the paper's **Algorithm 1**: start at 32 bytes, grow to
//!   `max(2·len, needed)`, copying the old contents each time. The
//!   adjustment count and copied-byte volume are instrumented per instance
//!   and globally ([`buffer::global_stats`]) because Table I of the paper
//!   reports exactly these numbers;
//! * [`types`] — the `Writable` wrapper types used by the mini-Hadoop
//!   components (`IntWritable`, `Text`, `BytesWritable`, …).
//!
//! The deliberate inefficiency of Algorithm 1 is the *point*: the RPCoIB
//! design in the `rpcoib` crate exists to avoid it, and the benchmarks
//! compare the two.
//!
//! ```
//! use wire::{DataInput, DataOutput, DataOutputBuffer, Text, Writable};
//!
//! // Serialize Hadoop-style into the stock 32-byte buffer...
//! let mut buf = DataOutputBuffer::new();
//! buf.write_i32(42).unwrap();
//! Text::from("/user/data").write(&mut buf).unwrap();
//! buf.write_bytes(&[0u8; 100]).unwrap();
//! // ...and watch Algorithm 1 pay for it:
//! assert!(buf.adjustments() >= 1, "outgrew 32 bytes, so it reallocated");
//!
//! // Round-trip.
//! let mut input = buf.data();
//! assert_eq!(input.read_i32().unwrap(), 42);
//! let mut path = Text::default();
//! path.read_fields(&mut input).unwrap();
//! assert_eq!(path.0, "/user/data");
//! ```

pub mod buffer;
pub mod crc;
pub mod io;
pub mod object;
pub mod types;
pub mod varint;

pub use buffer::{DataInputBuffer, DataOutputBuffer};
pub use crc::{crc32, crc32_extend};
pub use io::{DataInput, DataOutput};
pub use object::ObjectWritable;
pub use types::{
    BooleanWritable, ByteWritable, BytesWritable, DoubleWritable, FloatWritable, IntWritable,
    LongWritable, NullWritable, Text, VIntWritable, VLongWritable, Writable,
};

use std::io::Result;

/// Serialize a `Writable` into a fresh byte vector (convenience for tests
/// and for call-size tracing).
pub fn to_bytes<W: Writable + ?Sized>(w: &W) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    w.write(&mut out)?;
    Ok(out)
}

/// Deserialize a `Writable` from a byte slice (the value is default-created
/// and then filled in via `read_fields`, Hadoop-style).
pub fn from_bytes<W: Writable + Default>(bytes: &[u8]) -> Result<W> {
    let mut input = bytes;
    let mut value = W::default();
    value.read_fields(&mut input)?;
    Ok(value)
}
