//! `ObjectWritable`: Hadoop's polymorphic RPC parameter container.
//!
//! Stock Hadoop RPC marshals every call parameter as an
//! `ObjectWritable` — a type name on the wire followed by the value —
//! which is how a reflective server can reconstruct arguments without
//! static knowledge of the method signature. (The class-name preamble is
//! also part of why real Hadoop frames are bigger than their payloads —
//! a contributor to the paper's Table I adjustment counts.)
//!
//! This implementation supports the primitive wrappers, `Text`, byte
//! arrays, nulls, and homogeneous arrays, dispatching on a compact type
//! tag written as a Hadoop string.

use std::io;

use crate::io::{DataInput, DataOutput};
use crate::types::Writable;

/// A dynamically typed `Writable` value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ObjectWritable {
    /// Java `null` (`NullWritable` declared type).
    #[default]
    Null,
    Boolean(bool),
    Byte(i8),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    /// UTF-8 string (`org.apache.hadoop.io.Text`).
    Text(String),
    /// Raw bytes (`org.apache.hadoop.io.BytesWritable`).
    Bytes(Vec<u8>),
    /// A homogeneous array of objects.
    Array(Vec<ObjectWritable>),
}

impl ObjectWritable {
    /// The wire type name (shortened stand-ins for Java class names).
    pub fn type_name(&self) -> &'static str {
        match self {
            ObjectWritable::Null => "null",
            ObjectWritable::Boolean(_) => "boolean",
            ObjectWritable::Byte(_) => "byte",
            ObjectWritable::Int(_) => "int",
            ObjectWritable::Long(_) => "long",
            ObjectWritable::Float(_) => "float",
            ObjectWritable::Double(_) => "double",
            ObjectWritable::Text(_) => "org.apache.hadoop.io.Text",
            ObjectWritable::Bytes(_) => "org.apache.hadoop.io.BytesWritable",
            ObjectWritable::Array(_) => "array",
        }
    }
}

impl Writable for ObjectWritable {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_string(self.type_name())?;
        match self {
            ObjectWritable::Null => Ok(()),
            ObjectWritable::Boolean(v) => out.write_bool(*v),
            ObjectWritable::Byte(v) => out.write_i8(*v),
            ObjectWritable::Int(v) => out.write_i32(*v),
            ObjectWritable::Long(v) => out.write_i64(*v),
            ObjectWritable::Float(v) => out.write_f32(*v),
            ObjectWritable::Double(v) => out.write_f64(*v),
            ObjectWritable::Text(v) => out.write_string(v),
            ObjectWritable::Bytes(v) => out.write_len_bytes(v),
            ObjectWritable::Array(items) => {
                out.write_vint(items.len() as i32)?;
                for item in items {
                    item.write(out)?;
                }
                Ok(())
            }
        }
    }

    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        let type_name = input.read_string()?;
        *self = match type_name.as_str() {
            "null" => ObjectWritable::Null,
            "boolean" => ObjectWritable::Boolean(input.read_bool()?),
            "byte" => ObjectWritable::Byte(input.read_i8()?),
            "int" => ObjectWritable::Int(input.read_i32()?),
            "long" => ObjectWritable::Long(input.read_i64()?),
            "float" => ObjectWritable::Float(input.read_f32()?),
            "double" => ObjectWritable::Double(input.read_f64()?),
            "org.apache.hadoop.io.Text" => ObjectWritable::Text(input.read_string()?),
            "org.apache.hadoop.io.BytesWritable" => ObjectWritable::Bytes(input.read_len_bytes()?),
            "array" => {
                let n = input.read_vint()?;
                if n < 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "negative array length",
                    ));
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let mut item = ObjectWritable::default();
                    item.read_fields(input)?;
                    items.push(item);
                }
                ObjectWritable::Array(items)
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown ObjectWritable type: {other}"),
                ))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn roundtrip(v: ObjectWritable) {
        let bytes = to_bytes(&v).unwrap();
        let back: ObjectWritable = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(ObjectWritable::Null);
        roundtrip(ObjectWritable::Boolean(true));
        roundtrip(ObjectWritable::Byte(-5));
        roundtrip(ObjectWritable::Int(i32::MIN));
        roundtrip(ObjectWritable::Long(1 << 40));
        roundtrip(ObjectWritable::Float(2.5));
        roundtrip(ObjectWritable::Double(-1e300));
        roundtrip(ObjectWritable::Text("метадата".into()));
        roundtrip(ObjectWritable::Bytes(vec![0, 1, 255]));
    }

    #[test]
    fn nested_arrays_roundtrip() {
        roundtrip(ObjectWritable::Array(vec![
            ObjectWritable::Int(1),
            ObjectWritable::Array(vec![ObjectWritable::Text("deep".into())]),
            ObjectWritable::Null,
        ]));
        roundtrip(ObjectWritable::Array(Vec::new()));
    }

    #[test]
    fn type_name_travels_on_the_wire() {
        // The class-name preamble is visible in the frame, like Hadoop's.
        let bytes = to_bytes(&ObjectWritable::Text("x".into())).unwrap();
        let frame = String::from_utf8_lossy(&bytes);
        assert!(frame.contains("org.apache.hadoop.io.Text"));
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut buf: Vec<u8> = Vec::new();
        crate::io::DataOutput::write_string(&mut buf, "com.evil.Gadget").unwrap();
        assert!(from_bytes::<ObjectWritable>(&buf).is_err());
    }
}
