//! Idle-connection cost regression (tier 2: run with
//! `cargo test --release --test idle_conn_regression -- --ignored`).
//!
//! The event-driven reader's promise is that a parked connection costs
//! nothing at steady state: no sweep probe, no modeled charge, no shard
//! work. These tests park a large idle population (10k raw socket conns
//! / 4k bootstrapped verbs conns) next to 16 active callers and gate
//! three observables against a 0-idle baseline run:
//!
//! * the active calls' per-call modeled-ns samples are **identical** —
//!   not merely close — to the baseline's (idle conns charge nothing
//!   and draw nothing from the fault RNG);
//! * the reader shards' sorted processed counts match the baseline
//!   (idle conns generate no frames and steal no shard time);
//! * a quiet window with the full population attached charges **zero**
//!   modeled nanoseconds to the server node (the old sweep woke every
//!   `SWEEP_IDLE` and walked all N conns; the ready queue just blocks).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib::handshake::client_hello;
use rpcoib::transport::rdma::RdmaConn;
use rpcoib::{Client, IbContext, RpcConfig, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric, SimStream};
use wire::{DataInput, IntWritable, Writable};

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "test.IdleProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut value = IntWritable::default();
        value.read_fields(param).map_err(|e| e.to_string())?;
        match method {
            "echo" => Ok(Box::new(value)),
            other => Err(format!("no such method {other}")),
        }
    }
}

const ACTIVE_CLIENTS: usize = 16;
const CALLS_PER_CLIENT: usize = 12;

/// What a population run measures, for comparison against the baseline.
struct Population {
    /// Per-call modeled-ns deltas of the active clients, sorted.
    samples: Vec<u64>,
    /// Reader shards' processed frame counts, sorted descending.
    reader_processed: Vec<u64>,
    /// Modeled ns charged to the server node across a quiet 300 ms
    /// window with the whole idle population attached.
    quiet_delta_ns: u64,
    /// `MetricsSnapshot::connections` while everything was attached.
    connections: usize,
    /// `MetricsSnapshot::conn_buffered_bytes` at the same moment.
    buffered_bytes: usize,
}

/// The idle conns kept alive for a run: raw handshaken streams (socket)
/// or bootstrapped client-side verbs conns (whose streams must outlive
/// them for teardown signalling).
enum IdleConns {
    Socket(Vec<SimStream>),
    Verbs(Vec<(SimStream, RdmaConn)>),
}

fn run_population(rdma: bool, idle_n: usize) -> Population {
    simnet::set_fast_forward(true);
    let (net, mut cfg) = if rdma {
        (model::IB_QDR_VERBS, RpcConfig::rpcoib())
    } else {
        (model::IPOIB_QDR, RpcConfig::socket())
    };
    if rdma {
        // Shrink per-connection buffer footprints so thousands of
        // bootstrapped conns fit comfortably (cf. the shards figure).
        cfg.rdma_threshold = 2 * 1024;
        cfg.recv_buf_bytes = 4 * 1024;
        cfg.posted_recvs = 2;
        cfg.large_region_bytes = 16 * 1024;
        cfg.prefill_per_class = 1;
    }
    let fabric = Fabric::new(net);
    fabric.set_fault_seed(7);
    let server_node = fabric.add_node();
    let idle_node = fabric.add_node();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let addr = server.addr();

    // Park the idle population. Each conn completes the engine's real
    // accept path (hello + ack, plus the verbs bootstrap), then never
    // sends another byte.
    let idle_ctx = rdma.then(|| IbContext::new(&fabric, idle_node, &cfg).unwrap());
    let mut idle = if rdma {
        IdleConns::Verbs(Vec::with_capacity(idle_n))
    } else {
        IdleConns::Socket(Vec::with_capacity(idle_n))
    };
    for _ in 0..idle_n {
        let stream = SimStream::connect(&fabric, idle_node, addr).unwrap();
        client_hello(&stream, 0, 3).unwrap();
        match &mut idle {
            IdleConns::Socket(v) => v.push(stream),
            IdleConns::Verbs(v) => {
                let conn = RdmaConn::bootstrap(&stream, idle_ctx.as_ref().unwrap(), &cfg).unwrap();
                v.push((stream, conn));
            }
        }
    }
    // Registration rides the ready queue (TOKEN_REGISTER); wait for the
    // last idle conn to be adopted before reading the quiet window.
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.metrics_snapshot().connections < idle_n {
        assert!(Instant::now() < deadline, "idle conns never registered");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Quiet window: N idle conns, zero traffic. The event-driven reader
    // must charge the server node nothing at all.
    let quiet_start = fabric.modeled_ns(server_node);
    std::thread::sleep(Duration::from_millis(300));
    let quiet_delta_ns = fabric.modeled_ns(server_node) - quiet_start;

    // Active phase: 16 sequential callers, per-call ledger deltas.
    let clients: Vec<(Client, simnet::NodeId)> = (0..ACTIVE_CLIENTS)
        .map(|_| {
            let node = fabric.add_node();
            (Client::new(&fabric, node, cfg.clone()).unwrap(), node)
        })
        .collect();
    let mut samples = Vec::with_capacity(ACTIVE_CLIENTS * CALLS_PER_CLIENT);
    for round in 0..CALLS_PER_CLIENT {
        for (client, node) in &clients {
            let before = fabric.modeled_ns(*node);
            let echoed: IntWritable = client
                .call(
                    addr,
                    "test.IdleProtocol",
                    "echo",
                    &IntWritable(round as i32),
                )
                .unwrap();
            assert_eq!(echoed.0, round as i32);
            samples.push(fabric.modeled_ns(*node) - before);
        }
    }
    samples.sort_unstable();

    let snap = server.metrics_snapshot();
    let connections = snap.connections;
    let buffered_bytes = snap.conn_buffered_bytes;
    let mut reader_processed: Vec<u64> = snap
        .shards
        .iter()
        .filter(|s| s.role.name() == "reader")
        .map(|s| s.processed)
        .collect();
    reader_processed.sort_unstable_by(|a, b| b.cmp(a));

    for (client, _) in &clients {
        client.shutdown();
    }
    drop(idle);
    server.stop();
    Population {
        samples,
        reader_processed,
        quiet_delta_ns,
        connections,
        buffered_bytes,
    }
}

fn assert_idle_population_is_free(rdma: bool, idle_n: usize) {
    let baseline = run_population(rdma, 0);
    let loaded = run_population(rdma, idle_n);

    assert_eq!(
        loaded.quiet_delta_ns, 0,
        "{idle_n} parked conns charged the server ledger while idle"
    );
    assert_eq!(
        loaded.samples, baseline.samples,
        "active-call modeled costs must be identical with {idle_n} idle conns parked"
    );
    assert_eq!(
        loaded.reader_processed, baseline.reader_processed,
        "reader shards must process the same frame counts regardless of idle population"
    );
    assert_eq!(
        loaded.connections,
        idle_n + ACTIVE_CLIENTS,
        "connection gauge must count the parked population"
    );
    assert_eq!(
        loaded.buffered_bytes, 0,
        "idle conns must hold no buffered bytes"
    );
    assert_eq!(baseline.connections, ACTIVE_CLIENTS);
}

/// 10k parked socket conns cost the reader nothing.
#[test]
#[ignore = "tier-2: large population, run with --ignored"]
fn socket_idle_connections_are_free() {
    assert_idle_population_is_free(false, 10_000);
}

/// 4k parked (fully bootstrapped) verbs conns cost the reader nothing.
#[test]
#[ignore = "tier-2: large population, run with --ignored"]
fn verbs_idle_connections_are_free() {
    assert_idle_population_is_free(true, 4_000);
}
