//! Suite-level integration tests: whole-stack flows spanning the RPC
//! engine and all three mini-Hadoop components, on both transports.

use std::sync::Arc;
use std::time::Duration;

use rpcoib_suite::mini_hbase::ycsb::{self, key_of, Workload};
use rpcoib_suite::mini_hbase::{HBaseConfig, MiniHbase};
use rpcoib_suite::mini_mapred::record::{read_all, write_record};
use rpcoib_suite::mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use rpcoib_suite::rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use rpcoib_suite::simnet::{model, Fabric};
use rpcoib_suite::wire::{BytesWritable, DataInput, Writable};

/// WordCount end-to-end with the *entire* control plane (JobTracker,
/// umbilical, NameNode, DataNode reports) on RPCoIB.
#[test]
fn wordcount_full_stack_over_rpcoib() {
    let mut cfg = MrConfig::rpc_ib();
    cfg.hdfs.block_size = 128 * 1024;
    cfg.heartbeat = Duration::from_millis(80);
    let mr = MiniMr::start(model::IPOIB_QDR, 2, cfg).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    let mut file = Vec::new();
    for i in 0..50 {
        write_record(&mut file, format!("{i}").as_bytes(), b"rdma rdma sockets");
    }
    dfs.write_file("/text", &file).unwrap();

    jobs.run(
        &JobConf {
            name: "wc".into(),
            kind: JobKind::WordCount,
            input: vec!["/text".into()],
            output: "/counts".into(),
            n_reduces: 2,
            n_maps: 0,
            params: Vec::new(),
        },
        Duration::from_secs(120),
    )
    .unwrap();

    let mut counts = std::collections::HashMap::new();
    for part in dfs.list("/counts").unwrap() {
        for (k, v) in read_all(&dfs.read_file(&part.path).unwrap()).unwrap() {
            counts.insert(
                String::from_utf8(k).unwrap(),
                u64::from_be_bytes(v.as_slice().try_into().unwrap()),
            );
        }
    }
    assert_eq!(counts["rdma"], 100);
    assert_eq!(counts["sockets"], 50);

    // Every control-plane conversation really went over verbs: the eth
    // rail saw only shuffle + HDFS data traffic, the ib rail carried RPC.
    let (ib_msgs, _, _, _) = mr.cluster().ib().stats().snapshot();
    assert!(
        ib_msgs > 100,
        "RPCoIB control plane unused? {ib_msgs} messages on ib rail"
    );
    mr.stop();
}

/// HBase with RDMA operations *and* RPCoIB underneath (the paper's best
/// configuration) serves a YCSB mix correctly.
#[test]
fn hbase_best_configuration_serves_ycsb() {
    let cfg = HBaseConfig {
        memstore_flush_bytes: 16 * 1024,
        wal_roll_bytes: 8 * 1024,
        ..HBaseConfig::all_ib()
    };
    let hbase = MiniHbase::start(model::IPOIB_QDR, 2, cfg).unwrap();
    let client = hbase.client().unwrap();
    let workload = Workload {
        value_size: 256,
        ..Workload::mixed(150, 200)
    };
    ycsb::load(&client, &workload).unwrap();
    let report = ycsb::run(&client, &workload).unwrap();
    assert_eq!(report.operations, 200);
    assert!(client.get(&key_of(0)).unwrap().is_some());
    client.shutdown();
    hbase.stop();
}

/// The headline direction of the paper, asserted as a test: the same
/// ping-pong is faster over RPCoIB than over socket RPC on IPoIB.
/// Measured on simnet's modeled-time ledger (per-call `Fabric::modeled_ns`
/// deltas on the client node), not wall-clock, so a CPU-starved parallel
/// test run cannot perturb the comparison — the same port the end_to_end
/// and hbase latency-contrast tests received.
#[test]
fn rpcoib_beats_ipoib_sockets() {
    struct Echo;
    impl RpcService for Echo {
        fn protocol(&self) -> &'static str {
            "suite.Echo"
        }
        fn call(
            &self,
            _method: &str,
            param: &mut dyn DataInput,
        ) -> Result<Box<dyn Writable + Send>, String> {
            let mut b = BytesWritable::default();
            b.read_fields(param).map_err(|e| e.to_string())?;
            Ok(Box::new(b))
        }
    }

    fn median_ns(net: simnet::NetworkModel, rpc: RpcConfig) -> u64 {
        let fabric = Fabric::new(net);
        let sn = fabric.add_node();
        let cn = fabric.add_node();
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(Echo));
        let server = Server::start(&fabric, sn, 1, rpc.clone(), registry).unwrap();
        let client = Client::new(&fabric, cn, rpc).unwrap();
        let body = BytesWritable(vec![1u8; 512]);
        let one_call = |body: &BytesWritable| {
            let _: BytesWritable = client.call(server.addr(), "suite.Echo", "x", body).unwrap();
        };
        for _ in 0..10 {
            one_call(&body);
        }
        let mut samples: Vec<u64> = (0..60)
            .map(|_| {
                let before = fabric.modeled_ns(cn);
                one_call(&body);
                fabric.modeled_ns(cn) - before
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        client.shutdown();
        server.stop();
        median
    }

    let ipoib = median_ns(model::IPOIB_QDR, RpcConfig::socket());
    let rpcoib = median_ns(model::IB_QDR_VERBS, RpcConfig::rpcoib());
    assert!(
        rpcoib < ipoib,
        "paper's headline violated: rpcoib {rpcoib}ns vs ipoib {ipoib}ns"
    );
}
