//! Steady-state allocation regression harness (tier 2: run with
//! `cargo test --release --test alloc_regression -- --ignored`).
//!
//! A counting global allocator tallies heap allocations made by the
//! *caller thread* while a flag is set; allocations inside
//! `simnet::hw_scope` — staging copies that model NIC/DMA work, not
//! host-side malloc traffic — are excluded, as are all frees. After a
//! warmup phase fills the buffer pools, the call-slot freelist, and the
//! pending-table shard capacity, the RPCoIB (verbs) hot path must make
//! **zero** allocations per call, and the sockets baseline must stay
//! under its small historical bound. A third test flips
//! `legacy_metadata` on and checks the re-enacted pre-interning
//! metadata path allocates again — proving the counter actually sees
//! what the ablation claims to restore.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric};
use wire::{DataInput, IntWritable, Writable};

struct CountingAlloc;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // `try_with`, not `with`: the allocator runs during TLS setup and
    // teardown, where touching a destroyed key would abort.
    let _ = COUNTING.try_with(|counting| {
        if counting.get() && !simnet::in_hw_scope() {
            let _ = ALLOCS.try_with(|allocs| allocs.set(allocs.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting enabled on this thread; returns the
/// number of counted allocations alongside `f`'s result.
fn counted<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.with(|allocs| allocs.set(0));
    COUNTING.with(|counting| counting.set(true));
    let result = f();
    COUNTING.with(|counting| counting.set(false));
    (ALLOCS.with(|allocs| allocs.get()), result)
}

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "test.AllocProtocol"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut value = IntWritable::default();
        value.read_fields(param).map_err(|e| e.to_string())?;
        match method {
            "echo" => Ok(Box::new(value)),
            other => Err(format!("no such method {other}")),
        }
    }
}

const WARMUP_CALLS: usize = 50;
const MEASURED_CALLS: u64 = 20;

/// Boots a server + client pair, warms the pools, then measures the
/// caller-thread allocation count across `MEASURED_CALLS` echo calls.
fn measure_per_call(fabric: &Fabric, cfg: RpcConfig) -> u64 {
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(fabric, fabric.add_node(), cfg).unwrap();
    let addr = server.addr();
    let echo = |i: i32| -> IntWritable {
        client
            .call(addr, "test.AllocProtocol", "echo", &IntWritable(i))
            .unwrap()
    };
    for i in 0..WARMUP_CALLS {
        assert_eq!(echo(i as i32).0, i as i32);
    }
    let (allocs, ()) = counted(|| {
        for i in 0..MEASURED_CALLS {
            assert_eq!(echo(i as i32).0, i as i32);
        }
    });
    client.shutdown();
    server.stop();
    allocs / MEASURED_CALLS
}

/// The tentpole claim: the steady-state RPCoIB call path is
/// allocation-free on the caller thread. Interned method keys, pooled
/// call slots, cached metrics entries, pooled registered buffers, and
/// the vectored send leave nothing to malloc per call.
#[test]
#[ignore = "tier-2: allocator-sensitive, run with --ignored"]
fn rdma_steady_state_call_is_allocation_free() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let per_call = measure_per_call(&fabric, RpcConfig::rpcoib());
    assert_eq!(
        per_call, 0,
        "verbs steady-state call must not allocate (got {per_call}/call)"
    );
}

/// The bulk-plane claim: once pools, registration cache, and the gather
/// serializer's scratch are warm, a *large* call's send path is also
/// allocation-free on the caller thread — and registers no new memory.
/// The frame is serialized into pooled registered segments (no staging
/// buffer, no jumbo allocation) and RDMA-written straight out of them.
#[test]
#[ignore = "tier-2: allocator-sensitive, run with --ignored"]
fn rdma_steady_state_large_call_is_allocation_and_registration_free() {
    use rpcoib::intern::method_key;
    use rpcoib::transport::rdma::RdmaConn;
    use rpcoib::transport::Conn;
    use rpcoib::{IbContext, RpcError};
    use simnet::{SimAddr, SimListener, SimStream};
    use std::time::Duration;

    const WARMUP: usize = 12;

    let cfg = RpcConfig::rpcoib();
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let cli_ctx = IbContext::new(&fabric, client_node, &cfg).unwrap();
    let srv_ctx = IbContext::new(&fabric, server_node, &cfg).unwrap();
    let addr = SimAddr::new(server_node, 8700);
    let listener = SimListener::bind(&fabric, addr).unwrap();
    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let h = std::thread::spawn(move || {
        let stream = SimStream::connect(&f2, client_node, addr).unwrap();
        RdmaConn::bootstrap(&stream, &cli_ctx, &cfg2).unwrap()
    });
    let (srv_stream, _) = listener.accept().unwrap();
    let srv = Arc::new(RdmaConn::bootstrap(&srv_stream, &srv_ctx, &cfg).unwrap());
    let cli = Arc::new(h.join().unwrap());

    // Credits return through the client's receive path.
    let cli2 = Arc::clone(&cli);
    let progress = std::thread::spawn(move || loop {
        match cli2.recv_msg(Duration::from_millis(100)) {
            Err(RpcError::Timeout) => continue,
            _ => return,
        }
    });
    let srv2 = Arc::clone(&srv);
    let drain = std::thread::spawn(move || {
        for _ in 0..WARMUP + MEASURED_CALLS as usize {
            srv2.recv_msg(Duration::from_secs(30)).unwrap();
        }
    });

    let key = method_key("test.AllocProtocol", "bulk");
    let body = vec![7u8; 200_000]; // well past rdma_threshold
    for _ in 0..WARMUP {
        cli.send_msg(key, &mut |out| out.write_bytes(&body))
            .unwrap();
    }
    let (_, _, _, regs_before) = fabric.stats().snapshot();
    let (allocs, ()) = counted(|| {
        for _ in 0..MEASURED_CALLS {
            cli.send_msg(key, &mut |out| out.write_bytes(&body))
                .unwrap();
        }
    });
    drain.join().unwrap();
    let (_, _, _, regs_after) = fabric.stats().snapshot();
    cli.close();
    progress.join().unwrap();

    assert_eq!(
        allocs / MEASURED_CALLS,
        0,
        "steady-state large call must not allocate (got {allocs} across {MEASURED_CALLS})"
    );
    assert_eq!(
        regs_after - regs_before,
        0,
        "steady-state large calls must not register new memory"
    );
}

/// The sockets baseline keeps its per-send staging buffer (a deliberate
/// pathology of the IPoIB path the paper measures against), but must
/// stay within a small fixed bound per call.
#[test]
#[ignore = "tier-2: allocator-sensitive, run with --ignored"]
fn socket_steady_state_call_allocates_within_bound() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let per_call = measure_per_call(&fabric, RpcConfig::socket());
    assert!(
        per_call > 0,
        "socket baseline is expected to allocate its staging buffer"
    );
    assert!(
        per_call <= 8,
        "socket steady-state call regressed past its bound (got {per_call}/call)"
    );
}

/// The `legacy_metadata` ablation re-enacts the pre-interning per-call
/// metadata churn; the counter must see those allocations come back.
#[test]
#[ignore = "tier-2: allocator-sensitive, run with --ignored"]
fn legacy_metadata_mode_restores_per_call_allocations() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let cfg = RpcConfig {
        legacy_metadata: true,
        ..RpcConfig::rpcoib()
    };
    let per_call = measure_per_call(&fabric, cfg);
    assert!(
        per_call >= 8,
        "legacy mode must re-enact the historical metadata allocations (got {per_call}/call)"
    );
}
