//! # rpcoib-suite — umbrella crate for the ICPP'13 RPCoIB reproduction
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on one crate:
//!
//! * [`simnet`] — the simulated fabrics (socket + verbs) and dual-rail
//!   cluster topology;
//! * [`wire`] — Hadoop `Writable` serialization with the instrumented
//!   Algorithm-1 buffer;
//! * [`bufpool`] — the history-based two-level buffer pool;
//! * [`rpcoib`] — the RPC engine: socket baseline and the RPCoIB RDMA
//!   transport (the paper's contribution);
//! * [`mini_hdfs`], [`mini_mapred`], [`mini_hbase`] — the mini-Hadoop
//!   substrates the evaluation runs on.
//!
//! Start with `examples/quickstart.rs`, then DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the reproduced tables and figures.

pub use bufpool;
pub use mini_hbase;
pub use mini_hdfs;
pub use mini_mapred;
pub use rpcoib;
pub use simnet;
pub use wire;
